//! Cross-source reconciliation: trust priors, per-record agreement
//! scoring, and a conflict taxonomy over the assembled knowledge base.
//!
//! Klöti et al. showed the public IXP datasets disagree wildly on
//! members, prefixes, and facility lists; layering them with a blind
//! union lets one contaminated source silently poison constraint
//! narrowing. This module makes the disagreement explicit: every claim
//! family the assembly pipeline merges (AS→facility, IXP→facility,
//! membership, peering-LAN prefix) is re-derived as a *vote* — each
//! source that could speak about an entity either asserts the claim,
//! dissents, or abstains — and the votes are folded into a
//! [`Provenance`] verdict with a trust-weighted agreement score and a
//! typed [`ConflictClass`].
//!
//! The taxonomy (DESIGN.md §11):
//!
//! * **unanimous** — ≥2 covering sources, no dissent;
//! * **single-source** — exactly one source covers the entity, no
//!   dissent possible;
//! * **majority** — dissent exists but trust-weighted agreement stays
//!   at or above 600‰;
//! * **contested** — trust-weighted agreement below 600‰. Contested
//!   claims are kept in the merge (dropping them would shrink coverage)
//!   but the search refuses to *pin* a facility on contested
//!   provenance, degrading to a wider candidate set with a typed
//!   `UnresolvedReason` instead of a confidently wrong answer.
//!
//! A source with no record covering an entity **abstains** — absence of
//! evidence is not dissent (the JPNAP case: a PeeringDB IXP record with
//! an empty facility list says nothing about facilities, it does not
//! contradict the website). Everything here is pure and deterministic:
//! `BTreeMap` claim keys, a fixed source order, integer per-mille
//! arithmetic.

use std::collections::{BTreeMap, BTreeSet};

use cfs_net::Ipv4Prefix;
use cfs_types::{Asn, FacilityId, IxpId};

use crate::sources::PublicSources;

/// Agreement below this per-mille threshold is *contested*.
pub const CONTESTED_BELOW_PM: u32 = 600;

/// The public datasets the pipeline layers, ordered by trust.
///
/// Trust priors follow the paper's own source ranking: operators'
/// NOC pages are authoritative for their own footprint (§3.1.1), IXP
/// websites are kept current by the operator (§3.1.2), PCH and the
/// consortium lists are curated, and the volunteer database is the
/// least trusted — rich but rotten in places (Figure 2).
#[derive(
    Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, serde::Serialize, serde::Deserialize,
)]
pub enum SourceId {
    /// Operator NOC pages (essentially complete self-reports).
    NocPage,
    /// IXP websites: facility lists + member directories.
    IxpSite,
    /// PCH's exchange list with liveness annotation.
    Pch,
    /// PeeringDB facility table (near complete).
    PdbFac,
    /// Euro-IX-style consortium exchange lists.
    Consortium,
    /// PeeringDB exchange records.
    PdbIxp,
    /// PeeringDB network records (volunteer quality).
    PdbNet,
}

impl SourceId {
    /// Every source, in descending-trust order (stable for iteration
    /// and display).
    pub const ALL: [Self; 7] = [
        Self::NocPage,
        Self::IxpSite,
        Self::Pch,
        Self::PdbFac,
        Self::Consortium,
        Self::PdbIxp,
        Self::PdbNet,
    ];

    /// Trust prior in per-mille; vote weights in agreement scoring.
    #[must_use]
    pub const fn trust_pm(self) -> u32 {
        match self {
            Self::NocPage => 950,
            Self::IxpSite => 900,
            Self::Pch => 850,
            Self::PdbFac => 800,
            Self::Consortium => 750,
            Self::PdbIxp => 700,
            Self::PdbNet => 600,
        }
    }

    /// Stable label for tables, counters, and the `cfs kb-diff` CLI.
    #[must_use]
    pub const fn label(self) -> &'static str {
        match self {
            Self::NocPage => "noc",
            Self::IxpSite => "ixp-site",
            Self::Pch => "pch",
            Self::PdbFac => "pdb-fac",
            Self::Consortium => "consortium",
            Self::PdbIxp => "pdb-ixp",
            Self::PdbNet => "pdb-net",
        }
    }

    /// Parses a CLI label back into a source id.
    #[must_use]
    pub fn parse(s: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|id| id.label() == s)
    }
}

/// The typed verdict on how much the sources agreed about one claim.
#[derive(
    Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, serde::Serialize, serde::Deserialize,
)]
pub enum ConflictClass {
    /// Two or more covering sources, all asserting.
    Unanimous,
    /// Dissent exists, but trust-weighted agreement ≥ 600‰.
    Majority,
    /// Trust-weighted agreement < 600‰ — do not pin on this.
    Contested,
    /// Exactly one source covers the entity; nobody could disagree.
    SingleSource,
}

impl ConflictClass {
    /// Stable snake_case code for tally keys and reports.
    #[must_use]
    pub const fn code(self) -> &'static str {
        match self {
            Self::Unanimous => "unanimous",
            Self::Majority => "majority",
            Self::Contested => "contested",
            Self::SingleSource => "single_source",
        }
    }
}

/// Where a merged claim came from and how much the sources agreed.
#[derive(Clone, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct Provenance {
    /// Sources asserting the claim, in descending-trust order.
    pub sources: Vec<SourceId>,
    /// Sources that covered the entity but did not assert the claim.
    pub dissenters: Vec<SourceId>,
    /// Trust-weighted agreement in per-mille (1000 = no dissent).
    pub agreement_pm: u32,
    /// The typed conflict verdict.
    pub conflict: ConflictClass,
}

impl Provenance {
    /// Folds assertion/dissent vote sets into a verdict. `sources` and
    /// `dissenters` must already be in `SourceId::ALL` order (callers
    /// build them by iterating `ALL`).
    #[must_use]
    pub fn from_votes(sources: Vec<SourceId>, dissenters: Vec<SourceId>) -> Self {
        let yes: u32 = sources.iter().map(|s| s.trust_pm()).sum();
        let no: u32 = dissenters.iter().map(|s| s.trust_pm()).sum();
        let agreement_pm = if no == 0 {
            1000
        } else {
            yes * 1000 / (yes + no)
        };
        let conflict = if dissenters.is_empty() {
            if sources.len() >= 2 {
                ConflictClass::Unanimous
            } else {
                ConflictClass::SingleSource
            }
        } else if agreement_pm >= CONTESTED_BELOW_PM {
            ConflictClass::Majority
        } else {
            ConflictClass::Contested
        };
        Self {
            sources,
            dissenters,
            agreement_pm,
            conflict,
        }
    }

    /// Whether the search may pin a single facility on this claim.
    #[must_use]
    pub fn pinnable(&self) -> bool {
        self.conflict != ConflictClass::Contested
    }
}

/// Per-source roll-up for the `cfs audit` trust/agreement table.
#[derive(Clone, Debug, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct SourceQuality {
    /// Trust prior in per-mille.
    pub trust_pm: u32,
    /// Claims this source asserted.
    pub claims: u64,
    /// Claims this source dissented on (covered but did not assert).
    pub dissents: u64,
    /// Mean agreement of the claims it asserted, per-mille.
    pub mean_agreement_pm: u32,
}

/// The `kb_quality` summary: conflict-class tallies plus per-source
/// stats. Flows into `DataQualityReport` and the `cfs-trace/1` body.
#[derive(Clone, Debug, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct KbQuality {
    /// Total reconciled claims across all families.
    pub records: u64,
    /// Mean trust-weighted agreement over all claims, per-mille.
    pub agreement_mean_pm: u32,
    /// Claims classified unanimous.
    pub unanimous: u64,
    /// Claims classified majority.
    pub majority: u64,
    /// Claims classified contested.
    pub contested: u64,
    /// Claims classified single-source.
    pub single_source: u64,
    /// Per-source stats, keyed by [`SourceId::label`].
    pub per_source: BTreeMap<String, SourceQuality>,
}

impl KbQuality {
    /// Contested claims per mille of all claims (0 when empty).
    #[must_use]
    pub fn contested_pm(&self) -> u32 {
        (self.contested * 1000)
            .checked_div(self.records)
            .map_or(0, |pm| u32::try_from(pm).unwrap_or(1000))
    }
}

/// Every reconciled claim family, keyed deterministically.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Reconciliation {
    /// (AS, facility) presence claims: PeeringDB networks vs NOC pages.
    pub as_facility: BTreeMap<(Asn, FacilityId), Provenance>,
    /// (IXP, facility) partnership claims: PeeringDB IXP records vs
    /// websites.
    pub ixp_facility: BTreeMap<(IxpId, FacilityId), Provenance>,
    /// (IXP, member AS) claims: website directories vs PeeringDB
    /// networks (ixp list + netixlan ports).
    pub membership: BTreeMap<(IxpId, Asn), Provenance>,
    /// (IXP, peering-LAN prefix) claims: PeeringDB IXP records,
    /// websites, PCH, consortium lists.
    pub prefix: BTreeMap<(IxpId, Ipv4Prefix), Provenance>,
}

impl Reconciliation {
    /// The quality roll-up over every family.
    #[must_use]
    pub fn quality(&self) -> KbQuality {
        let mut q = KbQuality::default();
        for s in SourceId::ALL {
            q.per_source.insert(
                s.label().to_string(),
                SourceQuality {
                    trust_pm: s.trust_pm(),
                    ..SourceQuality::default()
                },
            );
        }
        let mut agreement_sum: u64 = 0;
        let mut per_source_sum: BTreeMap<&'static str, u64> = BTreeMap::new();
        let all = self
            .as_facility
            .values()
            .chain(self.ixp_facility.values())
            .chain(self.membership.values())
            .chain(self.prefix.values());
        for p in all {
            q.records += 1;
            agreement_sum += u64::from(p.agreement_pm);
            match p.conflict {
                ConflictClass::Unanimous => q.unanimous += 1,
                ConflictClass::Majority => q.majority += 1,
                ConflictClass::Contested => q.contested += 1,
                ConflictClass::SingleSource => q.single_source += 1,
            }
            for s in &p.sources {
                let sq = q.per_source.get_mut(s.label()).expect("seeded above");
                sq.claims += 1;
                *per_source_sum.entry(s.label()).or_default() += u64::from(p.agreement_pm);
            }
            for s in &p.dissenters {
                q.per_source
                    .get_mut(s.label())
                    .expect("seeded above")
                    .dissents += 1;
            }
        }
        if let Some(mean) = agreement_sum.checked_div(q.records) {
            q.agreement_mean_pm = u32::try_from(mean).unwrap_or(1000);
        }
        for (label, sq) in &mut q.per_source {
            let sum = per_source_sum.get(label.as_str()).copied().unwrap_or(0);
            if let Some(mean) = sum.checked_div(sq.claims) {
                sq.mean_agreement_pm = u32::try_from(mean).unwrap_or(1000);
            }
        }
        q
    }
}

/// A helper accumulating ALL-ordered vote vectors.
struct Votes {
    yes: Vec<SourceId>,
    no: Vec<SourceId>,
}

impl Votes {
    fn new() -> Self {
        Self {
            yes: Vec::new(),
            no: Vec::new(),
        }
    }

    /// Records one source's position: asserted, dissented, or (when
    /// `covers` is false) abstained.
    fn cast(&mut self, source: SourceId, covers: bool, asserts: bool) {
        if !covers {
            return;
        }
        if asserts {
            self.yes.push(source);
        } else {
            self.no.push(source);
        }
    }

    fn seal(self) -> Provenance {
        Provenance::from_votes(self.yes, self.no)
    }
}

/// Re-derives every merged claim as a cross-source vote.
#[must_use]
pub fn reconcile(src: &PublicSources) -> Reconciliation {
    let mut out = Reconciliation::default();

    // ---- AS → facility: PeeringDB network records vs NOC pages. A
    // source covers the AS when it has a record with a non-empty
    // facility list (an empty list is the operator not bothering, not a
    // claim that the AS is nowhere).
    let mut as_fac_claims: BTreeSet<(Asn, FacilityId)> = BTreeSet::new();
    for rec in src.pdb_networks.values() {
        for f in &rec.facilities {
            as_fac_claims.insert((rec.asn, *f));
        }
    }
    for page in src.noc_pages.values() {
        for f in &page.facilities {
            as_fac_claims.insert((page.asn, *f));
        }
    }
    for (asn, f) in as_fac_claims {
        let mut v = Votes::new();
        let noc = src.noc_pages.get(&asn);
        v.cast(
            SourceId::NocPage,
            noc.is_some_and(|p| !p.facilities.is_empty()),
            noc.is_some_and(|p| p.facilities.contains(&f)),
        );
        let pdb = src.pdb_networks.get(&asn);
        v.cast(
            SourceId::PdbNet,
            pdb.is_some_and(|r| !r.facilities.is_empty()),
            pdb.is_some_and(|r| r.facilities.contains(&f)),
        );
        out.as_facility.insert((asn, f), v.seal());
    }

    // ---- IXP → facility: PeeringDB exchange records vs websites. An
    // empty facility list abstains — the JPNAP case.
    let mut ixp_fac_claims: BTreeSet<(IxpId, FacilityId)> = BTreeSet::new();
    for rec in src.pdb_ixps.values() {
        for f in &rec.facilities {
            ixp_fac_claims.insert((rec.ixp, *f));
        }
    }
    for site in src.ixp_sites.values() {
        for f in &site.facilities {
            ixp_fac_claims.insert((site.ixp, *f));
        }
    }
    for (ixp, f) in ixp_fac_claims {
        let mut v = Votes::new();
        let site = src.ixp_sites.get(&ixp);
        v.cast(
            SourceId::IxpSite,
            site.is_some_and(|s| !s.facilities.is_empty()),
            site.is_some_and(|s| s.facilities.contains(&f)),
        );
        let pdb = src.pdb_ixps.get(&ixp);
        v.cast(
            SourceId::PdbIxp,
            pdb.is_some_and(|r| !r.facilities.is_empty()),
            pdb.is_some_and(|r| r.facilities.contains(&f)),
        );
        out.ixp_facility.insert((ixp, f), v.seal());
    }

    // ---- Membership (ixp, asn): website directories vs PeeringDB
    // networks. The PDB claim counts either the ixp list or a netixlan
    // port; a record with neither abstains.
    let mut member_claims: BTreeSet<(IxpId, Asn)> = BTreeSet::new();
    for site in src.ixp_sites.values() {
        for m in &site.members {
            member_claims.insert((site.ixp, m.asn));
        }
    }
    for rec in src.pdb_networks.values() {
        for ixp in &rec.ixps {
            member_claims.insert((*ixp, rec.asn));
        }
        for (ixp, _) in &rec.fabric_ips {
            member_claims.insert((*ixp, rec.asn));
        }
    }
    for (ixp, asn) in member_claims {
        let mut v = Votes::new();
        let site = src.ixp_sites.get(&ixp);
        v.cast(
            SourceId::IxpSite,
            site.is_some_and(|s| !s.members.is_empty()),
            site.is_some_and(|s| s.members.iter().any(|m| m.asn == asn)),
        );
        let pdb = src.pdb_networks.get(&asn);
        v.cast(
            SourceId::PdbNet,
            pdb.is_some_and(|r| !r.ixps.is_empty() || !r.fabric_ips.is_empty()),
            pdb.is_some_and(|r| {
                r.ixps.contains(&ixp) || r.fabric_ips.iter().any(|(x, _)| *x == ixp)
            }),
        );
        out.membership.insert((ixp, asn), v.seal());
    }

    // ---- Peering-LAN prefixes: four sources can speak.
    let mut prefix_claims: BTreeSet<(IxpId, Ipv4Prefix)> = BTreeSet::new();
    for rec in src.pdb_ixps.values() {
        for p in &rec.prefixes {
            prefix_claims.insert((rec.ixp, *p));
        }
    }
    for site in src.ixp_sites.values() {
        for p in &site.prefixes {
            prefix_claims.insert((site.ixp, *p));
        }
    }
    for (ixp, prefixes, _) in &src.pch_list {
        for p in prefixes {
            prefix_claims.insert((*ixp, *p));
        }
    }
    for (ixp, prefixes) in &src.consortium_list {
        for p in prefixes {
            prefix_claims.insert((*ixp, *p));
        }
    }
    for (ixp, prefix) in prefix_claims {
        let mut v = Votes::new();
        let site = src.ixp_sites.get(&ixp);
        v.cast(
            SourceId::IxpSite,
            site.is_some_and(|s| !s.prefixes.is_empty()),
            site.is_some_and(|s| s.prefixes.contains(&prefix)),
        );
        let pch = src.pch_list.iter().find(|(x, _, _)| *x == ixp);
        v.cast(
            SourceId::Pch,
            pch.is_some_and(|(_, ps, _)| !ps.is_empty()),
            pch.is_some_and(|(_, ps, _)| ps.contains(&prefix)),
        );
        let cons = src.consortium_list.iter().find(|(x, _)| *x == ixp);
        v.cast(
            SourceId::Consortium,
            cons.is_some_and(|(_, ps)| !ps.is_empty()),
            cons.is_some_and(|(_, ps)| ps.contains(&prefix)),
        );
        let pdb = src.pdb_ixps.get(&ixp);
        v.cast(
            SourceId::PdbIxp,
            pdb.is_some_and(|r| !r.prefixes.is_empty()),
            pdb.is_some_and(|r| r.prefixes.contains(&prefix)),
        );
        out.prefix.insert((ixp, prefix), v.seal());
    }

    out
}

/// One family row of a pairwise source comparison.
#[derive(Clone, Debug, PartialEq, Eq, serde::Serialize)]
pub struct DiffRow {
    /// Claim family ("membership", "as-facility", …).
    pub family: &'static str,
    /// Claims both sources assert.
    pub both: u64,
    /// Claims only the first source asserts.
    pub only_a: u64,
    /// Claims only the second source asserts.
    pub only_b: u64,
    /// Jaccard agreement |A∩B| / |A∪B| in per-mille (1000 when both
    /// sets are empty).
    pub jaccard_pm: u32,
}

/// The claim sets one source asserts, per family, as opaque stable keys.
fn claim_sets(src: &PublicSources, s: SourceId) -> BTreeMap<&'static str, BTreeSet<String>> {
    let mut out: BTreeMap<&'static str, BTreeSet<String>> = BTreeMap::new();
    let mut add = |family: &'static str, key: String| {
        out.entry(family).or_default().insert(key);
    };
    match s {
        SourceId::PdbNet => {
            for rec in src.pdb_networks.values() {
                for f in &rec.facilities {
                    add("as-facility", format!("{}@{f}", rec.asn));
                }
                for ixp in &rec.ixps {
                    add("membership", format!("{}@{ixp}", rec.asn));
                }
                for (ixp, _) in &rec.fabric_ips {
                    add("membership", format!("{}@{ixp}", rec.asn));
                }
            }
        }
        SourceId::NocPage => {
            for page in src.noc_pages.values() {
                for f in &page.facilities {
                    add("as-facility", format!("{}@{f}", page.asn));
                }
            }
        }
        SourceId::PdbIxp => {
            for rec in src.pdb_ixps.values() {
                for f in &rec.facilities {
                    add("ixp-facility", format!("{}@{f}", rec.ixp));
                }
                for p in &rec.prefixes {
                    add("prefix", format!("{}@{p}", rec.ixp));
                }
            }
        }
        SourceId::IxpSite => {
            for site in src.ixp_sites.values() {
                for f in &site.facilities {
                    add("ixp-facility", format!("{}@{f}", site.ixp));
                }
                for p in &site.prefixes {
                    add("prefix", format!("{}@{p}", site.ixp));
                }
                for m in &site.members {
                    add("membership", format!("{}@{}", m.asn, site.ixp));
                }
            }
        }
        SourceId::Pch => {
            for (ixp, prefixes, _) in &src.pch_list {
                for p in prefixes {
                    add("prefix", format!("{ixp}@{p}"));
                }
            }
        }
        SourceId::Consortium => {
            for (ixp, prefixes) in &src.consortium_list {
                for p in prefixes {
                    add("prefix", format!("{ixp}@{p}"));
                }
            }
        }
        SourceId::PdbFac => {
            for rec in &src.pdb_facilities {
                add("facility", format!("{}", rec.facility));
            }
        }
    }
    out
}

/// Klöti-style pairwise dataset comparison: for every claim family both
/// sources can speak about, how much do their assertions overlap?
/// Families only one source covers are omitted (nothing to compare).
#[must_use]
pub fn pairwise_diff(src: &PublicSources, a: SourceId, b: SourceId) -> Vec<DiffRow> {
    let sa = claim_sets(src, a);
    let sb = claim_sets(src, b);
    let mut rows = Vec::new();
    for (family, set_a) in &sa {
        let Some(set_b) = sb.get(family) else {
            continue;
        };
        let both = set_a.intersection(set_b).count() as u64;
        let only_a = (set_a.len() as u64) - both;
        let only_b = (set_b.len() as u64) - both;
        let union = both + only_a + only_b;
        let jaccard_pm = (both * 1000)
            .checked_div(union)
            .map_or(1000, |pm| u32::try_from(pm).unwrap_or(1000));
        rows.push(DiffRow {
            family,
            both,
            only_a,
            only_b,
            jaccard_pm,
        });
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sources::{
        IxpSiteRecord, KbConfig, NocPage, PdbIxpRecord, PdbNetworkRecord, SiteMemberRecord,
    };
    use std::net::Ipv4Addr;

    fn asn(n: u32) -> Asn {
        Asn::new(n)
    }
    fn fac(n: u32) -> FacilityId {
        FacilityId::new(n)
    }
    fn ixp(n: u32) -> IxpId {
        IxpId::new(n)
    }

    /// An empty source bundle to hand-populate per scenario.
    fn empty() -> PublicSources {
        PublicSources {
            config: KbConfig::default(),
            pdb_facilities: Vec::new(),
            pdb_networks: BTreeMap::new(),
            pdb_ixps: BTreeMap::new(),
            ixp_sites: BTreeMap::new(),
            noc_pages: BTreeMap::new(),
            pch_list: Vec::new(),
            consortium_list: Vec::new(),
        }
    }

    fn pdb_net(a: u32, facilities: &[u32], ixps: &[u32]) -> PdbNetworkRecord {
        PdbNetworkRecord {
            asn: asn(a),
            facilities: facilities.iter().map(|f| fac(*f)).collect(),
            ixps: ixps.iter().map(|x| ixp(*x)).collect(),
            fabric_ips: Vec::new(),
        }
    }

    fn site(x: u32, facilities: &[u32], members: &[u32]) -> IxpSiteRecord {
        IxpSiteRecord {
            ixp: ixp(x),
            prefixes: vec![Ipv4Prefix::must([10, 0, x as u8, 0], 24)],
            facilities: facilities.iter().map(|f| fac(*f)).collect(),
            members: members
                .iter()
                .enumerate()
                .map(|(i, a)| SiteMemberRecord {
                    asn: asn(*a),
                    fabric_ip: Ipv4Addr::new(10, 0, x as u8, (i + 1) as u8),
                    facility: None,
                    remote: None,
                })
                .collect(),
            detailed: false,
        }
    }

    // ---- Fixture mini-KBs pinning every conflict class with exact
    // agreement scores. ----

    #[test]
    fn unanimous_when_both_sources_assert() {
        let mut src = empty();
        src.pdb_networks.insert(asn(1), pdb_net(1, &[7], &[]));
        src.noc_pages.insert(
            asn(1),
            NocPage {
                asn: asn(1),
                facilities: vec![fac(7)],
            },
        );
        let rec = reconcile(&src);
        let p = &rec.as_facility[&(asn(1), fac(7))];
        assert_eq!(p.conflict, ConflictClass::Unanimous);
        assert_eq!(p.agreement_pm, 1000);
        assert_eq!(p.sources, vec![SourceId::NocPage, SourceId::PdbNet]);
        assert!(p.dissenters.is_empty());
        assert!(p.pinnable());
    }

    #[test]
    fn single_source_when_only_one_covers() {
        let mut src = empty();
        src.pdb_networks.insert(asn(1), pdb_net(1, &[7], &[]));
        let rec = reconcile(&src);
        let p = &rec.as_facility[&(asn(1), fac(7))];
        assert_eq!(p.conflict, ConflictClass::SingleSource);
        assert_eq!(p.agreement_pm, 1000);
        assert!(p.pinnable());
    }

    #[test]
    fn majority_when_the_trusted_source_asserts_over_volunteer_dissent() {
        // NOC (950) asserts, PDB (600) covers the AS but omits the
        // facility: 950·1000/1550 = 612 ≥ 600 → majority. The true pin
        // survives volunteer rot.
        let mut src = empty();
        src.pdb_networks.insert(asn(1), pdb_net(1, &[8], &[]));
        src.noc_pages.insert(
            asn(1),
            NocPage {
                asn: asn(1),
                facilities: vec![fac(7), fac(8)],
            },
        );
        let rec = reconcile(&src);
        let p = &rec.as_facility[&(asn(1), fac(7))];
        assert_eq!(p.conflict, ConflictClass::Majority);
        assert_eq!(p.agreement_pm, 612);
        assert_eq!(p.dissenters, vec![SourceId::PdbNet]);
        assert!(p.pinnable());
    }

    #[test]
    fn contested_when_only_the_volunteer_asserts_against_the_operator() {
        // PDB (600) asserts a facility the NOC page (950) does not
        // list: 600·1000/1550 = 387 < 600 → contested, not pinnable.
        // This is exactly the chaos conflict-rewrite shape.
        let mut src = empty();
        src.pdb_networks.insert(asn(1), pdb_net(1, &[9], &[]));
        src.noc_pages.insert(
            asn(1),
            NocPage {
                asn: asn(1),
                facilities: vec![fac(7)],
            },
        );
        let rec = reconcile(&src);
        let p = &rec.as_facility[&(asn(1), fac(9))];
        assert_eq!(p.conflict, ConflictClass::Contested);
        assert_eq!(p.agreement_pm, 387);
        assert!(!p.pinnable());
    }

    #[test]
    fn membership_site_yes_pdb_dissent_is_exactly_the_threshold() {
        // Site (900) lists the member, the PDB record covers
        // memberships elsewhere but omits this one: 900·1000/1500 =
        // 600 → majority, right at the threshold. Ordinary volunteer
        // lag must not contaminate the member directory.
        let mut src = empty();
        src.ixp_sites.insert(ixp(3), site(3, &[1], &[42]));
        src.pdb_networks.insert(asn(42), pdb_net(42, &[], &[5]));
        src.pdb_networks.insert(asn(5), pdb_net(5, &[], &[]));
        let rec = reconcile(&src);
        let p = &rec.membership[&(ixp(3), asn(42))];
        assert_eq!(p.agreement_pm, 600);
        assert_eq!(p.conflict, ConflictClass::Majority);
    }

    #[test]
    fn membership_pdb_yes_site_dissent_is_contested() {
        // The volunteer claims a membership the site directory refutes:
        // 600·1000/1500 = 400 → contested. The detector must not treat
        // this hop as confirmed-member evidence.
        let mut src = empty();
        src.ixp_sites.insert(ixp(3), site(3, &[1], &[7]));
        src.pdb_networks.insert(asn(42), pdb_net(42, &[], &[3]));
        let rec = reconcile(&src);
        let p = &rec.membership[&(ixp(3), asn(42))];
        assert_eq!(p.agreement_pm, 400);
        assert_eq!(p.conflict, ConflictClass::Contested);
        assert!(!p.pinnable());
    }

    #[test]
    fn empty_facility_list_abstains_like_jpnap() {
        // The PDB IXP record exists but lists no facilities (JPNAP
        // Tokyo I): it must abstain, leaving the website's facilities
        // single-source, not contested.
        let mut src = empty();
        src.pdb_ixps.insert(
            ixp(3),
            PdbIxpRecord {
                ixp: ixp(3),
                prefixes: vec![Ipv4Prefix::must([10, 0, 3, 0], 24)],
                facilities: Vec::new(),
            },
        );
        src.ixp_sites.insert(ixp(3), site(3, &[1, 2], &[]));
        let rec = reconcile(&src);
        for f in [1u32, 2] {
            let p = &rec.ixp_facility[&(ixp(3), fac(f))];
            assert_eq!(p.conflict, ConflictClass::SingleSource, "facility {f}");
            assert_eq!(p.agreement_pm, 1000);
        }
    }

    #[test]
    fn quality_rollup_counts_every_class() {
        let mut src = empty();
        // unanimous: AS 1 / fac 7 on both sources.
        src.pdb_networks.insert(asn(1), pdb_net(1, &[7, 9], &[]));
        src.noc_pages.insert(
            asn(1),
            NocPage {
                asn: asn(1),
                facilities: vec![fac(7)],
            },
        );
        // single-source: AS 2 only in PDB.
        src.pdb_networks.insert(asn(2), pdb_net(2, &[5], &[]));
        let rec = reconcile(&src);
        let q = rec.quality();
        // AS1: fac7 unanimous, fac9 contested (pdb vs noc dissent).
        // AS2: fac5 single-source.
        assert_eq!(q.records, 3);
        assert_eq!(q.unanimous, 1);
        assert_eq!(q.contested, 1);
        assert_eq!(q.single_source, 1);
        assert_eq!(q.majority, 0);
        assert_eq!(q.agreement_mean_pm, (1000 + 387 + 1000) / 3);
        let pdb = &q.per_source["pdb-net"];
        assert_eq!(pdb.claims, 3);
        assert_eq!(pdb.trust_pm, 600);
        let noc = &q.per_source["noc"];
        assert_eq!(noc.claims, 1);
        assert_eq!(noc.dissents, 1);
        assert_eq!(q.contested_pm(), 333);
    }

    #[test]
    fn pairwise_diff_counts_overlap_per_family() {
        let mut src = empty();
        src.pdb_networks.insert(asn(1), pdb_net(1, &[7, 9], &[]));
        src.noc_pages.insert(
            asn(1),
            NocPage {
                asn: asn(1),
                facilities: vec![fac(7), fac(8)],
            },
        );
        let rows = pairwise_diff(&src, SourceId::NocPage, SourceId::PdbNet);
        assert_eq!(rows.len(), 1);
        let r = &rows[0];
        assert_eq!(r.family, "as-facility");
        assert_eq!((r.both, r.only_a, r.only_b), (1, 1, 1));
        assert_eq!(r.jaccard_pm, 333);
    }

    #[test]
    fn real_derived_sources_reconcile_mostly_clean() {
        use cfs_topology::{Topology, TopologyConfig};
        let topo = Topology::generate(TopologyConfig::tiny()).unwrap();
        let src = crate::sources::PublicSources::derive(&topo, &KbConfig::default());
        let rec = reconcile(&src);
        let q = rec.quality();
        assert!(q.records > 0);
        // Clean derivation: damage is omission, which reconciliation
        // reads as dissent only from covering sources — the bulk of
        // records must not be contested.
        assert!(
            q.contested_pm() < 200,
            "clean KB reads as {}‰ contested",
            q.contested_pm()
        );
        assert!(q.agreement_mean_pm > 800);
        // Prefixes are truth-derived everywhere: never contested.
        for p in rec.prefix.values() {
            assert_ne!(p.conflict, ConflictClass::Contested);
        }
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        /// Arbitrary two-source disagreement over one AS's facilities:
        /// PDB lists some subset, the NOC page another. However the
        /// claims disagree, no contested claim is ever pinnable and
        /// every claim classifies into exactly one class consistent
        /// with its score.
        fn claims() -> impl Strategy<Value = Vec<u32>> {
            proptest::collection::vec(0u32..12, 0..6)
        }

        proptest! {
            #[test]
            fn contested_claims_are_never_pinnable(pdb in claims(), noc in claims()) {
                let mut src = empty();
                src.pdb_networks.insert(
                    asn(1),
                    pdb_net(1, &pdb, &[]),
                );
                src.noc_pages.insert(
                    asn(1),
                    NocPage { asn: asn(1), facilities: noc.iter().map(|f| fac(*f)).collect() },
                );
                let rec = reconcile(&src);
                for p in rec.as_facility.values() {
                    // The gate invariant the engine relies on.
                    prop_assert_eq!(
                        p.pinnable(),
                        p.conflict != ConflictClass::Contested
                    );
                    match p.conflict {
                        ConflictClass::Contested => {
                            prop_assert!(p.agreement_pm < CONTESTED_BELOW_PM);
                        }
                        ConflictClass::Majority => {
                            prop_assert!(p.agreement_pm >= CONTESTED_BELOW_PM);
                            prop_assert!(!p.dissenters.is_empty());
                        }
                        ConflictClass::Unanimous => {
                            prop_assert_eq!(p.agreement_pm, 1000);
                            prop_assert!(p.sources.len() >= 2);
                        }
                        ConflictClass::SingleSource => {
                            prop_assert_eq!(p.agreement_pm, 1000);
                            prop_assert_eq!(p.sources.len(), 1);
                        }
                    }
                }
            }

            #[test]
            fn reconciliation_is_deterministic(pdb in claims(), noc in claims()) {
                let mut src = empty();
                src.pdb_networks.insert(asn(1), pdb_net(1, &pdb, &[]));
                src.noc_pages.insert(
                    asn(1),
                    NocPage { asn: asn(1), facilities: noc.iter().map(|f| fac(*f)).collect() },
                );
                prop_assert_eq!(reconcile(&src), reconcile(&src));
            }
        }
    }
}
