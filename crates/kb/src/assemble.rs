//! The §3.1 assembly pipeline: from messy public sources to the facility
//! map the CFS algorithm consumes.

use std::collections::{BTreeMap, BTreeSet};
use std::net::Ipv4Addr;

use cfs_geo::World;
use cfs_net::{Ipv4Prefix, PrefixTrie};
use cfs_types::{Asn, FacilityId, IxpId, MetroId, Region};

use crate::reconcile::{reconcile, ConflictClass, KbQuality, Provenance, Reconciliation};
use crate::sources::PublicSources;

/// The assembled public picture of the peering ecosystem.
///
/// This is the *only* facility data the inference pipeline sees. It can
/// be degraded after assembly (`remove_facilities`) to run the Figure 8
/// robustness experiment.
#[derive(Clone, Debug)]
pub struct KnowledgeBase {
    /// AS → known facility presence (PeeringDB ∪ NOC pages).
    as_facilities: BTreeMap<Asn, BTreeSet<FacilityId>>,
    /// IXP → known partner facilities (PeeringDB ∪ IXP websites).
    ixp_facilities: BTreeMap<IxpId, BTreeSet<FacilityId>>,
    /// Confirmed IXP peering LANs (≥3 sources, §3.1.2).
    ixp_prefixes: PrefixTrie<IxpId>,
    /// IXP → fabric address → member AS (websites + PeeringDB, ≥2
    /// sources for the *membership*, keyed by what the sites publish).
    ixp_members: BTreeMap<IxpId, BTreeMap<Ipv4Addr, Asn>>,
    /// AS → exchanges it is known to be a member of.
    as_ixps: BTreeMap<Asn, BTreeSet<IxpId>>,
    /// Facility → metro, resolved through name normalization.
    facility_metro: BTreeMap<FacilityId, MetroId>,
    /// Facility → region.
    facility_region: BTreeMap<FacilityId, Region>,
    /// Exchanges that passed the activity filter.
    active_ixps: BTreeSet<IxpId>,
    /// Cross-source vote on every merged claim (trust priors, agreement
    /// scores, conflict classes).
    reconciliation: Reconciliation,
    /// The roll-up of the reconciliation, precomputed at assembly.
    quality: KbQuality,
}

impl KnowledgeBase {
    /// Runs the assembly pipeline over the public sources.
    pub fn assemble(sources: &PublicSources, world: &World) -> Self {
        // ---- Facility locations: normalize city strings, map to metros.
        let mut facility_metro = BTreeMap::new();
        let mut facility_region = BTreeMap::new();
        for rec in &sources.pdb_facilities {
            if let Some(city) = world.find_city(&rec.city_raw, &rec.country_raw) {
                facility_metro.insert(rec.facility, world.metro_of(city));
                facility_region.insert(rec.facility, world.city(city).region);
            }
        }

        // ---- IXP prefix confirmation: a prefix counts when at least
        // three of {PeeringDB, IXP website, PCH, consortium} agree.
        let mut prefix_votes: BTreeMap<(IxpId, Ipv4Prefix), usize> = BTreeMap::new();
        for (id, rec) in &sources.pdb_ixps {
            for p in &rec.prefixes {
                *prefix_votes.entry((*id, *p)).or_default() += 1;
            }
        }
        for (id, site) in &sources.ixp_sites {
            for p in &site.prefixes {
                *prefix_votes.entry((*id, *p)).or_default() += 1;
            }
        }
        for (id, prefixes, _) in &sources.pch_list {
            for p in prefixes {
                *prefix_votes.entry((*id, *p)).or_default() += 1;
            }
        }
        for (id, prefixes) in &sources.consortium_list {
            for p in prefixes {
                *prefix_votes.entry((*id, *p)).or_default() += 1;
            }
        }

        // ---- Activity filter: PCH's annotation, plus the requirement of
        // at least one known member from ≥2 sources (approximated by: the
        // IXP has a website member list or PDB networks claim membership).
        let pch_active: BTreeMap<IxpId, bool> = sources
            .pch_list
            .iter()
            .map(|(id, _, a)| (*id, *a))
            .collect();
        let mut membership_claims: BTreeMap<IxpId, usize> = BTreeMap::new();
        for site in sources.ixp_sites.values() {
            if !site.members.is_empty() {
                *membership_claims.entry(site.ixp).or_default() += 1;
            }
        }
        for net in sources.pdb_networks.values() {
            for ixp in &net.ixps {
                *membership_claims.entry(*ixp).or_default() += 1;
            }
        }
        let mut active_ixps = BTreeSet::new();
        let all_ixps: BTreeSet<IxpId> = sources
            .pdb_ixps
            .keys()
            .copied()
            .chain(sources.ixp_sites.keys().copied())
            .chain(sources.pch_list.iter().map(|(id, _, _)| *id))
            .collect();
        for id in &all_ixps {
            let pch_says_dead = pch_active.get(id) == Some(&false);
            let has_members = membership_claims.get(id).copied().unwrap_or(0) >= 1;
            if !pch_says_dead && has_members {
                active_ixps.insert(*id);
            }
        }

        let mut ixp_prefixes = PrefixTrie::new();
        for ((id, prefix), votes) in &prefix_votes {
            if *votes >= 3 && active_ixps.contains(id) {
                ixp_prefixes.insert(*prefix, *id);
            }
        }

        // ---- AS → facilities: PeeringDB union NOC pages.
        let mut as_facilities: BTreeMap<Asn, BTreeSet<FacilityId>> = BTreeMap::new();
        for rec in sources.pdb_networks.values() {
            as_facilities
                .entry(rec.asn)
                .or_default()
                .extend(rec.facilities.iter().copied());
        }
        for page in sources.noc_pages.values() {
            as_facilities
                .entry(page.asn)
                .or_default()
                .extend(page.facilities.iter().copied());
        }

        // ---- IXP → facilities: PeeringDB union websites.
        let mut ixp_facilities: BTreeMap<IxpId, BTreeSet<FacilityId>> = BTreeMap::new();
        for rec in sources.pdb_ixps.values() {
            ixp_facilities
                .entry(rec.ixp)
                .or_default()
                .extend(rec.facilities.iter().copied());
        }
        for site in sources.ixp_sites.values() {
            ixp_facilities
                .entry(site.ixp)
                .or_default()
                .extend(site.facilities.iter().copied());
        }

        // ---- Member directories (fabric address → ASN): IXP websites
        // plus PeeringDB netixlan rows. Highest trust wins on a
        // disputed address: the volunteer rows go in first, the site
        // directory (trust 900 vs 600) overwrites.
        let mut ixp_members: BTreeMap<IxpId, BTreeMap<Ipv4Addr, Asn>> = BTreeMap::new();
        for rec in sources.pdb_networks.values() {
            for (ixp, ip) in &rec.fabric_ips {
                ixp_members.entry(*ixp).or_default().insert(*ip, rec.asn);
            }
        }
        for site in sources.ixp_sites.values() {
            let entry = ixp_members.entry(site.ixp).or_default();
            for m in &site.members {
                entry.insert(m.fabric_ip, m.asn);
            }
        }

        // ---- AS → IXP membership (PeeringDB claims ∪ site directories).
        let mut as_ixps: BTreeMap<Asn, BTreeSet<IxpId>> = BTreeMap::new();
        for rec in sources.pdb_networks.values() {
            as_ixps
                .entry(rec.asn)
                .or_default()
                .extend(rec.ixps.iter().copied());
        }
        for site in sources.ixp_sites.values() {
            for m in &site.members {
                as_ixps.entry(m.asn).or_default().insert(site.ixp);
            }
        }

        // ---- Cross-source reconciliation: every merged claim gets a
        // provenance verdict (DESIGN.md §11).
        let reconciliation = reconcile(sources);
        let quality = reconciliation.quality();

        Self {
            as_facilities,
            ixp_facilities,
            ixp_prefixes,
            ixp_members,
            as_ixps,
            facility_metro,
            facility_region,
            active_ixps,
            reconciliation,
            quality,
        }
    }

    /// Facilities where `asn` is known to be present (empty set when the
    /// AS has no public record — the paper's "missing data" outcome).
    pub fn facilities_of_as(&self, asn: Asn) -> BTreeSet<FacilityId> {
        self.as_facilities.get(&asn).cloned().unwrap_or_default()
    }

    /// Whether there is *any* facility record for the AS.
    pub fn knows_as(&self, asn: Asn) -> bool {
        self.as_facilities.get(&asn).is_some_and(|s| !s.is_empty())
    }

    /// Known partner facilities of an exchange.
    pub fn facilities_of_ixp(&self, ixp: IxpId) -> BTreeSet<FacilityId> {
        self.ixp_facilities.get(&ixp).cloned().unwrap_or_default()
    }

    /// The exchange owning `ip`, per the confirmed prefix list — the §4.2
    /// Step 1 public/private classifier.
    pub fn ixp_of_ip(&self, ip: Ipv4Addr) -> Option<IxpId> {
        self.ixp_prefixes.longest_match(ip).map(|(_, id)| *id)
    }

    /// The member AS behind a fabric address, when a member list covers it.
    pub fn member_of_fabric_ip(&self, ixp: IxpId, ip: Ipv4Addr) -> Option<Asn> {
        self.ixp_members.get(&ixp).and_then(|m| m.get(&ip)).copied()
    }

    /// Exchanges `asn` is known to be a member of (PeeringDB claims plus
    /// website directories) — used for the tethering-vs-remote call and
    /// for follow-up target prioritization.
    pub fn ixps_of_as(&self, asn: Asn) -> BTreeSet<IxpId> {
        self.as_ixps.get(&asn).cloned().unwrap_or_default()
    }

    /// How many fabric addresses the directories list for `asn` at `ixp` —
    /// members with two or more ports are the population the §4.4
    /// proximity heuristic can say something about (which port answers
    /// depends on switch locality).
    pub fn member_port_count(&self, ixp: IxpId, asn: Asn) -> usize {
        self.ixp_members
            .get(&ixp)
            .map(|m| m.values().filter(|a| **a == asn).count())
            .unwrap_or(0)
    }

    /// The metro of a facility (resolved from normalized city strings).
    pub fn metro_of_facility(&self, f: FacilityId) -> Option<MetroId> {
        self.facility_metro.get(&f).copied()
    }

    /// The region of a facility.
    pub fn region_of_facility(&self, f: FacilityId) -> Option<Region> {
        self.facility_region.get(&f).copied()
    }

    /// Every known facility in metro `m` — the metro-level widening pool
    /// the search falls back to when footprints fail to intersect
    /// (DESIGN.md §9).
    pub fn facilities_in_metro(&self, m: MetroId) -> BTreeSet<FacilityId> {
        self.facility_metro
            .iter()
            .filter(|(_, metro)| **metro == m)
            .map(|(f, _)| *f)
            .collect()
    }

    /// Exchanges that passed the activity filter.
    pub fn active_ixps(&self) -> &BTreeSet<IxpId> {
        &self.active_ixps
    }

    /// The cross-source reconciliation behind this merge.
    pub fn reconciliation(&self) -> &Reconciliation {
        &self.reconciliation
    }

    /// The `kb_quality` roll-up (conflict tallies, per-source stats).
    pub fn quality(&self) -> &KbQuality {
        &self.quality
    }

    /// Provenance of the claim that `asn` is present at facility `f`.
    pub fn provenance_of_as_facility(&self, asn: Asn, f: FacilityId) -> Option<&Provenance> {
        self.reconciliation.as_facility.get(&(asn, f))
    }

    /// Whether the search may pin `asn` at `f`: true unless the claim
    /// reconciled as *contested*. Claims the reconciler never saw (an
    /// AS with no public record at all) are not contested — they simply
    /// have no evidence, which the candidate sets already reflect.
    pub fn pin_allowed(&self, asn: Asn, f: FacilityId) -> bool {
        self.provenance_of_as_facility(asn, f)
            .is_none_or(Provenance::pinnable)
    }

    /// Trust-weighted agreement on the claim that `asn` is a member of
    /// `ixp`, in per-mille. Unreconciled pairs (nobody claimed the
    /// membership) score zero — no evidence is not full confidence.
    pub fn membership_agreement_pm(&self, ixp: IxpId, asn: Asn) -> u32 {
        self.reconciliation
            .membership
            .get(&(ixp, asn))
            .map_or(0, |p| p.agreement_pm)
    }

    /// Whether the membership claim for (`ixp`, `asn`) is contested.
    pub fn membership_contested(&self, ixp: IxpId, asn: Asn) -> bool {
        self.reconciliation
            .membership
            .get(&(ixp, asn))
            .is_some_and(|p| p.conflict == ConflictClass::Contested)
    }

    /// Trust-weighted agreement on the peering-LAN prefix covering `ip`
    /// at `ixp`, in per-mille — the confidence behind a prefix-rule hit
    /// in the multi-rule IXP-hop detector.
    pub fn prefix_agreement_pm(&self, ixp: IxpId, ip: Ipv4Addr) -> u32 {
        self.reconciliation
            .prefix
            .iter()
            .filter(|((x, p), _)| *x == ixp && p.contains(ip))
            .map(|(_, prov)| prov.agreement_pm)
            .max()
            .unwrap_or(0)
    }

    /// Whether two epochs agree on everything observation classification
    /// reads: the confirmed peering-LAN space ([`Self::ixp_of_ip`]), the
    /// fabric-address directory ([`Self::member_of_fabric_ip`] and the
    /// port counts), and the activity filter. When the views match, every
    /// trace and looking-glass record classifies identically under either
    /// epoch, so a resident session absorbing the flip can skip
    /// re-extraction and re-converge from the footprint diff alone.
    pub fn same_classification_view(&self, other: &Self) -> bool {
        self.active_ixps == other.active_ixps
            && self.ixp_members == other.ixp_members
            && self.as_ixps == other.as_ixps
            && self.ixp_prefixes.iter() == other.ixp_prefixes.iter()
            // Membership provenance weights the multi-rule IXP-hop
            // detector, so extraction reads it too.
            && self.reconciliation.membership == other.reconciliation.membership
    }

    /// All ASes with any facility record.
    pub fn known_ases(&self) -> impl Iterator<Item = Asn> + '_ {
        self.as_facilities
            .iter()
            .filter(|(_, s)| !s.is_empty())
            .map(|(a, _)| *a)
    }

    /// Total number of distinct facilities referenced anywhere.
    pub fn facility_count(&self) -> usize {
        self.facility_metro.len()
    }

    /// Degrades the knowledge base by deleting a set of facilities from
    /// every record — the Figure 8 robustness experiment ("we executed
    /// CFS while iteratively removing 1,400 facilities from our dataset").
    pub fn remove_facilities(&mut self, removed: &BTreeSet<FacilityId>) {
        for set in self.as_facilities.values_mut() {
            set.retain(|f| !removed.contains(f));
        }
        for set in self.ixp_facilities.values_mut() {
            set.retain(|f| !removed.contains(f));
        }
        self.facility_metro.retain(|f, _| !removed.contains(f));
        self.facility_region.retain(|f, _| !removed.contains(f));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sources::{KbConfig, PublicSources};
    use cfs_topology::{Topology, TopologyConfig};

    fn setup() -> (Topology, KnowledgeBase) {
        let topo = Topology::generate(TopologyConfig::tiny()).unwrap();
        let src = PublicSources::derive(
            &topo,
            &KbConfig {
                noc_pages: 20,
                ..Default::default()
            },
        );
        let kb = KnowledgeBase::assemble(&src, &topo.world);
        (topo, kb)
    }

    #[test]
    fn kb_facilities_are_subsets_of_truth() {
        let (topo, kb) = setup();
        for node in topo.ases.values() {
            let known = kb.facilities_of_as(node.asn);
            for f in &known {
                assert!(node.facilities.contains(f), "{} kb invents {f}", node.asn);
            }
        }
    }

    #[test]
    fn kb_misses_some_links_but_knows_most_ases() {
        // Needs a bigger world: in the tiny one a lucky seed can leave
        // every volunteer record complete.
        let topo = Topology::generate(TopologyConfig::default()).unwrap();
        let src = PublicSources::derive(&topo, &KbConfig::default());
        let kb = KnowledgeBase::assemble(&src, &topo.world);
        let truth_links: usize = topo.ases.values().map(|n| n.facilities.len()).sum();
        let kb_links: usize = topo
            .ases
            .keys()
            .map(|a| kb.facilities_of_as(*a).len())
            .sum();
        assert!(kb_links < truth_links, "no incompleteness modelled");
        assert!(
            kb_links * 10 > truth_links * 5,
            "kb too empty: {kb_links}/{truth_links}"
        );
        let known = topo.ases.keys().filter(|a| kb.knows_as(**a)).count();
        assert!(known * 10 >= topo.ases.len() * 8);
    }

    #[test]
    fn confirmed_prefixes_classify_fabric_addresses() {
        let (topo, kb) = setup();
        let mut classified = 0;
        let mut total = 0;
        for (id, ixp) in topo.ixps.iter() {
            if !ixp.active {
                continue;
            }
            for m in &ixp.members {
                total += 1;
                if kb.ixp_of_ip(m.fabric_ip) == Some(id) {
                    classified += 1;
                }
            }
        }
        assert!(total > 0);
        assert!(
            classified * 10 >= total * 8,
            "{classified}/{total} fabric ips classified"
        );
    }

    #[test]
    fn inactive_ixps_filtered() {
        let (topo, kb) = setup();
        for (id, ixp) in topo.ixps.iter() {
            if !ixp.active {
                assert!(!kb.active_ixps().contains(&id));
                assert_eq!(kb.ixp_of_ip(ixp.peering_lan.nth(1).unwrap()), None);
            }
        }
    }

    #[test]
    fn facility_metros_match_ground_truth() {
        let (topo, kb) = setup();
        let mut resolved = 0;
        for (fid, f) in topo.facilities.iter() {
            if let Some(metro) = kb.metro_of_facility(fid) {
                resolved += 1;
                assert_eq!(metro, f.metro, "metro mismatch for {fid}");
            }
        }
        assert!(resolved * 10 >= topo.facilities.len() * 9);
    }

    #[test]
    fn member_lookup_works_for_covered_ixps() {
        let (topo, kb) = setup();
        let mut hits = 0;
        for (id, ixp) in topo.ixps.iter() {
            for m in &ixp.members {
                if kb.member_of_fabric_ip(id, m.fabric_ip) == Some(m.asn) {
                    hits += 1;
                }
            }
        }
        assert!(hits > 0, "no member directories assembled");
    }

    #[test]
    fn removing_facilities_shrinks_every_view() {
        let (topo, mut kb) = setup();
        let victim: BTreeSet<FacilityId> = topo
            .facilities
            .ids()
            .take(topo.facilities.len() / 2)
            .collect();
        let before: usize = topo
            .ases
            .keys()
            .map(|a| kb.facilities_of_as(*a).len())
            .sum();
        kb.remove_facilities(&victim);
        let after: usize = topo
            .ases
            .keys()
            .map(|a| kb.facilities_of_as(*a).len())
            .sum();
        assert!(after < before);
        for a in topo.ases.keys() {
            for f in kb.facilities_of_as(*a) {
                assert!(!victim.contains(&f));
            }
        }
        assert!(kb.facility_count() <= topo.facilities.len() - victim.len());
    }
}
