//! Step 1: turning raw traceroute hop lists into peering observations
//! (§4.2, "Identifying public and private peering interconnections").

use std::collections::BTreeMap;
use std::net::Ipv4Addr;

use cfs_kb::KnowledgeBase;
use cfs_obs::Recorder;
use cfs_traceroute::Trace;
use cfs_types::{Asn, IxpId, LinkClass};

/// What a single hop address means once mapped through the corrected
/// IP-to-ASN view and the confirmed IXP prefix list.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HopMeaning {
    /// Interface of a known AS.
    As(Asn),
    /// Address from a confirmed IXP peering LAN.
    IxpFabric(IxpId),
    /// Responsive but unmapped address.
    Unknown,
    /// `*` — no reply.
    Silent,
}

/// Maps hop addresses to meanings. The corrected map comes from the alias
/// majority vote (§4.1); raw LPM would misplace point-to-point addresses.
pub struct Resolver<'a> {
    kb: &'a KnowledgeBase,
    corrected: &'a BTreeMap<Ipv4Addr, Asn>,
}

impl<'a> Resolver<'a> {
    /// Creates a resolver over the knowledge base and the corrected
    /// IP-to-ASN map.
    pub fn new(kb: &'a KnowledgeBase, corrected: &'a BTreeMap<Ipv4Addr, Asn>) -> Self {
        Self { kb, corrected }
    }

    /// The meaning of one hop address. IXP space takes precedence: fabric
    /// addresses are *assigned by* the exchange, whatever origin BGP
    /// suggests.
    pub fn meaning(&self, ip: Option<Ipv4Addr>) -> HopMeaning {
        let Some(ip) = ip else {
            return HopMeaning::Silent;
        };
        if let Some(ixp) = self.kb.ixp_of_ip(ip) {
            return HopMeaning::IxpFabric(ixp);
        }
        match self.corrected.get(&ip) {
            Some(asn) => HopMeaning::As(*asn),
            None => HopMeaning::Unknown,
        }
    }
}

/// Rule weights of the multi-rule IXP-hop detector, per-mille of the
/// combined evidence score. The prefix rule dominates (it is the §4.2
/// classifier), the membership rules corroborate, and both-sides
/// agreement adds a bonus — the traIXroute rule mix.
const W_PREFIX: u32 = 400;
const W_NEAR: u32 = 250;
const W_FAR: u32 = 250;
const W_BOTH: u32 = 100;

/// Evidence below this per-mille is too weak to localize a public
/// crossing at the exchange's facilities. Calibrated so a clean,
/// uncontested prefix hit passes alone (400‰): prefix classification
/// with no membership corroboration is the paper's baseline behavior,
/// and must not regress under an empty member directory.
pub const EVIDENCE_MIN_PM: u32 = 350;

/// The trust-weighted evidence behind one public-crossing call: which
/// of the traIXroute-style rules fired (prefix hit, near-side member,
/// far-side member, both-sides agreement) and how much the reconciled
/// records backing them agreed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct IxpHopEvidence {
    /// How many of the four rules fired (1..=4; the prefix rule always
    /// fires for a public observation).
    pub rule_votes: u32,
    /// Combined rule score in per-mille, each vote weighted by the
    /// reconciled record's agreement.
    pub evidence_pm: u32,
    /// Whether a consulted membership record reconciled as contested —
    /// the identification itself rests on disputed data.
    pub contested: bool,
}

impl IxpHopEvidence {
    /// Full confidence: private crossings and BGP-session observations,
    /// which never ride the IXP-hop rules.
    pub const FULL: Self = Self {
        rule_votes: 4,
        evidence_pm: 1000,
        contested: false,
    };

    /// Whether the evidence is too weak to pin the crossing at the
    /// exchange: contested provenance, or a combined score below
    /// [`EVIDENCE_MIN_PM`].
    #[must_use]
    pub fn weak(&self) -> bool {
        self.contested || self.evidence_pm < EVIDENCE_MIN_PM
    }
}

/// One observed interconnection crossing.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Observation {
    /// Near-side AS (the paper's AS A).
    pub near_asn: Asn,
    /// Near-side interface (IP_A) — what Step 2 constrains.
    pub near_ip: Ipv4Addr,
    /// Public or private crossing.
    pub class: LinkClass,
    /// Far-side AS when identifiable (from the hop after the boundary, or
    /// the member list behind a fabric address).
    pub far_asn: Option<Asn>,
    /// The far-side interface: the IXP fabric address (public) or the
    /// neighbour's point-to-point interface (private).
    pub far_ip: Option<Ipv4Addr>,
    /// Rule-vote evidence behind the call (always
    /// [`IxpHopEvidence::FULL`] for private crossings).
    pub evidence: IxpHopEvidence,
}

/// Scores one public crossing against the reconciled knowledge base.
fn score_public_hop(
    kb: &KnowledgeBase,
    ixp: IxpId,
    fabric_ip: Ipv4Addr,
    near: Asn,
    far: Option<Asn>,
) -> IxpHopEvidence {
    let prefix_pm = kb.prefix_agreement_pm(ixp, fabric_ip);
    let member_pm = |asn: Option<Asn>| -> (u32, bool) {
        let Some(asn) = asn else { return (0, false) };
        if kb.membership_contested(ixp, asn) {
            // Contested membership is not evidence — and it taints the
            // call: somebody disputes that this AS is even present.
            (0, true)
        } else {
            (kb.membership_agreement_pm(ixp, asn), false)
        }
    };
    let (near_pm, near_contested) = member_pm(Some(near));
    let (far_pm, far_contested) = member_pm(far);
    let both_pm = near_pm.min(far_pm);
    let mut rule_votes = 1; // the prefix rule fired by construction
    if near_pm > 0 {
        rule_votes += 1;
    }
    if far_pm > 0 {
        rule_votes += 1;
    }
    if both_pm > 0 {
        rule_votes += 1;
    }
    IxpHopEvidence {
        rule_votes,
        evidence_pm: (W_PREFIX * prefix_pm + W_NEAR * near_pm + W_FAR * far_pm + W_BOTH * both_pm)
            / 1000,
        contested: near_contested || far_contested,
    }
}

/// Extracts the peering observations from one trace.
///
/// Rules (§4.2 Step 1):
/// * `(IP_A, IP_e, IP_B)` with `IP_e` in confirmed IXP space ⇒ public
///   peering between A and the fabric address's owner. The owner is taken
///   from the IXP's member directory when available, else from the next
///   hop's AS.
/// * `(IP_A, IP_B)` with different ASes ⇒ private peering A–B; the far
///   interface is IP_B itself.
/// * Crossings involving unresponsive or unmapped middle hops are
///   discarded.
pub fn extract_observations(trace: &Trace, resolver: &Resolver<'_>) -> Vec<Observation> {
    let ips: Vec<Option<Ipv4Addr>> = trace.hops.iter().map(|h| h.ip).collect();
    let meanings: Vec<HopMeaning> = ips.iter().map(|ip| resolver.meaning(*ip)).collect();
    let mut out = Vec::new();

    for i in 0..meanings.len() {
        let HopMeaning::As(a) = meanings[i] else {
            continue;
        };
        let near_ip = ips[i].expect("mapped hop has an address");

        match meanings.get(i + 1) {
            // ---- public: A, fabric, B ----
            Some(HopMeaning::IxpFabric(ixp)) => {
                let fabric_ip = ips[i + 1].expect("mapped hop has an address");
                // Identify the far member: directory first, next hop second.
                let directory = resolver.kb.member_of_fabric_ip(*ixp, fabric_ip);
                let next_as = match meanings.get(i + 2) {
                    Some(HopMeaning::As(b)) if *b != a => Some(*b),
                    _ => None,
                };
                let far_asn = directory.or(next_as);
                // A fabric hop followed by silence/unknown and no
                // directory entry is unusable (paper: discard).
                if far_asn.is_none() {
                    continue;
                }
                out.push(Observation {
                    near_asn: a,
                    near_ip,
                    class: LinkClass::Public { ixp: *ixp },
                    far_asn,
                    far_ip: Some(fabric_ip),
                    evidence: score_public_hop(resolver.kb, *ixp, fabric_ip, a, far_asn),
                });
            }
            // ---- private: A, B directly ----
            Some(HopMeaning::As(b)) if *b != a => {
                let far_ip = ips[i + 1].expect("mapped hop has an address");
                out.push(Observation {
                    near_asn: a,
                    near_ip,
                    class: LinkClass::Private,
                    far_asn: Some(*b),
                    far_ip: Some(far_ip),
                    evidence: IxpHopEvidence::FULL,
                });
            }
            _ => {}
        }
    }
    out
}

/// [`extract_observations`] plus telemetry: counts public and private
/// crossings and samples the per-trace observation count.
///
/// All recording here is per *trace*, never per worker chunk, so the
/// merged totals are independent of how the extraction stage splits
/// traces over threads (the DESIGN.md §7 determinism contract).
pub fn extract_observations_recorded(
    trace: &Trace,
    resolver: &Resolver<'_>,
    rec: &dyn Recorder,
) -> Vec<Observation> {
    let out = extract_observations(trace, resolver);
    for obs in &out {
        match obs.class {
            LinkClass::Public { .. } => {
                rec.counter("observe.public", 1);
                rec.counter("ixp_hop.rule_votes", u64::from(obs.evidence.rule_votes));
            }
            LinkClass::Private => rec.counter("observe.private", 1),
        }
    }
    rec.observe("observe.per_trace", out.len() as u64);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfs_kb::{KbConfig, KnowledgeBase, PublicSources};
    use cfs_topology::{Topology, TopologyConfig};
    use cfs_traceroute::Hop;

    fn hop(ip: &str) -> Hop {
        Hop {
            ip: Some(ip.parse().unwrap()),
            rtt_ms: 1.0,
        }
    }

    fn star() -> Hop {
        Hop {
            ip: None,
            rtt_ms: 0.0,
        }
    }

    fn trace_of(hops: Vec<Hop>) -> Trace {
        Trace {
            vp: cfs_types::VantagePointId::new(0),
            src_asn: Asn(64_500),
            target: "198.51.100.1".parse().unwrap(),
            at_ms: 0,
            hops,
            reached: true,
        }
    }

    /// Builds a resolver over a real KB plus a hand-made corrected map.
    fn fixture() -> (Topology, KnowledgeBase) {
        let topo = Topology::generate(TopologyConfig::tiny()).unwrap();
        let src = PublicSources::derive(&topo, &KbConfig::default());
        let kb = KnowledgeBase::assemble(&src, &topo.world);
        (topo, kb)
    }

    #[test]
    fn private_adjacency_extracted() {
        let (_topo, kb) = fixture();
        let corrected: BTreeMap<Ipv4Addr, Asn> = [
            ("10.0.0.1".parse().unwrap(), Asn(100)),
            ("10.1.0.1".parse().unwrap(), Asn(200)),
        ]
        .into_iter()
        .collect();
        let resolver = Resolver::new(&kb, &corrected);
        let t = trace_of(vec![hop("10.0.0.1"), hop("10.1.0.1")]);
        let obs = extract_observations(&t, &resolver);
        assert_eq!(obs.len(), 1);
        assert_eq!(obs[0].near_asn, Asn(100));
        assert_eq!(obs[0].class, LinkClass::Private);
        assert_eq!(obs[0].far_asn, Some(Asn(200)));
        assert_eq!(obs[0].far_ip, Some("10.1.0.1".parse().unwrap()));
    }

    #[test]
    fn same_as_hops_produce_nothing() {
        let (_topo, kb) = fixture();
        let corrected: BTreeMap<Ipv4Addr, Asn> = [
            ("10.0.0.1".parse().unwrap(), Asn(100)),
            ("10.0.0.2".parse().unwrap(), Asn(100)),
        ]
        .into_iter()
        .collect();
        let resolver = Resolver::new(&kb, &corrected);
        let t = trace_of(vec![hop("10.0.0.1"), hop("10.0.0.2")]);
        assert!(extract_observations(&t, &resolver).is_empty());
    }

    #[test]
    fn silent_middle_hop_discards_crossing() {
        let (_topo, kb) = fixture();
        let corrected: BTreeMap<Ipv4Addr, Asn> = [
            ("10.0.0.1".parse().unwrap(), Asn(100)),
            ("10.1.0.1".parse().unwrap(), Asn(200)),
        ]
        .into_iter()
        .collect();
        let resolver = Resolver::new(&kb, &corrected);
        let t = trace_of(vec![hop("10.0.0.1"), star(), hop("10.1.0.1")]);
        assert!(extract_observations(&t, &resolver).is_empty());
    }

    #[test]
    fn public_adjacency_uses_member_directory_or_next_hop() {
        let (topo, kb) = fixture();
        // Find an active IXP with a member directory entry in the KB.
        let mut found = None;
        'outer: for (id, ixp) in topo.ixps.iter() {
            for m in &ixp.members {
                if kb.ixp_of_ip(m.fabric_ip) == Some(id) {
                    found = Some((id, m.fabric_ip, m.asn));
                    break 'outer;
                }
            }
        }
        let (ixp, fabric_ip, member_asn) = found.expect("an ixp with confirmed prefix");
        let near: Ipv4Addr = "10.0.0.1".parse().unwrap();
        let next: Ipv4Addr = "10.1.0.1".parse().unwrap();
        let corrected: BTreeMap<Ipv4Addr, Asn> =
            [(near, Asn(100)), (next, member_asn)].into_iter().collect();
        let resolver = Resolver::new(&kb, &corrected);

        let t = trace_of(vec![
            Hop {
                ip: Some(near),
                rtt_ms: 1.0,
            },
            Hop {
                ip: Some(fabric_ip),
                rtt_ms: 2.0,
            },
            Hop {
                ip: Some(next),
                rtt_ms: 3.0,
            },
        ]);
        let obs = extract_observations(&t, &resolver);
        assert_eq!(obs.len(), 1);
        assert_eq!(obs[0].class, LinkClass::Public { ixp });
        assert_eq!(obs[0].near_asn, Asn(100));
        assert_eq!(obs[0].far_ip, Some(fabric_ip));
        assert_eq!(obs[0].far_asn, Some(member_asn));
    }

    #[test]
    fn fabric_hop_without_identity_is_discarded() {
        let (topo, kb) = fixture();
        // A fabric IP that is confirmed but has no directory entry and no
        // mapped next hop.
        let mut pick = None;
        'outer: for (id, ixp) in topo.ixps.iter() {
            for m in &ixp.members {
                if kb.ixp_of_ip(m.fabric_ip) == Some(id)
                    && kb.member_of_fabric_ip(id, m.fabric_ip).is_none()
                {
                    pick = Some(m.fabric_ip);
                    break 'outer;
                }
            }
        }
        let Some(fabric_ip) = pick else {
            return; // every confirmed IXP published a directory — fine
        };
        let near: Ipv4Addr = "10.0.0.1".parse().unwrap();
        let corrected: BTreeMap<Ipv4Addr, Asn> = [(near, Asn(100))].into_iter().collect();
        let resolver = Resolver::new(&kb, &corrected);
        let t = trace_of(vec![
            Hop {
                ip: Some(near),
                rtt_ms: 1.0,
            },
            Hop {
                ip: Some(fabric_ip),
                rtt_ms: 2.0,
            },
            star(),
        ]);
        assert!(extract_observations(&t, &resolver).is_empty());
    }

    #[test]
    fn private_and_directory_crossings_carry_expected_evidence() {
        let (topo, kb) = fixture();
        // Private adjacency: never rides the IXP-hop rules → FULL.
        let corrected: BTreeMap<Ipv4Addr, Asn> = [
            ("10.0.0.1".parse().unwrap(), Asn(100)),
            ("10.1.0.1".parse().unwrap(), Asn(200)),
        ]
        .into_iter()
        .collect();
        let resolver = Resolver::new(&kb, &corrected);
        let t = trace_of(vec![hop("10.0.0.1"), hop("10.1.0.1")]);
        let obs = extract_observations(&t, &resolver);
        assert_eq!(obs[0].evidence, IxpHopEvidence::FULL);
        assert!(!obs[0].evidence.weak());

        // Public crossing identified via a clean directory entry: the
        // prefix and far-member rules both fire with full agreement, so
        // the score is at least W_PREFIX + W_FAR and never weak.
        let mut found = None;
        'outer: for (id, ixp) in topo.ixps.iter() {
            for m in &ixp.members {
                if kb.ixp_of_ip(m.fabric_ip) == Some(id)
                    && kb.member_of_fabric_ip(id, m.fabric_ip).is_some()
                    && !kb.membership_contested(id, m.asn)
                {
                    found = Some((id, m.fabric_ip));
                    break 'outer;
                }
            }
        }
        let (ixp, fabric_ip) = found.expect("an ixp with a clean directory entry");
        let near: Ipv4Addr = "10.0.0.1".parse().unwrap();
        let corrected: BTreeMap<Ipv4Addr, Asn> = [(near, Asn(100))].into_iter().collect();
        let resolver = Resolver::new(&kb, &corrected);
        let t = trace_of(vec![
            Hop {
                ip: Some(near),
                rtt_ms: 1.0,
            },
            Hop {
                ip: Some(fabric_ip),
                rtt_ms: 2.0,
            },
            star(),
        ]);
        let obs = extract_observations(&t, &resolver);
        assert_eq!(obs.len(), 1);
        let ev = obs[0].evidence;
        assert_eq!(obs[0].class, LinkClass::Public { ixp });
        assert!(ev.rule_votes >= 2, "prefix + far-member must fire: {ev:?}");
        assert!(
            ev.evidence_pm >= EVIDENCE_MIN_PM && !ev.weak(),
            "clean directory crossing must clear the gate: {ev:?}"
        );
        assert!(!ev.contested);
    }

    #[test]
    fn contested_membership_taints_the_evidence() {
        // A synthetic score check against the rule arithmetic: a
        // contested membership contributes zero and forces the contested
        // flag, whatever the prefix agreement says.
        let (topo, kb) = fixture();
        let Some((ixp, fabric_ip, member)) = topo.ixps.iter().find_map(|(id, ixp)| {
            ixp.members.iter().find_map(|m| {
                (kb.ixp_of_ip(m.fabric_ip) == Some(id)).then_some((id, m.fabric_ip, m.asn))
            })
        }) else {
            panic!("tiny world always has a confirmed fabric address");
        };
        let clean = score_public_hop(&kb, ixp, fabric_ip, Asn(64_999), Some(member));
        // The synthetic near AS 64999 is nobody's member: only the far
        // side can corroborate the prefix rule.
        assert!(clean.rule_votes <= 3);
        if kb.membership_contested(ixp, member) {
            assert!(clean.contested && clean.weak());
        } else {
            assert!(!clean.contested);
        }
        // No far identity at all: prefix-only call, exactly one vote,
        // and the score collapses to the weighted prefix agreement.
        let alone = score_public_hop(&kb, ixp, fabric_ip, Asn(64_999), None);
        assert_eq!(alone.rule_votes, 1);
        assert_eq!(
            alone.evidence_pm,
            W_PREFIX * kb.prefix_agreement_pm(ixp, fabric_ip) / 1000
        );
    }

    #[test]
    fn multiple_crossings_in_one_trace() {
        let (_topo, kb) = fixture();
        let corrected: BTreeMap<Ipv4Addr, Asn> = [
            ("10.0.0.1".parse().unwrap(), Asn(100)),
            ("10.1.0.1".parse().unwrap(), Asn(200)),
            ("10.2.0.1".parse().unwrap(), Asn(300)),
        ]
        .into_iter()
        .collect();
        let resolver = Resolver::new(&kb, &corrected);
        let t = trace_of(vec![hop("10.0.0.1"), hop("10.1.0.1"), hop("10.2.0.1")]);
        let obs = extract_observations(&t, &resolver);
        assert_eq!(obs.len(), 2);
        assert_eq!(obs[0].far_asn, Some(Asn(200)));
        assert_eq!(obs[1].near_asn, Asn(200));
        assert_eq!(obs[1].far_asn, Some(Asn(300)));
    }
}
