//! The iterative Constrained Facility Search engine (§4.2–§4.4).
//!
//! The search core is `Send`: every substrate reference it holds
//! ([`Engine`], [`KnowledgeBase`], [`VpSet`], [`IpAsnDb`]) is `Sync`, all
//! facility sets are immutable [`FacilitySet`] values behind shared
//! allocations, and the three measurement-heavy stages (observation
//! extraction, remote-peering verdicts, follow-up traceroutes) fan out
//! over scoped worker threads. Every parallel stage merges its results in
//! a deterministic order, so a run produces a byte-identical
//! [`CfsReport`] at any worker count.
//!
//! All iterated engine state (`states`, the facility caches, the
//! exposure index…) is deliberately `BTreeMap`/`BTreeSet`, never the
//! hashed std containers, so iteration order — and therefore report
//! bytes — cannot depend on hasher seeds. `cfs-lint`'s
//! `unordered-iteration` rule enforces this for every library crate
//! (DESIGN.md §6).

use std::collections::{BTreeMap, BTreeSet};
use std::net::Ipv4Addr;
use std::sync::Arc;

use cfs_alias::{correct_ip_to_asn, resolve_aliases, AliasResolution, IpIdProber, MidarConfig};
use cfs_chaos::{CircuitBreaker, RetryBudget, RetryPolicy};
use cfs_kb::KnowledgeBase;
use cfs_net::IpAsnDb;
use cfs_obs::{NoopRecorder, Recorder};
use cfs_traceroute::{Engine, Platform, ProbeService, Trace, VpSet};
use cfs_types::{
    Asn, Error, FacilityId, FacilitySet, FacilitySetInterner, IxpId, LinkClass, MetroId,
    PeeringKind, Result, UnresolvedReason, VantagePointId,
};

use crate::observe::{extract_observations_recorded, Observation, Resolver};
use crate::proximity::ProximityModel;
use crate::remote::RemoteTester;
use crate::report::{
    CandidateHistogram, CfsReport, ConvergenceTelemetry, DataQualityReport, InferredInterface,
    InferredLink, RouterRoleStats,
};
use crate::state::{IfaceState, SearchOutcome};

/// Tuning knobs of the search loop.
#[derive(Clone, Debug)]
pub struct CfsConfig {
    /// Iteration cap (the paper stops at 100).
    pub max_iterations: usize,
    /// Unresolved interfaces to chase per iteration (measurement budget).
    pub followup_interfaces: usize,
    /// Follow-up targets per chased interface, smallest overlap first.
    pub targets_per_interface: usize,
    /// Vantage points probing each follow-up target.
    pub vps_per_target: usize,
    /// Stop after this many iterations without progress.
    pub stale_iterations: usize,
    /// Re-run alias resolution whenever this many iterations have added
    /// new interfaces.
    pub realias_every: usize,
    /// Alias-resolution tuning.
    pub alias: MidarConfig,
    /// Run the reverse search of §4.3.
    pub reverse_search: bool,
    /// Apply the switch-proximity heuristic of §4.4 at the end.
    pub proximity: bool,
    /// Apply Step 3 (alias sets share a facility). Disabled only by the
    /// ablation experiment.
    pub alias_constraints: bool,
    /// Worker threads for the parallel stages; `0` uses the machine's
    /// available parallelism. The report is byte-identical at any value.
    pub threads: usize,
    /// Backoff schedule for re-issuing failed follow-up traceroutes
    /// (DESIGN.md §9). Jitter derives from the run seed, never ambient
    /// randomness, so retries are deterministic.
    pub retry: RetryPolicy,
    /// Total follow-up retries a run may spend across all iterations;
    /// exhaustion surfaces as `probe_exhausted` verdicts, not an error.
    pub retry_budget: u64,
    /// Consecutive failed probes before a vantage point's circuit opens
    /// and follow-up planning routes around it.
    pub breaker_threshold: u32,
    /// How long (virtual ms) an open circuit keeps a vantage point out
    /// of the follow-up pool.
    pub breaker_cooldown_ms: u64,
    /// Widen empty facility intersections to metro-level candidates
    /// instead of dead-ending (DESIGN.md §9).
    pub metro_widening: bool,
    /// Gate public-crossing constraints on the multi-rule IXP-hop
    /// evidence and refuse facility pins with contested provenance
    /// (DESIGN.md §11). Disabled only by the prefix-only baseline in
    /// the detector-comparison experiment.
    pub evidence_gating: bool,
}

impl Default for CfsConfig {
    fn default() -> Self {
        Self {
            max_iterations: 100,
            followup_interfaces: 120,
            targets_per_interface: 3,
            vps_per_target: 6,
            stale_iterations: 6,
            realias_every: 3,
            alias: MidarConfig::default(),
            reverse_search: true,
            proximity: true,
            alias_constraints: true,
            threads: 0,
            retry: RetryPolicy::default(),
            retry_budget: 768,
            breaker_threshold: 6,
            breaker_cooldown_ms: 600_000,
            metro_widening: true,
            evidence_gating: true,
        }
    }
}

/// A follow-up probe that produced no routing information at all: every
/// hop anonymous (rate-limited/silent routers) or no hops (vantage-point
/// outage, probe timeout). Such traces add no observations, so they are
/// the retry trigger.
fn probe_failed(t: &Trace) -> bool {
    t.hops.iter().all(|h| h.ip.is_none())
}

/// The knowledge base a search reads from: borrowed at build time, or an
/// owned epoch swapped in by a `KbEpochFlip` delta. Every KB read in the
/// engine goes through [`Cfs::kb`], so a flip atomically retargets the
/// whole constraint system.
pub(crate) enum KbHandle<'a> {
    /// The builder-supplied knowledge base.
    Borrowed(&'a KnowledgeBase),
    /// A replacement epoch installed by [`crate::session::Delta::KbEpochFlip`].
    Owned(Arc<KnowledgeBase>),
}

impl KbHandle<'_> {
    pub(crate) fn get(&self) -> &KnowledgeBase {
        match self {
            KbHandle::Borrowed(kb) => kb,
            KbHandle::Owned(kb) => kb,
        }
    }
}

/// A constraint-graph dependency key: which knowledge-base footprint a
/// state's constraints were computed from. A KB epoch flip diffs the
/// footprint caches and dirties exactly `deps[changed key]`, so
/// re-convergence sweeps only interfaces whose inputs actually moved.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub(crate) enum DepKey {
    /// `facilities_of_as(asn)` was intersected into the state.
    As(Asn),
    /// `facilities_of_ixp(ixp)` was intersected into the state.
    Ixp(IxpId),
    /// The metro-level widening pool of `ixp` could have been applied.
    Metro(IxpId),
}

/// Convergence record of one iteration (drives Figure 7).
#[derive(Clone, Copy, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct IterationStats {
    /// 1-based iteration number.
    pub iteration: usize,
    /// Interfaces resolved so far.
    pub resolved: usize,
    /// Interfaces tracked so far.
    pub tracked: usize,
    /// Follow-up traceroutes issued during this iteration.
    pub traces_issued: usize,
}

/// The Constrained Facility Search engine.
///
/// Built through [`Cfs::builder`], which wires the measurement substrate
/// (traceroute engine and vantage points), the public data (knowledge
/// base, IP-to-ASN service), and the configuration; `ingest` feeds
/// bootstrap campaigns; `run` iterates to convergence and produces the
/// [`CfsReport`].
pub struct Cfs<'a> {
    pub(crate) engine: &'a dyn ProbeService,
    pub(crate) kb: KbHandle<'a>,
    pub(crate) vps: &'a VpSet,
    pub(crate) ipasn: &'a IpAsnDb,
    pub(crate) cfg: CfsConfig,
    pub(crate) platforms: Option<BTreeSet<Platform>>,

    pub(crate) traces: Vec<Trace>,
    pub(crate) processed: usize,
    pub(crate) hop_ips: BTreeSet<Ipv4Addr>,
    pub(crate) aliases: AliasResolution,
    pub(crate) corrected: BTreeMap<Ipv4Addr, Asn>,
    pub(crate) observations: Vec<Observation>,
    /// Observations from BGP-capable looking glasses (§3.2 augmentation);
    /// survive the observation rebuilds that follow re-aliasing.
    pub(crate) session_observations: Vec<Observation>,
    /// Raw looking-glass session listings in ingestion order, replayed
    /// under the new epoch when a `KbEpochFlip` delta re-classifies them.
    pub(crate) bgp_log: Vec<(Asn, cfs_bgp::BgpSession)>,
    pub(crate) obs_keys: BTreeSet<(Ipv4Addr, Option<IxpId>, Option<Ipv4Addr>)>,
    pub(crate) states: BTreeMap<Ipv4Addr, IfaceState>,
    /// Remote-peering verdicts keyed by fabric address, each bound to the
    /// first exchange that triggered its test (the binding is needed to
    /// recompute the verdict when a delta invalidates it).
    pub(crate) remote_cache: BTreeMap<Ipv4Addr, (IxpId, Option<bool>)>,
    pub(crate) vp_crossed: BTreeMap<Asn, Vec<VantagePointId>>,
    pub(crate) chase_attempts: BTreeMap<Ipv4Addr, usize>,
    pub(crate) interner: FacilitySetInterner,
    pub(crate) as_fac_cache: BTreeMap<Asn, FacilitySet>,
    pub(crate) ixp_fac_cache: BTreeMap<IxpId, FacilitySet>,
    pub(crate) metro_cand_cache: BTreeMap<IxpId, FacilitySet>,
    /// Reverse dependency index: KB footprint key → interfaces whose
    /// constraints consumed it (see [`DepKey`]).
    pub(crate) deps: BTreeMap<DepKey, BTreeSet<Ipv4Addr>>,
    /// Vantage points administratively down (`VpStatusChange` deltas);
    /// excluded from the remote-peering measurement pool.
    pub(crate) vp_down: BTreeSet<VantagePointId>,
    pub(crate) clock_ms: u64,
    pub(crate) iterations: Vec<IterationStats>,
    pub(crate) traces_issued: usize,
    pub(crate) new_ips_since_alias: usize,
    pub(crate) recorder: Arc<dyn Recorder>,
    pub(crate) conv_hists: Vec<CandidateHistogram>,
    /// Follow-up retry budget; spent/denied counts feed the
    /// [`DataQualityReport`].
    pub(crate) retry_budget: RetryBudget,
    /// Per-vantage-point circuit breaker over follow-up probe failures.
    pub(crate) breaker: CircuitBreaker,
    /// Seed for retry backoff jitter, derived from the topology seed so
    /// the schedule is a pure function of the run inputs.
    pub(crate) chaos_seed: u64,
    /// Probes still failed after every retry round.
    pub(crate) failed_probes: u64,
}

/// Builder for [`Cfs`]: names every dependency at the call site instead
/// of a five-argument positional constructor.
///
/// ```ignore
/// let mut cfs = Cfs::builder(&engine, &kb)
///     .vps(&vps)
///     .ipasn(&ipasn)
///     .config(CfsConfig::default())
///     .threads(8)
///     .build()?;
/// ```
#[must_use = "call .build() to obtain the Cfs engine"]
pub struct CfsBuilder<'a> {
    engine: &'a dyn ProbeService,
    kb: &'a KnowledgeBase,
    vps: Option<&'a VpSet>,
    ipasn: Option<&'a IpAsnDb>,
    cfg: CfsConfig,
    platforms: Option<BTreeSet<Platform>>,
    recorder: Arc<dyn Recorder>,
    vps_down: BTreeSet<VantagePointId>,
}

impl<'a> CfsBuilder<'a> {
    /// The vantage-point set issuing measurements (required).
    pub fn vps(mut self, vps: &'a VpSet) -> Self {
        self.vps = Some(vps);
        self
    }

    /// The IP-to-ASN service used by alias correction (required).
    pub fn ipasn(mut self, ipasn: &'a IpAsnDb) -> Self {
        self.ipasn = Some(ipasn);
        self
    }

    /// Replaces the whole configuration (default: [`CfsConfig::default`]).
    pub fn config(mut self, cfg: CfsConfig) -> Self {
        self.cfg = cfg;
        self
    }

    /// Restricts follow-up measurements to the given platforms (the
    /// Figure 7 single-platform runs).
    pub fn platforms(mut self, platforms: &[Platform]) -> Self {
        self.platforms = Some(platforms.iter().copied().collect());
        self
    }

    /// Worker threads for the parallel stages (`0` = available
    /// parallelism). Shorthand for setting [`CfsConfig::threads`].
    pub fn threads(mut self, threads: usize) -> Self {
        self.cfg.threads = threads;
        self
    }

    /// Attaches an observability recorder: every pipeline stage then
    /// emits spans, counters, and histograms through it (default: the
    /// no-op recorder, which costs one empty virtual call per signal).
    /// With a `cfs_obs::TraceRecorder` the stable export is
    /// byte-identical at any [`CfsBuilder::threads`] value.
    pub fn recorder(mut self, recorder: Arc<dyn Recorder>) -> Self {
        self.recorder = recorder;
        self
    }

    /// Marks vantage points as administratively down from the start:
    /// they are excluded from the remote-peering measurement pool. A
    /// fresh search built with the same set reproduces a resident
    /// session that absorbed the equivalent `VpStatusChange` deltas.
    pub fn vps_down(mut self, down: BTreeSet<VantagePointId>) -> Self {
        self.vps_down = down;
        self
    }

    /// Builds the engine; errors when a required dependency was not set.
    pub fn build(self) -> Result<Cfs<'a>> {
        let vps = self
            .vps
            .ok_or_else(|| Error::invalid("CfsBuilder: vantage points not set (call .vps())"))?;
        let ipasn = self
            .ipasn
            .ok_or_else(|| Error::invalid("CfsBuilder: IP-to-ASN db not set (call .ipasn())"))?;
        Ok(Cfs::assemble(
            self.engine,
            vps,
            self.kb,
            ipasn,
            self.cfg,
            self.platforms,
            self.recorder,
            self.vps_down,
        ))
    }

    /// Builds a resident [`crate::session::CfsSession`] around the
    /// engine: the service-mode entry point with incremental
    /// re-convergence (`apply_delta`) and a queryable cached report.
    pub fn build_session(self) -> Result<crate::session::CfsSession<'a>> {
        Ok(crate::session::CfsSession::new(self.build()?))
    }
}

impl<'a> Cfs<'a> {
    /// Starts building a search over the given measurement engine and
    /// knowledge base. See [`CfsBuilder`]. Any [`ProbeService`] works —
    /// the clean simulator [`Engine`] or a fault-injecting
    /// `cfs_traceroute::ChaosEngine`; the search never learns which.
    pub fn builder(engine: &'a dyn ProbeService, kb: &'a KnowledgeBase) -> CfsBuilder<'a> {
        CfsBuilder {
            engine,
            kb,
            vps: None,
            ipasn: None,
            cfg: CfsConfig::default(),
            platforms: None,
            recorder: Arc::new(NoopRecorder),
            vps_down: BTreeSet::new(),
        }
    }

    /// The knowledge base the search currently reads from (the borrowed
    /// build-time epoch, or the owned epoch a delta flipped in).
    pub(crate) fn kb(&self) -> &KnowledgeBase {
        self.kb.get()
    }

    #[allow(clippy::too_many_arguments)]
    fn assemble(
        engine: &'a dyn ProbeService,
        vps: &'a VpSet,
        kb: &'a KnowledgeBase,
        ipasn: &'a IpAsnDb,
        cfg: CfsConfig,
        platforms: Option<BTreeSet<Platform>>,
        recorder: Arc<dyn Recorder>,
        vp_down: BTreeSet<VantagePointId>,
    ) -> Self {
        let retry_budget = RetryBudget::new(cfg.retry_budget);
        let breaker = CircuitBreaker::new(cfg.breaker_threshold, cfg.breaker_cooldown_ms);
        let chaos_seed = cfs_chaos::splitmix64(engine.topology().config.seed ^ 0xcf5c_4a05);
        // KB-plane quality counters, once per engine: reconciliation is
        // a pure function of the assembled KB, independent of thread
        // count and iteration schedule.
        let q = kb.quality();
        recorder.counter("kb.records", q.records);
        recorder.counter("kb.agreement", u64::from(q.agreement_mean_pm));
        recorder.counter("kb.conflicts", q.contested);
        Self {
            engine,
            kb: KbHandle::Borrowed(kb),
            vps,
            ipasn,
            cfg,
            platforms,
            traces: Vec::new(),
            processed: 0,
            hop_ips: BTreeSet::new(),
            aliases: AliasResolution::default(),
            corrected: BTreeMap::new(),
            observations: Vec::new(),
            session_observations: Vec::new(),
            bgp_log: Vec::new(),
            obs_keys: BTreeSet::new(),
            states: BTreeMap::new(),
            remote_cache: BTreeMap::new(),
            vp_crossed: BTreeMap::new(),
            chase_attempts: BTreeMap::new(),
            interner: FacilitySetInterner::new(),
            as_fac_cache: BTreeMap::new(),
            ixp_fac_cache: BTreeMap::new(),
            metro_cand_cache: BTreeMap::new(),
            deps: BTreeMap::new(),
            vp_down,
            clock_ms: 0,
            iterations: Vec::new(),
            traces_issued: 0,
            new_ips_since_alias: 0,
            recorder,
            conv_hists: Vec::new(),
            retry_budget,
            breaker,
            chaos_seed,
            failed_probes: 0,
        }
    }

    /// Effective worker count for the parallel stages.
    pub(crate) fn workers(&self) -> usize {
        let n = match self.cfg.threads {
            0 => std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            n => n,
        };
        n.clamp(1, 16)
    }

    /// Feeds bootstrap traces (targeted campaigns and archived sweeps).
    pub fn ingest(&mut self, traces: Vec<Trace>) {
        for t in &traces {
            for hop in &t.hops {
                if let Some(ip) = hop.ip {
                    if self.hop_ips.insert(ip) {
                        self.new_ips_since_alias += 1;
                    }
                }
            }
        }
        self.traces.extend(traces);
    }

    /// Feeds BGP session listings from BGP-capable looking glasses
    /// (§3.2): each session pins both end addresses and the neighbor ASN
    /// of an interconnection without a traceroute having to cross it.
    /// `owner` is the AS operating the queried looking glass.
    pub fn ingest_bgp_sessions(&mut self, owner: Asn, sessions: &[cfs_bgp::BgpSession]) {
        for s in sessions {
            self.bgp_log.push((owner, *s));
            for ip in [s.local_ip, s.neighbor_ip] {
                if self.hop_ips.insert(ip) {
                    self.new_ips_since_alias += 1;
                }
            }
            // Classification mirrors Step 1: confirmed IXP space ⇒ public.
            let class = match self.kb().ixp_of_ip(s.neighbor_ip) {
                Some(ixp) => LinkClass::Public { ixp },
                None => LinkClass::Private,
            };
            let obs = Observation {
                near_asn: owner,
                near_ip: s.local_ip,
                class,
                far_asn: Some(s.neighbor_asn),
                far_ip: Some(s.neighbor_ip),
                // A configured BGP session is direct operator evidence;
                // the IXP-hop rules never applied.
                evidence: crate::observe::IxpHopEvidence::FULL,
            };
            let key = (obs.near_ip, obs.class.ixp(), obs.far_ip);
            if self.obs_keys.insert(key) {
                self.session_observations.push(obs);
            }
        }
    }

    /// Resets every derived artifact back to the post-builder state
    /// while keeping the external inputs — raw traces, the
    /// looking-glass log, the current KB epoch, vantage-point status —
    /// so [`Cfs::run_to_convergence`] can be re-run from scratch over
    /// them. This is the replay entry point behind follow-up-driven
    /// sessions, where targeted probing reacts to global state and no
    /// scoped pass can reproduce convergence. The caller is responsible
    /// for first truncating `traces` to the external prefix (follow-up
    /// probes from the previous run are re-issued by the replay itself).
    pub(crate) fn reset_for_replay(&mut self) {
        self.processed = 0;
        self.hop_ips.clear();
        for t in &self.traces {
            for hop in &t.hops {
                if let Some(ip) = hop.ip {
                    self.hop_ips.insert(ip);
                }
            }
        }
        for (_, s) in &self.bgp_log {
            self.hop_ips.insert(s.local_ip);
            self.hop_ips.insert(s.neighbor_ip);
        }
        self.new_ips_since_alias = self.hop_ips.len();
        self.aliases = AliasResolution::default();
        self.corrected.clear();
        self.observations.clear();
        self.obs_keys.clear();
        self.states.clear();
        self.remote_cache.clear();
        self.vp_crossed.clear();
        self.chase_attempts.clear();
        self.interner = FacilitySetInterner::new();
        self.as_fac_cache.clear();
        self.ixp_fac_cache.clear();
        self.metro_cand_cache.clear();
        self.deps.clear();
        self.clock_ms = 0;
        self.iterations.clear();
        self.traces_issued = 0;
        self.conv_hists.clear();
        self.retry_budget = RetryBudget::new(self.cfg.retry_budget);
        self.breaker =
            CircuitBreaker::new(self.cfg.breaker_threshold, self.cfg.breaker_cooldown_ms);
        self.failed_probes = 0;
        // Rebuild the looking-glass observations under the current KB
        // epoch, exactly as ingest_bgp_sessions would have built them.
        self.session_observations.clear();
        let log = std::mem::take(&mut self.bgp_log);
        for (owner, s) in &log {
            let class = match self.kb().ixp_of_ip(s.neighbor_ip) {
                Some(ixp) => LinkClass::Public { ixp },
                None => LinkClass::Private,
            };
            let obs = Observation {
                near_asn: *owner,
                near_ip: s.local_ip,
                class,
                far_asn: Some(s.neighbor_asn),
                far_ip: Some(s.neighbor_ip),
                evidence: crate::observe::IxpHopEvidence::FULL,
            };
            let key = (obs.near_ip, obs.class.ixp(), obs.far_ip);
            if self.obs_keys.insert(key) {
                self.session_observations.push(obs);
            }
        }
        self.bgp_log = log;
    }

    /// Runs the search to convergence (or the iteration cap) and returns
    /// the report.
    ///
    /// This is the batch entry point: a thin converge-once wrapper over
    /// the same internals the resident session API drives —
    /// `CfsBuilder::build_session()` followed by
    /// [`crate::session::CfsSession::converge`] produces the identical
    /// report (and the session can then absorb deltas, which `run` never
    /// can).
    pub fn run(&mut self) -> CfsReport {
        cfs_obs::span!(self.recorder, "cfs.run");
        self.run_to_convergence();
        self.build_report()
    }

    /// The iterative constraint loop: applies constraints, records
    /// convergence, issues follow-ups, and stops on the paper's
    /// staleness/iteration-cap/all-done conditions. Leaves every verdict
    /// in `self.states`; callers build the report separately.
    pub(crate) fn run_to_convergence(&mut self) {
        self.refresh_aliases();
        self.process_new_traces();

        let mut stale = 0usize;
        let mut last_resolved = 0usize;
        for iteration in 1..=self.cfg.max_iterations {
            cfs_obs::span!(self.recorder, "cfs.iteration");
            self.recorder.counter("cfs.iterations", 1);
            self.apply_constraints(iteration);
            if self.cfg.alias_constraints {
                self.apply_alias_constraints(iteration);
            }
            self.record_convergence(iteration);
            let resolved = self.resolved_count();
            let mut issued = 0usize;

            let all_done = self
                .states
                .values()
                .all(|s| s.outcome() != SearchOutcome::UnresolvedLocal);
            if !all_done && iteration < self.cfg.max_iterations {
                issued = self.followups(iteration);
                self.clock_ms += 120_000; // measurements spread over time
                if self.new_ips_since_alias > 0 && iteration % self.cfg.realias_every == 0 {
                    self.refresh_aliases();
                }
                self.process_new_traces();
            }

            self.iterations.push(IterationStats {
                iteration,
                resolved,
                tracked: self.states.len(),
                traces_issued: issued,
            });

            if resolved == last_resolved && issued == 0 {
                stale += 1;
                if stale >= self.cfg.stale_iterations {
                    break;
                }
            } else {
                stale = 0;
            }
            last_resolved = resolved;
            if all_done {
                break;
            }
        }
    }

    /// Snapshots the candidate-set-size distribution after this
    /// iteration's constraints: one [`CandidateHistogram`] per iteration
    /// for `CfsReport::convergence`, mirrored into the recorder's
    /// `cfs.candidates_per_iface` histogram. Iterates the (worker-count
    /// independent) state map, so the telemetry is deterministic.
    fn record_convergence(&mut self, iteration: usize) {
        let mut hist = CandidateHistogram::new(iteration);
        for state in self.states.values() {
            let size = state.candidates.as_ref().map(FacilitySet::len);
            hist.record(size);
            if let Some(n) = size {
                self.recorder.observe("cfs.candidates_per_iface", n as u64);
            }
        }
        self.conv_hists.push(hist);
    }

    // ------------------------------------------------------------------
    // Incremental re-convergence (the session's dirty-frontier sweep)
    // ------------------------------------------------------------------

    /// Re-derives the states of exactly the interfaces in `scope` from
    /// the current observation list and knowledge base, leaving every
    /// other state untouched.
    ///
    /// Correctness rests on the iteration-1 fixed point of follow-up-less
    /// configurations: with no new measurements arriving, the constraint
    /// loop's state after iteration 1 equals its state at convergence
    /// (observation constraints are static sets, re-applying them is a
    /// no-op, and alias combination is idempotent). One scoped sweep at
    /// `iteration = 1` therefore reproduces, byte-for-byte, what a
    /// from-scratch batch run would compute for the scoped interfaces —
    /// provided `scope` is closed over alias sets (callers union in every
    /// member of any alias set containing a dirty interface).
    pub(crate) fn kernel_converge(&mut self, scope: &BTreeSet<Ipv4Addr>) {
        cfs_obs::span!(self.recorder, "serve.kernel");
        for ip in scope {
            self.states.remove(ip);
        }
        self.apply_constraints_scoped(1, Some(scope));
        if self.cfg.alias_constraints {
            self.apply_alias_constraints_scoped(1, Some(scope));
        }
    }

    /// Rebuilds `iterations` and `conv_hists` as the follow-up-less batch
    /// loop would have produced them over the current (fixed-point)
    /// states: the per-iteration resolved/tracked counts are constant, so
    /// the loop's control flow — staleness counter, iteration cap,
    /// all-done early exit — is replayed against constants.
    pub(crate) fn synthesize_iterations(&mut self) {
        self.iterations.clear();
        self.conv_hists.clear();
        let resolved = self.resolved_count();
        let tracked = self.states.len();
        let all_done = self
            .states
            .values()
            .all(|s| s.outcome() != SearchOutcome::UnresolvedLocal);
        let mut stale = 0usize;
        let mut last_resolved = 0usize;
        for iteration in 1..=self.cfg.max_iterations {
            let mut hist = CandidateHistogram::new(iteration);
            for state in self.states.values() {
                hist.record(state.candidates.as_ref().map(FacilitySet::len));
            }
            self.conv_hists.push(hist);
            self.iterations.push(IterationStats {
                iteration,
                resolved,
                tracked,
                traces_issued: 0,
            });
            if resolved == last_resolved {
                stale += 1;
                if stale >= self.cfg.stale_iterations {
                    break;
                }
            } else {
                stale = 0;
            }
            last_resolved = resolved;
            if all_done {
                break;
            }
        }
    }

    // ------------------------------------------------------------------
    // Data preparation
    // ------------------------------------------------------------------

    pub(crate) fn refresh_aliases(&mut self) {
        cfs_obs::span!(self.recorder, "stage.alias_resolution");
        let prober = IpIdProber::new(self.engine.topology());
        let ips: Vec<Ipv4Addr> = self.hop_ips.iter().copied().collect();
        let mut alias_cfg = self.cfg.alias.clone();
        if alias_cfg.threads == 0 {
            alias_cfg.threads = self.workers();
        }
        self.aliases = resolve_aliases(&prober, &ips, &alias_cfg);
        let (corrected, _stats) = correct_ip_to_asn(self.ipasn, &self.aliases, &ips);
        self.corrected = corrected;
        self.new_ips_since_alias = 0;
        // Mappings may have shifted: rebuild the observation list from
        // every trace under the new view. Session observations come from
        // authoritative LG output and survive as-is.
        self.observations.clear();
        self.obs_keys.clear();
        for obs in &self.session_observations {
            self.obs_keys
                .insert((obs.near_ip, obs.class.ixp(), obs.far_ip));
        }
        self.processed = 0;
    }

    /// Extracts observations from traces ingested since the last call.
    ///
    /// Extraction is pure per trace, so it fans out over worker threads;
    /// the dedup merge and the vantage-point exposure index then run
    /// serially in ingestion order, keeping results independent of the
    /// worker count.
    pub(crate) fn process_new_traces(&mut self) {
        cfs_obs::span!(self.recorder, "stage.extract");
        let workers = self.workers();
        let Self {
            ref traces,
            processed,
            ref kb,
            ref corrected,
            ref mut obs_keys,
            ref mut observations,
            ref mut vp_crossed,
            ref recorder,
            ..
        } = *self;
        let kb = kb.get();
        let new = &traces[processed..];
        // Workers record per *trace* through this borrow; chunk-level
        // signals would vary with the worker count (DESIGN.md §7).
        let rec: &dyn Recorder = &**recorder;
        rec.counter("extract.traces", new.len() as u64);

        let per_trace: Vec<Vec<Observation>> = if workers > 1 && new.len() >= 64 {
            let chunk_size = new.len().div_ceil(workers);
            crossbeam::thread::scope(|scope| {
                let handles: Vec<_> = new
                    .chunks(chunk_size)
                    .map(|chunk| {
                        scope.spawn(move |_| {
                            let resolver = Resolver::new(kb, corrected);
                            chunk
                                .iter()
                                .map(|t| extract_observations_recorded(t, &resolver, rec))
                                .collect::<Vec<_>>()
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .flat_map(|h| h.join().expect("observation worker"))
                    .collect()
            })
            .expect("observation thread scope")
        } else {
            let resolver = Resolver::new(kb, corrected);
            new.iter()
                .map(|t| extract_observations_recorded(t, &resolver, rec))
                .collect()
        };

        for (t, obs_list) in new.iter().zip(per_trace) {
            for obs in obs_list {
                let key = (obs.near_ip, obs.class.ixp(), obs.far_ip);
                if obs_keys.insert(key) {
                    observations.push(obs);
                    rec.counter("extract.observations_new", 1);
                }
            }
            // Maintain the exposure index: which vantage points see which
            // ASes on their paths (used to aim follow-ups).
            for hop in &t.hops {
                if let Some(asn) = hop.ip.and_then(|ip| corrected.get(&ip)) {
                    let list = vp_crossed.entry(*asn).or_default();
                    if list.len() < 64 && !list.contains(&t.vp) {
                        list.push(t.vp);
                    }
                }
            }
        }
        self.processed = self.traces.len();
    }

    pub(crate) fn as_facilities(&mut self, asn: Asn) -> FacilitySet {
        if let Some(hit) = self.as_fac_cache.get(&asn) {
            return hit.clone();
        }
        let facs = self.kb().facilities_of_as(asn);
        let set = self.interner.intern_set(&facs);
        self.as_fac_cache.insert(asn, set.clone());
        set
    }

    pub(crate) fn ixp_facilities(&mut self, ixp: IxpId) -> FacilitySet {
        if let Some(hit) = self.ixp_fac_cache.get(&ixp) {
            return hit.clone();
        }
        let facs = self.kb().facilities_of_ixp(ixp);
        let set = self.interner.intern_set(&facs);
        self.ixp_fac_cache.insert(ixp, set.clone());
        set
    }

    /// The metro-level widening pool for an exchange: every known
    /// facility in the metros the exchange operates in. When footprints
    /// fail to intersect, falling back to this pool keeps the interface
    /// geographically constrained instead of dead-ending (DESIGN.md §9).
    pub(crate) fn metro_candidates(&mut self, ixp: IxpId) -> FacilitySet {
        if let Some(hit) = self.metro_cand_cache.get(&ixp) {
            return hit.clone();
        }
        let kb = self.kb();
        let metros: BTreeSet<MetroId> = kb
            .facilities_of_ixp(ixp)
            .iter()
            .filter_map(|f| kb.metro_of_facility(*f))
            .collect();
        let mut pool: BTreeSet<FacilityId> = BTreeSet::new();
        for m in metros {
            pool.extend(kb.facilities_in_metro(m));
        }
        let set = self.interner.intern_set(&pool);
        self.metro_cand_cache.insert(ixp, set.clone());
        set
    }

    // ------------------------------------------------------------------
    // Steps 2 + 3: constraints
    // ------------------------------------------------------------------

    fn apply_constraints(&mut self, iteration: usize) {
        self.apply_constraints_scoped(iteration, None);
    }

    /// The constraint pass over the merged observation list. With
    /// `scope: None` this is the full batch pass; with a scope, only
    /// endpoints inside it are (re-)constrained — the session's dirty
    /// frontier sweep. The observation order, and therefore every
    /// interface's constraint subsequence, is identical in both modes.
    pub(crate) fn apply_constraints_scoped(
        &mut self,
        iteration: usize,
        scope: Option<&BTreeSet<Ipv4Addr>>,
    ) {
        cfs_obs::span!(self.recorder, "stage.constrain");
        let in_scope = |ip: Ipv4Addr| scope.is_none_or(|s| s.contains(&ip));
        let mut observations = std::mem::take(&mut self.observations);
        observations.extend(self.session_observations.iter().cloned());
        self.prefill_remote_verdicts(&observations, scope);
        self.recorder
            .counter("constrain.observations", observations.len() as u64);
        for obs in &observations {
            match obs.class {
                LinkClass::Public { ixp } => {
                    if in_scope(obs.near_ip) {
                        self.constrain_public(
                            obs.near_asn,
                            obs.near_ip,
                            ixp,
                            iteration,
                            obs.evidence,
                        );
                    }
                    if let (Some(far_asn), Some(far_ip)) = (obs.far_asn, obs.far_ip) {
                        if in_scope(far_ip) {
                            self.constrain_public(far_asn, far_ip, ixp, iteration, obs.evidence);
                        }
                    }
                }
                LinkClass::Private => {
                    if let Some(far_asn) = obs.far_asn {
                        if in_scope(obs.near_ip) {
                            self.constrain_private(obs.near_asn, obs.near_ip, far_asn, iteration);
                        }
                        if let Some(far_ip) = obs.far_ip {
                            if in_scope(far_ip) {
                                self.constrain_private(far_asn, far_ip, obs.near_asn, iteration);
                            }
                        }
                    }
                }
            }
        }
        observations.truncate(observations.len() - self.session_observations.len());
        self.observations = observations;
    }

    /// Pre-computes the remote-peering RTT verdicts that
    /// [`Cfs::constrain_public`] will need, fanning the measurements out
    /// over worker threads.
    ///
    /// A verdict is needed for a public interface whose owner shares no
    /// facility with the exchange (§4.2 case 3). The serial pass binds
    /// each interface to the *first* exchange triggering the test, so the
    /// work list is gathered in observation order, probed in parallel,
    /// and written back in the same order — identical to the serial run.
    fn prefill_remote_verdicts(
        &mut self,
        observations: &[Observation],
        scope: Option<&BTreeSet<Ipv4Addr>>,
    ) {
        cfs_obs::span!(self.recorder, "stage.remote");
        let mut pending: Vec<(Ipv4Addr, IxpId)> = Vec::new();
        let mut queued: BTreeSet<Ipv4Addr> = BTreeSet::new();
        for obs in observations {
            let LinkClass::Public { ixp } = obs.class else {
                continue;
            };
            // Gated observations never intersect with the exchange's
            // footprint, so they never trigger the remote test either.
            if self.cfg.evidence_gating && obs.evidence.weak() {
                continue;
            }
            let mut ends: [Option<(Asn, Ipv4Addr)>; 2] = [Some((obs.near_asn, obs.near_ip)), None];
            if let (Some(far_asn), Some(far_ip)) = (obs.far_asn, obs.far_ip) {
                ends[1] = Some((far_asn, far_ip));
            }
            for (owner, ip) in ends.into_iter().flatten() {
                if !scope.is_none_or(|s| s.contains(&ip)) {
                    continue;
                }
                if self.remote_cache.contains_key(&ip) || queued.contains(&ip) {
                    continue;
                }
                let f_owner = self.as_facilities(owner);
                if f_owner.is_empty() {
                    continue;
                }
                let f_ixp = self.ixp_facilities(ixp);
                if f_owner.intersection_len(&f_ixp) == 0 {
                    queued.insert(ip);
                    pending.push((ip, ixp));
                }
            }
        }
        if pending.is_empty() {
            return;
        }

        let workers = self.workers();
        let engine = self.engine;
        let vps = self.vps;
        let retry = self.cfg.retry;
        let retry_seed = self.chaos_seed;
        let down = &self.vp_down;
        // Verdict counters are per tested address (the pending list does
        // not depend on the worker count), so the recorder's totals stay
        // chunking-independent.
        let rec: &dyn Recorder = &*self.recorder;
        let verdicts: Vec<Option<bool>> = if workers > 1 && pending.len() >= 8 {
            let chunk_size = pending.len().div_ceil(workers);
            crossbeam::thread::scope(|scope| {
                let handles: Vec<_> = pending
                    .chunks(chunk_size)
                    .map(|chunk| {
                        scope.spawn(move |_| {
                            let tester = RemoteTester::new(engine, vps)
                                .recorded(rec)
                                .retrying(retry, retry_seed)
                                .excluding(down);
                            chunk
                                .iter()
                                .map(|(ip, ixp)| tester.is_remote(*ixp, *ip))
                                .collect::<Vec<_>>()
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .flat_map(|h| h.join().expect("remote-test worker"))
                    .collect()
            })
            .expect("remote-test thread scope")
        } else {
            let tester = RemoteTester::new(engine, vps)
                .recorded(rec)
                .retrying(retry, retry_seed)
                .excluding(down);
            pending
                .iter()
                .map(|(ip, ixp)| tester.is_remote(*ixp, *ip))
                .collect()
        };
        for ((ip, ixp), verdict) in pending.into_iter().zip(verdicts) {
            self.remote_cache.insert(ip, (ixp, verdict));
        }
    }

    /// Step 2 for a public peering interface: intersect the owner's
    /// facilities with the exchange's; an empty overlap triggers the
    /// remote test (§4.2 case 3).
    ///
    /// When the observation's IXP-hop evidence is weak or contested and
    /// evidence gating is on, the exchange-footprint intersection is
    /// withheld: the interface keeps the owner's full footprint — a
    /// wider-but-correct candidate set — and carries a
    /// `contested_provenance` reason instead of risking a confidently
    /// wrong narrowing from disputed data (DESIGN.md §11).
    fn constrain_public(
        &mut self,
        owner: Asn,
        ip: Ipv4Addr,
        ixp: IxpId,
        iteration: usize,
        evidence: crate::observe::IxpHopEvidence,
    ) {
        // Dependency edges for incremental invalidation: the state of
        // `ip` is a function of these footprints (the metro pool is a
        // conservative superset — it only matters on the widening path).
        for key in [DepKey::As(owner), DepKey::Ixp(ixp), DepKey::Metro(ixp)] {
            self.deps.entry(key).or_default().insert(ip);
        }
        if self.cfg.evidence_gating && evidence.weak() {
            let f_owner = self.as_facilities(owner);
            let state = self
                .states
                .entry(ip)
                .or_insert_with(|| IfaceState::new(ip, Some(owner)));
            state.owner.get_or_insert(owner);
            state.public_ixps.insert(ixp);
            if f_owner.is_empty() {
                state.missing_data = true;
                state.reason.get_or_insert(UnresolvedReason::NoFacilityData);
                return;
            }
            state
                .reason
                .get_or_insert(UnresolvedReason::ContestedProvenance);
            if !state.evidence_gated {
                state.evidence_gated = true;
                self.recorder.counter("constrain.evidence_gated", 1);
            }
            state.constrain(&f_owner, iteration);
            return;
        }
        let f_owner = self.as_facilities(owner);
        let f_ixp = self.ixp_facilities(ixp);
        let common = f_owner.intersect(&f_ixp);

        let verdict = if common.is_empty() && !f_owner.is_empty() {
            self.remote_cache
                .entry(ip)
                .or_insert_with(|| {
                    let verdict = RemoteTester::new(self.engine, self.vps)
                        .recorded(&*self.recorder)
                        .retrying(self.cfg.retry, self.chaos_seed)
                        .excluding(&self.vp_down)
                        .is_remote(ixp, ip);
                    (ixp, verdict)
                })
                .1
        } else {
            None
        };

        // Metro-level widening pool, resolved before the state borrow.
        // Only needed when the intersection came up empty and the remote
        // test did not explain it away.
        let widened = if self.cfg.metro_widening
            && common.is_empty()
            && !f_owner.is_empty()
            && !matches!(verdict, Some(true))
        {
            Some(self.metro_candidates(ixp))
        } else {
            None
        };

        let state = self
            .states
            .entry(ip)
            .or_insert_with(|| IfaceState::new(ip, Some(owner)));
        state.owner.get_or_insert(owner);
        state.public_ixps.insert(ixp);
        if f_owner.is_empty() {
            state.missing_data = true;
            state.reason.get_or_insert(UnresolvedReason::NoFacilityData);
            return;
        }
        if !common.is_empty() {
            state.constrain(&common, iteration);
        } else {
            match verdict {
                Some(true) => {
                    // Remote peer: its router is wherever the AS actually
                    // keeps equipment.
                    state.remote = true;
                    state.constrain(&f_owner, iteration);
                }
                Some(false) | None => {
                    // Local RTT but no common facility: our data is
                    // missing the link (or the ping never landed). Widen
                    // to the exchange's metro-level candidates instead of
                    // dead-ending (DESIGN.md §9) — later constraints can
                    // still narrow from there.
                    let reason = if verdict.is_none() {
                        UnresolvedReason::RemoteInconclusive
                    } else {
                        UnresolvedReason::EmptyIntersection
                    };
                    state.reason.get_or_insert(reason);
                    match widened {
                        Some(pool) if !pool.is_empty() => {
                            if !state.widened {
                                state.widened = true;
                                self.recorder.counter("constrain.widened", 1);
                            }
                            state.constrain(&pool, iteration);
                        }
                        _ => state.missing_data = true,
                    }
                }
            }
        }
    }

    /// Step 2 for a private peering interface: intersect the two peers'
    /// facility sets (cross-connects join routers in one building).
    fn constrain_private(&mut self, owner: Asn, ip: Ipv4Addr, peer: Asn, iteration: usize) {
        for key in [DepKey::As(owner), DepKey::As(peer)] {
            self.deps.entry(key).or_default().insert(ip);
        }
        let f_owner = self.as_facilities(owner);
        let f_peer = self.as_facilities(peer);
        let common = f_owner.intersect(&f_peer);

        let state = self
            .states
            .entry(ip)
            .or_insert_with(|| IfaceState::new(ip, Some(owner)));
        state.owner.get_or_insert(owner);
        state.seen_private = true;
        if f_owner.is_empty() {
            state.missing_data = true;
            state.reason.get_or_insert(UnresolvedReason::NoFacilityData);
            return;
        }
        if !common.is_empty() {
            state.constrain(&common, iteration);
        } else if f_peer.is_empty() {
            state.missing_data = true;
            state.reason.get_or_insert(UnresolvedReason::NoFacilityData);
        } else {
            // Tethering or remote private peering: the only safe
            // constraint is the owner's own footprint.
            state.constrain(&f_owner, iteration);
        }
    }

    /// Step 3: all aliases of a router share its facility, so their
    /// candidate sets intersect.
    fn apply_alias_constraints(&mut self, iteration: usize) {
        self.apply_alias_constraints_scoped(iteration, None);
    }

    /// Step 3 over every alias set (scope `None`) or only the sets
    /// intersecting the dirty frontier. A scoped caller must pass a
    /// frontier closed over alias sets, so any set it touches is
    /// entirely inside the scope and the combined intersection matches
    /// the full pass.
    pub(crate) fn apply_alias_constraints_scoped(
        &mut self,
        iteration: usize,
        scope: Option<&BTreeSet<Ipv4Addr>>,
    ) {
        cfs_obs::span!(self.recorder, "stage.alias_constrain");
        for set in self.aliases.sets.clone() {
            if !scope.is_none_or(|s| set.iter().any(|ip| s.contains(ip))) {
                continue;
            }
            let mut combined: Option<FacilitySet> = None;
            for ip in &set {
                if let Some(state) = self.states.get(ip) {
                    if let Some(c) = &state.candidates {
                        combined = Some(match combined {
                            None => c.clone(),
                            Some(acc) => acc.intersect(c),
                        });
                    }
                }
            }
            let Some(combined) = combined else { continue };
            if combined.is_empty() {
                // Conflicting constraints across aliases — incomplete
                // data; leave the individual states untouched.
                continue;
            }
            for ip in &set {
                if let Some(state) = self.states.get_mut(ip) {
                    state.constrain(&combined, iteration);
                }
            }
        }
    }

    pub(crate) fn resolved_count(&self) -> usize {
        self.states
            .values()
            .filter(|s| s.facility().is_some())
            .count()
    }

    // ------------------------------------------------------------------
    // Step 4: targeted follow-ups (+ §4.3 reverse search)
    // ------------------------------------------------------------------

    fn allowed_vp(&self, id: VantagePointId) -> bool {
        match &self.platforms {
            None => true,
            Some(set) => set.contains(&self.vps.vps[id].platform),
        }
    }

    fn followups(&mut self, _iteration: usize) -> usize {
        cfs_obs::span!(self.recorder, "stage.followup");
        // Chase the interfaces closest to resolution first, but rotate
        // the measurement budget: an interface that has been chased a few
        // times without converging yields its slot to fresher ones (the
        // paper's diminishing returns after iteration 40).
        const MAX_ATTEMPTS: usize = 3;
        let mut pending: Vec<(usize, usize, Ipv4Addr)> = self
            .states
            .values()
            .filter(|s| s.outcome() == SearchOutcome::UnresolvedLocal)
            .filter_map(|s| {
                let attempts = self.chase_attempts.get(&s.ip).copied().unwrap_or(0);
                (attempts < MAX_ATTEMPTS)
                    .then(|| s.candidates.as_ref().map(|c| (attempts, c.len(), s.ip)))
                    .flatten()
            })
            .collect();
        pending.sort_unstable();
        pending.truncate(self.cfg.followup_interfaces);

        // Planning reads the search state and only appends probe
        // requests, so the requests for every chased interface can be
        // gathered first and the traceroutes fanned out in one batch.
        // Per-interface spans let exhausted retry budgets be attributed
        // back to the interfaces they starved.
        let mut requests: Vec<(VantagePointId, Ipv4Addr)> = Vec::new();
        let mut spans: Vec<(Ipv4Addr, usize, usize)> = Vec::new();
        for (_, _, ip) in pending {
            *self.chase_attempts.entry(ip).or_default() += 1;
            let start = requests.len();
            self.plan_chase(ip, &mut requests);
            spans.push((ip, start, requests.len()));
        }
        let issued = requests.len();
        self.recorder.counter("followup.requests", issued as u64);
        let denied_before = self.retry_budget.denied();
        let traces = self.trace_fanout(&requests);
        if self.retry_budget.denied() > denied_before {
            // The budget ran dry during this fan-out: interfaces whose
            // every probe still failed were starved, not unlucky.
            for (ip, start, end) in spans {
                if start < end && traces[start..end].iter().all(probe_failed) {
                    if let Some(state) = self.states.get_mut(&ip) {
                        state.reason.get_or_insert(UnresolvedReason::ProbeExhausted);
                    }
                }
            }
        }
        self.ingest(traces);
        self.traces_issued += issued;
        issued
    }

    /// Runs the planned follow-up traceroutes with deterministic
    /// retry-on-failure, fanned out over worker threads.
    ///
    /// Round 0 issues every request at the current clock. Between rounds
    /// a *serial* pass in submission order feeds the circuit breaker and
    /// spends the retry budget, then failed probes are re-issued after an
    /// exponential-backoff delay whose jitter derives from the run seed.
    /// Probing is a pure function of `(vantage point, target, time)` and
    /// all bookkeeping is serial, so any worker count produces the same
    /// traces, counters, and breaker state as a serial run.
    fn trace_fanout(&mut self, requests: &[(VantagePointId, Ipv4Addr)]) -> Vec<Trace> {
        let probes: Vec<(VantagePointId, Ipv4Addr, u64)> = requests
            .iter()
            .map(|(vp, target)| (*vp, *target, self.clock_ms))
            .collect();
        let mut traces = self.probe_batch(&probes);
        for ((vp, _, at), t) in probes.iter().zip(&traces) {
            self.breaker
                .record(u64::from(vp.raw()), !probe_failed(t), *at);
        }

        let policy = self.cfg.retry;
        for attempt in 1..=policy.max_retries {
            let mut retry: Vec<(usize, (VantagePointId, Ipv4Addr, u64))> = Vec::new();
            for (i, t) in traces.iter().enumerate() {
                if !probe_failed(t) {
                    continue;
                }
                if !self.retry_budget.try_spend() {
                    continue;
                }
                let (vp, target, _) = probes[i];
                let seed =
                    self.chaos_seed ^ (u64::from(vp.raw()) << 32) ^ u64::from(u32::from(target));
                let at = self.clock_ms + policy.delay_ms(seed, attempt);
                retry.push((i, (vp, target, at)));
            }
            if retry.is_empty() {
                break;
            }
            self.recorder
                .counter("followup.retries", retry.len() as u64);
            let batch: Vec<(VantagePointId, Ipv4Addr, u64)> =
                retry.iter().map(|(_, p)| *p).collect();
            let fresh = self.probe_batch(&batch);
            for ((i, (vp, _, at)), t) in retry.into_iter().zip(fresh) {
                self.breaker
                    .record(u64::from(vp.raw()), !probe_failed(&t), at);
                traces[i] = t;
            }
        }

        let exhausted = traces.iter().filter(|t| probe_failed(t)).count() as u64;
        self.failed_probes += exhausted;
        if exhausted > 0 {
            self.recorder.counter("followup.exhausted", exhausted);
        }
        traces
    }

    /// One parallel probe round: each entry is traced at its own virtual
    /// time and results merge in submission order.
    fn probe_batch(&self, probes: &[(VantagePointId, Ipv4Addr, u64)]) -> Vec<Trace> {
        let workers = self.workers();
        let engine = self.engine;
        let vps = self.vps;
        if workers <= 1 || probes.len() < 32 {
            return probes
                .iter()
                .map(|(vp_id, target, at)| engine.trace(&vps.vps[*vp_id], *target, *at))
                .collect();
        }
        let chunk_size = probes.len().div_ceil(workers);
        crossbeam::thread::scope(|scope| {
            let handles: Vec<_> = probes
                .chunks(chunk_size)
                .map(|chunk| {
                    scope.spawn(move |_| {
                        chunk
                            .iter()
                            .map(|(vp_id, target, at)| engine.trace(&vps.vps[*vp_id], *target, *at))
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("trace worker"))
                .collect()
        })
        .expect("trace thread scope")
    }

    /// Plans follow-up traceroutes designed to add constraints for one
    /// unresolved interface, appending `(vantage point, target)` requests.
    fn plan_chase(&mut self, ip: Ipv4Addr, requests: &mut Vec<(VantagePointId, Ipv4Addr)>) {
        let (owner, candidates, queried_ixps) = {
            let Some(state) = self.states.get(&ip) else {
                return;
            };
            let Some(owner) = state.owner else { return };
            let Some(c) = state.candidates.clone() else {
                return;
            };
            (owner, c, state.public_ixps.clone())
        };
        let f_owner = self.as_facilities(owner);

        // Rank candidate targets. Preferred (the paper's rule): known
        // ASes whose footprint is a strict subset of the owner's, so the
        // comparison genuinely narrows. When no subset exists — common
        // once footprints grow — fall back to the targets with the
        // smallest footprint whose overlap is a *proper* subset of the
        // candidates: a crossing with them still shrinks the set.
        let mut subset_scored: Vec<(usize, usize, Asn)> = Vec::new();
        let mut overlap_scored: Vec<(usize, usize, Asn)> = Vec::new();
        let known: Vec<Asn> = self.kb().known_ases().collect();
        for t in known {
            if t == owner {
                continue;
            }
            let f_t = self.as_facilities(t);
            if f_t.is_empty() {
                continue;
            }
            let overlap = f_t.intersection_len(&candidates);
            if overlap == 0 {
                continue;
            }
            let penalty = usize::from(
                self.kb()
                    .ixps_of_as(t)
                    .intersection(&queried_ixps)
                    .next()
                    .is_some(),
            );
            if f_t.len() < f_owner.len() && f_t.is_subset(&f_owner) {
                subset_scored.push((penalty, overlap, t));
            } else if overlap < candidates.len() {
                overlap_scored.push((penalty, f_t.len() + overlap, t));
            }
        }
        subset_scored.sort_unstable();
        overlap_scored.sort_unstable();
        let mut scored = subset_scored;
        if scored.len() < self.cfg.targets_per_interface {
            let need = self.cfg.targets_per_interface - scored.len();
            scored.extend(overlap_scored.into_iter().take(need));
        }
        scored.truncate(self.cfg.targets_per_interface);

        // Vantage points likely to cross the owner *near the candidate
        // facilities*: probes and looking glasses inside the owner,
        // nearest candidate metro first (hot-potato routing exits close
        // to the source, so a nearby vantage point exposes the nearby
        // peering); then anything that has previously seen the owner.
        let candidate_coords: Vec<cfs_geo::GeoPoint> = candidates
            .iter()
            .filter_map(|f| self.kb().metro_of_facility(f))
            .map(|m| self.engine.topology().world.metro(m).location)
            .collect();
        let distance_to_candidates = |vp: &cfs_traceroute::VantagePoint| -> u64 {
            candidate_coords
                .iter()
                .map(|c| vp.coords.distance_km(*c) as u64)
                .min()
                .unwrap_or(u64::MAX)
        };
        // Vantage points whose circuit is open (consecutive probe
        // failures — an outage window, a silent path) yield their pool
        // slot to the next-nearest candidate instead of burning budget.
        let mut skipped = 0u64;
        let clock_ms = self.clock_ms;
        let breaker = &self.breaker;
        let mut live = |id: VantagePointId| -> bool {
            let open = breaker.is_open(u64::from(id.raw()), clock_ms);
            skipped += u64::from(open);
            !open
        };
        let mut inside: Vec<(u64, VantagePointId)> = self
            .vps
            .vps
            .iter()
            .filter(|(id, vp)| vp.asn == owner && self.allowed_vp(*id))
            .filter(|(id, _)| live(*id))
            .map(|(id, vp)| (distance_to_candidates(vp), id))
            .collect();
        inside.sort_unstable();
        let mut vp_pool: Vec<VantagePointId> = inside.into_iter().map(|(_, id)| id).collect();
        if let Some(seen) = self.vp_crossed.get(&owner) {
            for id in seen {
                if self.allowed_vp(*id) && live(*id) && !vp_pool.contains(id) {
                    vp_pool.push(*id);
                }
            }
        }
        vp_pool.truncate(self.cfg.vps_per_target);
        if skipped > 0 {
            self.recorder.counter("chase.vp_skipped", skipped);
        }

        let topo = self.engine.topology();
        for (_, _, target_as) in &scored {
            let Ok(target) = topo.target_ip(*target_as) else {
                continue;
            };
            for vp_id in &vp_pool {
                requests.push((*vp_id, target));
            }
        }

        // §4.3 reverse search: when the interface belongs to the far side
        // of crossings we observed, probe *from* its owner toward the
        // near-side ASes so the owner becomes the near end.
        if self.cfg.reverse_search {
            let reverse_targets: Vec<Asn> = self
                .observations
                .iter()
                .chain(self.session_observations.iter())
                .filter(|o| o.far_ip == Some(ip))
                .map(|o| o.near_asn)
                .collect();
            if !reverse_targets.is_empty() {
                let own_vps: Vec<VantagePointId> = self
                    .vps
                    .vps
                    .iter()
                    .filter(|(id, vp)| vp.asn == owner && self.allowed_vp(*id))
                    .map(|(id, _)| id)
                    .take(2)
                    .collect();
                for near_asn in reverse_targets.into_iter().take(2) {
                    let Ok(target) = topo.target_ip(near_asn) else {
                        continue;
                    };
                    for vp_id in &own_vps {
                        requests.push((*vp_id, target));
                    }
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Reporting (+ §4.4 proximity fallback)
    // ------------------------------------------------------------------

    /// Renders the current search state into a [`CfsReport`].
    ///
    /// Deliberately non-mutating: the §4.4 proximity fallback is applied
    /// through an overlay consulted at every read site instead of being
    /// written back into `states`, so a resident session can re-render
    /// reports after every delta without the render perturbing the next
    /// incremental sweep. The emitted bytes are identical to the historic
    /// mutating version.
    pub(crate) fn build_report(&self) -> CfsReport {
        cfs_obs::span!(self.recorder, "stage.report");
        let all_observations: Vec<Observation> = self
            .observations
            .iter()
            .chain(self.session_observations.iter())
            .cloned()
            .collect();

        // Proximity model from resolved public links whose far member
        // holds several ports at the exchange (the directories reveal
        // this): which of its fabric addresses a path reveals depends on
        // switch locality, so these links carry the §4.4 signal.
        // Single-port members answer with their one address from
        // everywhere and would drown it out. The paper's evaluation
        // (50 single-facility sources × 50 two-facility targets at
        // AMS-IX) selects the same population.
        let multi_port = |obs: &Observation| -> bool {
            match (obs.class.ixp(), obs.far_asn) {
                (Some(ixp), Some(asn)) => self.kb().member_port_count(ixp, asn) >= 2,
                _ => false,
            }
        };
        // Contested-pin gate (DESIGN.md §11): a single-facility verdict
        // only counts as a pin when the reconciled sources behind the
        // owner's claim to that facility are not contested. A refused
        // pin is *withheld*, never replaced — the interface reports
        // unresolved with a typed reason rather than a confidently
        // wrong facility.
        let pin_ok = |state: &IfaceState, f: FacilityId| -> bool {
            !self.cfg.evidence_gating || state.owner.is_none_or(|a| self.kb().pin_allowed(a, f))
        };
        let state_pin = |state: &IfaceState| -> Option<FacilityId> {
            state.facility().filter(|f| pin_ok(state, *f))
        };

        // Proximity verdicts live in this overlay, never in `states`:
        // an overlaid interface reads as resolved-to-`f` at every site
        // below (verdict, links, data-quality tally).
        let mut overlay: BTreeMap<Ipv4Addr, FacilityId> = BTreeMap::new();
        let mut proximity = ProximityModel::new();
        if self.cfg.proximity {
            for obs in &all_observations {
                let LinkClass::Public { .. } = obs.class else {
                    continue;
                };
                let (Some(far_ip), near_ip) = (obs.far_ip, obs.near_ip) else {
                    continue;
                };
                if !multi_port(obs) {
                    continue;
                }
                let near_f = self.states.get(&near_ip).and_then(&state_pin);
                let far_f = self.states.get(&far_ip).and_then(&state_pin);
                if let (Some(n), Some(f)) = (near_f, far_f) {
                    proximity.observe(n, f);
                }
            }
            // Apply to unresolved multi-port far ends with a resolved
            // near end.
            for obs in &all_observations {
                let LinkClass::Public { .. } = obs.class else {
                    continue;
                };
                let Some(far_ip) = obs.far_ip else { continue };
                if !multi_port(obs) {
                    continue;
                }
                let Some(near_f) = self.states.get(&obs.near_ip).and_then(&state_pin) else {
                    continue;
                };
                let Some(far_state) = self.states.get(&far_ip) else {
                    continue;
                };
                if far_state.facility().is_some() {
                    continue;
                }
                let Some(cands) = &far_state.candidates else {
                    continue;
                };
                if let Some(f) = proximity.infer(near_f, cands) {
                    if !pin_ok(far_state, f) {
                        continue; // contested pin — the overlay stays clean
                    }
                    // Later observations overwrite earlier ones, exactly
                    // as sequential state mutation used to.
                    overlay.insert(far_ip, f);
                }
            }
        }
        let facility_of = |ip: &Ipv4Addr, state: &IfaceState| {
            overlay.get(ip).copied().or_else(|| state_pin(state))
        };

        // Interface verdicts.
        let mut interfaces = BTreeMap::new();
        for (ip, state) in &self.states {
            let candidates = match overlay.get(ip) {
                Some(f) => BTreeSet::from([*f]),
                None => state
                    .candidates
                    .as_ref()
                    .map(FacilitySet::to_btree_set)
                    .unwrap_or_default(),
            };
            let metro = {
                let metros: BTreeSet<_> = candidates
                    .iter()
                    .filter_map(|f| self.kb().metro_of_facility(*f))
                    .collect();
                if metros.len() == 1 && !candidates.is_empty() {
                    metros.into_iter().next()
                } else {
                    None
                }
            };
            let via_proximity = overlay.contains_key(ip);
            // The search converged on one facility, but the pin gate
            // refused it: report the interface unresolved with a typed
            // reason instead of a confidently wrong facility.
            let refused =
                !via_proximity && state.facility().is_some() && state_pin(state).is_none();
            let outcome = if via_proximity {
                SearchOutcome::Resolved
            } else if refused {
                SearchOutcome::UnresolvedLocal
            } else {
                state.outcome()
            };
            interfaces.insert(
                *ip,
                InferredInterface {
                    ip: *ip,
                    owner: state.owner,
                    facility: facility_of(ip, state),
                    candidates,
                    metro,
                    outcome,
                    remote: state.remote,
                    public_ixps: state.public_ixps.clone(),
                    seen_private: state.seen_private,
                    resolved_at: state.resolved_at,
                    via_proximity,
                    widened: state.widened,
                    unresolved_reason: if via_proximity {
                        None
                    } else if refused {
                        Some(UnresolvedReason::ContestedProvenance)
                    } else {
                        state.final_reason()
                    },
                },
            );
        }

        // Link verdicts.
        let mut links = Vec::new();
        for obs in &all_observations {
            let near_state = self.states.get(&obs.near_ip);
            let far_state = obs.far_ip.and_then(|ip| self.states.get(&ip));
            let near_facility = near_state.and_then(|s| facility_of(&obs.near_ip, s));
            let far_facility = obs
                .far_ip
                .and_then(|ip| far_state.map(|s| (ip, s)))
                .and_then(|(ip, s)| facility_of(&ip, s));
            let kind = match obs.class {
                LinkClass::Public { .. } => {
                    if near_state.is_some_and(|s| s.remote) {
                        PeeringKind::PublicRemote
                    } else {
                        PeeringKind::PublicLocal
                    }
                }
                LinkClass::Private => self.classify_private(obs, near_facility, far_facility),
            };
            links.push(InferredLink {
                near_asn: obs.near_asn,
                near_ip: obs.near_ip,
                far_asn: obs.far_asn,
                far_ip: obs.far_ip,
                kind,
                ixp: obs.class.ixp(),
                near_facility,
                far_facility,
            });
        }

        // Router-role statistics over alias groups.
        let router_stats = self.router_stats();

        self.recorder
            .counter("report.interfaces", interfaces.len() as u64);
        self.recorder.counter("report.links", links.len() as u64);

        // Convergence telemetry: the per-iteration candidate histograms
        // plus every interface's narrowing trajectory.
        let mut trajectories = BTreeMap::new();
        for (ip, state) in &self.states {
            if !state.trajectory.is_empty() {
                trajectories.insert(*ip, state.trajectory.clone());
            }
        }
        let convergence = ConvergenceTelemetry {
            per_iteration: self.conv_hists.clone(),
            trajectories,
        };

        // Data-quality ledger: what the run had to absorb (DESIGN.md §9).
        // Built from search-observable symptoms only — the report reads
        // the same whether failures came from injected faults or honest
        // gaps.
        let mut unresolved_reasons: BTreeMap<String, u64> = BTreeMap::new();
        let mut widened_interfaces = 0u64;
        let mut contested_pins_refused = 0u64;
        for (ip, state) in &self.states {
            widened_interfaces += u64::from(state.widened);
            if overlay.contains_key(ip) {
                continue; // proximity resolved it — no unresolved reason
            }
            if state.facility().is_some() && state_pin(state).is_none() {
                contested_pins_refused += 1;
                *unresolved_reasons
                    .entry(UnresolvedReason::ContestedProvenance.code().to_string())
                    .or_default() += 1;
                continue; // the refusal *is* the reason
            }
            if let Some(reason) = state.final_reason() {
                *unresolved_reasons
                    .entry(reason.code().to_string())
                    .or_default() += 1;
            }
        }
        let data_quality = DataQualityReport {
            probes_retried: self.retry_budget.spent(),
            retries_denied: self.retry_budget.denied(),
            failed_probes: self.failed_probes,
            vp_breaker_trips: self.breaker.trips(),
            widened_interfaces,
            contested_pins_refused,
            unresolved_reasons,
        };

        CfsReport {
            interfaces,
            links,
            iterations: self.iterations.clone(),
            router_stats,
            traces_issued: self.traces_issued,
            convergence,
            data_quality,
            kb_quality: self.kb().quality().clone(),
        }
    }

    /// Refines a private adjacency into cross-connect / tethering /
    /// remote private, using resolved facilities first and the knowledge
    /// base's footprints second.
    fn classify_private(
        &self,
        obs: &Observation,
        near_facility: Option<FacilityId>,
        far_facility: Option<FacilityId>,
    ) -> PeeringKind {
        if let (Some(n), Some(f)) = (near_facility, far_facility) {
            if n == f {
                return PeeringKind::PrivateCrossConnect;
            }
        }
        let Some(peer) = obs.far_asn else {
            return PeeringKind::PrivateCrossConnect;
        };
        let f_a = self.kb().facilities_of_as(obs.near_asn);
        let f_b = self.kb().facilities_of_as(peer);
        if f_a.intersection(&f_b).next().is_some() {
            return PeeringKind::PrivateCrossConnect;
        }
        // No shared building: a VLAN over a shared exchange, or a
        // long-haul circuit.
        let shared_ixp = self
            .kb()
            .ixps_of_as(obs.near_asn)
            .intersection(&self.kb().ixps_of_as(peer))
            .next()
            .is_some();
        if shared_ixp {
            PeeringKind::PrivateTethering
        } else {
            PeeringKind::PrivateRemote
        }
    }

    fn router_stats(&self) -> RouterRoleStats {
        // Group observed peering interfaces by alias set. Interfaces that
        // alias resolution could not place (unresponsive/random IP-IDs)
        // are not *routers* in the §5 sense — the paper's 39%/11.9% are
        // fractions of its 2,895 resolved alias sets, so singletons stay
        // out of the denominator.
        let mut groups: BTreeMap<usize, Vec<&IfaceState>> = BTreeMap::new();
        for (ip, state) in &self.states {
            if let Some(set_idx) = self.aliases.set_of.get(ip) {
                groups.entry(*set_idx).or_default().push(state);
            }
        }
        let mut stats = RouterRoleStats::default();
        let all_groups = groups.into_values();
        for group in all_groups {
            stats.routers += 1;
            let mut ixps: BTreeSet<IxpId> = BTreeSet::new();
            let mut private = false;
            for s in &group {
                ixps.extend(s.public_ixps.iter().copied());
                private |= s.seen_private;
            }
            let public = !ixps.is_empty();
            if public {
                stats.routers_public += 1;
                if ixps.len() >= 2 {
                    stats.multi_ixp += 1;
                }
            }
            if public && private {
                stats.multi_role += 1;
            }
        }
        stats
    }
}

// The whole point of the Arc/FacilitySet refactor: the search core and
// its substrate types cross thread boundaries. Compile-time proof.
#[allow(dead_code)]
fn _assert_send_sync() {
    fn send<T: Send>() {}
    fn sync<T: Sync>() {}
    send::<Cfs<'static>>();
    send::<KnowledgeBase>();
    sync::<KnowledgeBase>();
    sync::<Engine<'static>>();
    sync::<&dyn ProbeService>();
    send::<RetryBudget>();
    send::<CircuitBreaker>();
    sync::<VpSet>();
    sync::<IpAsnDb>();
    send::<CfsReport>();
    sync::<FacilitySetInterner>();
}
