//! The resident session API: CFS as a long-lived service instead of a
//! one-shot batch (ROADMAP's north star; the follow-on workload of
//! Milolidakis et al., "Detecting Network Disruptions At Colocation
//! Facilities").
//!
//! A [`CfsSession`] wraps the batch engine, converges once, caches the
//! report, and then absorbs [`Delta`]s — new traceroute campaigns, a
//! knowledge-base epoch flip, a vantage point going down — by dirtying
//! exactly the interfaces whose constraint inputs changed and
//! re-converging only that frontier ([`Cfs::kernel_converge`]). After
//! every delta the cached report is byte-identical to what a from-scratch
//! batch run over the merged inputs would produce; the determinism tests
//! in `crates/core/tests/session.rs` assert this at several thread
//! counts, with and without fault injection.
//!
//! Incremental correctness rests on the **iteration-1 fixed point**:
//! under follow-up-less configurations
//! (`CfsConfig::followup_interfaces == 0`) the batch loop's serialized
//! state stops changing after the first iteration — observation
//! constraints are static sets, re-intersecting them is idempotent, and
//! alias combination leaves every member at the combined set. One scoped
//! constraint pass therefore reproduces convergence for the dirty
//! interfaces, and [`Cfs::synthesize_iterations`] replays the loop's
//! control flow against the (constant) per-iteration counts to rebuild
//! the convergence telemetry the batch loop would have written.
//!
//! Follow-up-driven configurations (`followup_interfaces > 0`) have no
//! such fixed point: targeted probing reacts to global state, so a
//! scoped pass cannot reproduce convergence. Those sessions still
//! absorb deltas — [`CfsSession::apply_delta`] falls back to a **full
//! deterministic replay**: external inputs are merged (discarding the
//! previous run's follow-up probes, which the replay re-issues itself),
//! derived state is reset, and the batch loop re-runs from scratch.
//! The same report-equivalence contract holds on both paths; only the
//! cost differs (O(dirty) vs O(world)).

use std::collections::{BTreeMap, BTreeSet};
use std::net::Ipv4Addr;
use std::sync::Arc;

use cfs_kb::KnowledgeBase;
use cfs_obs::export::fnv1a64;
use cfs_obs::{Recorder, TraceRecorder};
use cfs_traceroute::Trace;
use cfs_types::{Asn, FacilityId, IxpId, LinkClass, MetroId, Result, VantagePointId};

use crate::engine::{Cfs, DepKey, KbHandle};
use crate::observe::Observation;
use crate::remote::RemoteTester;
use crate::report::CfsReport;
use crate::state::SearchOutcome;
use crate::telemetry::render_trace_json;

/// An incremental input change a resident session can absorb without
/// recomputing the world.
pub enum Delta {
    /// A new traceroute campaign: ingested, re-aliased, re-extracted;
    /// interfaces whose observation neighborhood or alias set changed
    /// are re-converged.
    TracerouteBatch(Vec<Trace>),
    /// A knowledge-base epoch flip (the `mid-kb-refresh` model made
    /// first-class): footprint caches are diffed against the new epoch
    /// and only interfaces that consumed a changed footprint are dirtied.
    KbEpochFlip(Arc<KnowledgeBase>),
    /// A vantage point going down (or coming back): remote-peering
    /// verdicts measured through the affected pool are recomputed, and
    /// interfaces whose verdict flipped are re-converged.
    VpStatusChange {
        /// The platform whose status changed.
        vp: VantagePointId,
        /// `true` when the vantage point came back up.
        up: bool,
    },
}

/// What one [`CfsSession::apply_delta`] call did.
#[derive(Clone, Copy, Debug, PartialEq, Eq, serde::Serialize)]
pub struct DeltaOutcome {
    /// Report epoch after the delta (bumped once per applied delta).
    pub epoch: u64,
    /// Interfaces whose constraint inputs changed.
    pub dirty: usize,
    /// Interfaces actually re-converged (the dirty set closed over alias
    /// sets). Strictly less than `total` when the delta was local.
    pub reconverged: usize,
    /// Total interfaces tracked after re-convergence.
    pub total: usize,
}

/// Answer to a single-interface lookup (`interface → facility, method,
/// confidence` — the service query of ROADMAP's north star).
#[derive(Clone, Debug, PartialEq, serde::Serialize)]
pub struct QueryAnswer {
    /// The queried address.
    pub ip: Ipv4Addr,
    /// Corrected owner AS, when known.
    pub owner: Option<Asn>,
    /// The single inferred facility, when resolved.
    pub facility: Option<FacilityId>,
    /// The metro, when all candidates agree on one.
    pub metro: Option<MetroId>,
    /// Remaining candidate count (0 when the interface is unknown).
    pub candidates: usize,
    /// Outcome classification.
    pub outcome: SearchOutcome,
    /// Engineering method observed for the interface:
    /// `public-remote`, `mixed`, `public`, `private`, or `unknown`.
    pub method: &'static str,
    /// Heuristic confidence in `facility` (1.0 ⇒ certain).
    pub confidence: f64,
    /// Report epoch the answer was read from.
    pub epoch: u64,
}

/// A resident CFS engine: converge once, query forever, absorb deltas.
///
/// Built by [`crate::CfsBuilder::build_session`]. The batch entry point
/// [`Cfs::run`] survives as a thin converge-once wrapper over the same
/// internals.
pub struct CfsSession<'a> {
    cfs: Cfs<'a>,
    report: Option<CfsReport>,
    epoch: u64,
    /// Length of the external prefix of the engine's trace list: traces
    /// fed through [`CfsSession::ingest`] or [`Delta::TracerouteBatch`],
    /// as opposed to follow-up probes the convergence loop issued
    /// itself. The replay delta path re-runs from exactly this prefix.
    external_traces: usize,
}

impl<'a> CfsSession<'a> {
    pub(crate) fn new(cfs: Cfs<'a>) -> Self {
        Self {
            cfs,
            report: None,
            epoch: 0,
            external_traces: 0,
        }
    }

    /// Feeds bootstrap traces before the first convergence. After
    /// [`CfsSession::converge`], feed new campaigns through
    /// [`Delta::TracerouteBatch`] instead, so only affected interfaces
    /// are recomputed.
    pub fn ingest(&mut self, traces: Vec<Trace>) {
        self.cfs.ingest(traces);
    }

    /// Feeds BGP session listings from looking glasses (§3.2). Like
    /// [`CfsSession::ingest`], a bootstrap-phase input.
    pub fn ingest_bgp_sessions(&mut self, owner: Asn, sessions: &[cfs_bgp::BgpSession]) {
        self.cfs.ingest_bgp_sessions(owner, sessions);
    }

    /// Report epoch: 0 before the first convergence, 1 after it, +1 per
    /// applied delta.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The cached report, when the session has converged.
    pub fn report(&self) -> Option<&CfsReport> {
        self.report.as_ref()
    }

    /// Runs the search to convergence (first call) and returns the
    /// cached report (every call). Identical to what [`Cfs::run`] on the
    /// same inputs returns, byte for byte.
    pub fn converge(&mut self) -> &CfsReport {
        if self.report.is_none() {
            // Everything ingested so far is external input; follow-up
            // probes appended by the run itself land after this mark.
            self.external_traces = self.cfs.traces.len();
            let report = self.cfs.run();
            self.report = Some(report);
            self.epoch = 1;
        }
        self.report.as_ref().expect("report cached above")
    }

    /// Converges if needed and surrenders the report.
    pub fn into_report(mut self) -> CfsReport {
        self.converge();
        self.report.expect("converge caches the report")
    }

    /// Single-interface lookup against the cached report. Interfaces the
    /// search never tracked come back as [`SearchOutcome::MissingData`]
    /// with zero confidence; call [`CfsSession::converge`] first.
    pub fn query(&self, ip: Ipv4Addr) -> QueryAnswer {
        let Some(iface) = self.report.as_ref().and_then(|r| r.interfaces.get(&ip)) else {
            return QueryAnswer {
                ip,
                owner: None,
                facility: None,
                metro: None,
                candidates: 0,
                outcome: SearchOutcome::MissingData,
                method: "unknown",
                confidence: 0.0,
                epoch: self.epoch,
            };
        };
        let public = !iface.public_ixps.is_empty();
        let method = match (public, iface.seen_private, iface.remote) {
            (true, true, _) => "mixed",
            (true, false, true) => "public-remote",
            (true, false, false) => "public",
            (false, true, _) => "private",
            (false, false, _) => "unknown",
        };
        let confidence = if iface.outcome == SearchOutcome::Resolved {
            if iface.via_proximity {
                0.7
            } else if iface.widened {
                0.6
            } else {
                0.95
            }
        } else if iface.candidates.is_empty() {
            0.0
        } else {
            1.0 / iface.candidates.len() as f64
        };
        QueryAnswer {
            ip,
            owner: iface.owner,
            facility: iface.facility,
            metro: iface.metro,
            candidates: iface.candidates.len(),
            outcome: iface.outcome,
            method,
            confidence,
            epoch: self.epoch,
        }
    }

    /// The canonical `cfs-trace/1` document for the cached report:
    /// rendered from a fresh deterministic recorder fed pure functions of
    /// the report, so equal reports produce equal trace bytes — and
    /// therefore equal digests — no matter how many deltas, queries, or
    /// worker threads produced them.
    pub fn trace_json(&mut self) -> String {
        self.converge();
        canonical_trace(self.report.as_ref().expect("converged above"))
    }

    /// Applies one delta: dirties the interfaces whose constraint inputs
    /// changed, closes the set over alias sets, re-converges exactly that
    /// frontier, rebuilds the report, and bumps the epoch.
    ///
    /// Emits `serve.delta`, `serve.dirty_ifaces`, and `serve.reconverged`
    /// through the session recorder.
    ///
    /// Follow-up-driven configurations
    /// (`CfsConfig::followup_interfaces > 0`) take the replay path
    /// instead: the batch loop re-runs from scratch over the merged
    /// external inputs (module docs). The outcome then reports
    /// `reconverged == total`, and `dirty` counts interfaces whose
    /// verdict actually changed between the cached and replayed reports.
    pub fn apply_delta(&mut self, delta: Delta) -> Result<DeltaOutcome> {
        if self.report.is_none() {
            self.converge();
        }
        if self.cfs.cfg.followup_interfaces > 0 {
            return self.apply_delta_replay(delta);
        }
        cfs_obs::span!(self.cfs.recorder, "serve.delta");
        let (dirty, purge_remote) = match delta {
            Delta::TracerouteBatch(traces) => (self.absorb_traces(traces), true),
            Delta::KbEpochFlip(kb) => (self.absorb_kb_flip(kb), true),
            Delta::VpStatusChange { vp, up } => (self.absorb_vp_status(vp, up), false),
        };
        let scope = self.alias_closure(&dirty);
        if purge_remote {
            // Dirty observation neighborhoods can change which exchange
            // first triggers an interface's remote test; drop the cached
            // verdicts so the kernel re-derives them exactly as a fresh
            // batch run would. Clean interfaces keep theirs: their
            // trigger sequence is an unchanged prefix-preserving
            // subsequence, so the cached verdict is already the batch
            // answer.
            for ip in &scope {
                self.cfs.remote_cache.remove(ip);
            }
        }
        self.cfs.kernel_converge(&scope);
        self.cfs.synthesize_iterations();
        let total = self.cfs.states.len();
        self.cfs
            .recorder
            .counter("serve.dirty_ifaces", dirty.len() as u64);
        self.cfs
            .recorder
            .counter("serve.reconverged", scope.len() as u64);
        self.report = Some(self.cfs.build_report());
        self.epoch += 1;
        Ok(DeltaOutcome {
            epoch: self.epoch,
            dirty: dirty.len(),
            reconverged: scope.len(),
            total,
        })
    }

    /// The follow-up-capable delta path: merges the delta into the
    /// external inputs, discards the previous run's follow-up probes
    /// (the engine's trace list past the external prefix), resets every
    /// derived artifact, and re-runs the batch loop from scratch. Costs
    /// a full run; produces exactly the fresh-batch report, so the
    /// report-equivalence contract of the incremental path holds here
    /// too — `crates/core/tests/session.rs` asserts it.
    fn apply_delta_replay(&mut self, delta: Delta) -> Result<DeltaOutcome> {
        cfs_obs::span!(self.cfs.recorder, "serve.delta");
        self.cfs.traces.truncate(self.external_traces);
        match delta {
            Delta::TracerouteBatch(traces) => {
                self.cfs.ingest(traces);
                self.external_traces = self.cfs.traces.len();
            }
            Delta::KbEpochFlip(kb) => {
                self.cfs.kb = KbHandle::Owned(kb);
            }
            Delta::VpStatusChange { vp, up } => {
                if up {
                    self.cfs.vp_down.remove(&vp);
                } else {
                    self.cfs.vp_down.insert(vp);
                }
            }
        }
        let before: BTreeMap<Ipv4Addr, (Option<FacilityId>, SearchOutcome)> = self
            .report
            .as_ref()
            .map(|r| {
                r.interfaces
                    .iter()
                    .map(|(ip, i)| (*ip, (i.facility, i.outcome)))
                    .collect()
            })
            .unwrap_or_default();
        self.cfs.reset_for_replay();
        self.cfs.run_to_convergence();
        let report = self.cfs.build_report();
        let total = self.cfs.states.len();
        let dirty = report
            .interfaces
            .iter()
            .filter(|(ip, i)| before.get(*ip) != Some(&(i.facility, i.outcome)))
            .count()
            + before
                .keys()
                .filter(|ip| !report.interfaces.contains_key(*ip))
                .count();
        self.cfs
            .recorder
            .counter("serve.dirty_ifaces", dirty as u64);
        self.cfs.recorder.counter("serve.reconverged", total as u64);
        self.report = Some(report);
        self.epoch += 1;
        Ok(DeltaOutcome {
            epoch: self.epoch,
            dirty,
            reconverged: total,
            total,
        })
    }

    // ------------------------------------------------------------------
    // Delta absorption: compute the dirty frontier
    // ------------------------------------------------------------------

    /// Per-interface fingerprint of everything constraint derivation
    /// reads: the interface's subsequence of the merged observation list
    /// (owner, classification, far side) and its alias-set membership.
    /// An unchanged fingerprint means every constraint the batch pass
    /// would intersect into the interface is unchanged too.
    fn fingerprints(&self) -> BTreeMap<Ipv4Addr, u64> {
        let mut acc: BTreeMap<Ipv4Addr, String> = BTreeMap::new();
        for obs in self
            .cfs
            .session_observations
            .iter()
            .chain(self.cfs.observations.iter())
        {
            let line = format!(
                "{:?}|{}|{:?}|{:?}|{:?};",
                obs.near_asn,
                obs.near_ip,
                obs.class.ixp(),
                obs.far_asn,
                obs.far_ip
            );
            acc.entry(obs.near_ip).or_default().push_str(&line);
            if let Some(far) = obs.far_ip {
                acc.entry(far).or_default().push_str(&line);
            }
        }
        for (ip, set) in &self.cfs.aliases.set_of {
            let entry = acc.entry(*ip).or_default();
            entry.push_str("#aliases:");
            for member in &self.cfs.aliases.sets[*set] {
                entry.push_str(&format!("{member},"));
            }
        }
        acc.into_iter().map(|(ip, s)| (ip, fnv1a64(&s))).collect()
    }

    /// Interfaces whose fingerprint differs between two snapshots
    /// (changed, appeared, or disappeared).
    fn fingerprint_diff(
        before: &BTreeMap<Ipv4Addr, u64>,
        after: &BTreeMap<Ipv4Addr, u64>,
    ) -> BTreeSet<Ipv4Addr> {
        let mut dirty = BTreeSet::new();
        for (ip, fp) in after {
            if before.get(ip) != Some(fp) {
                dirty.insert(*ip);
            }
        }
        for ip in before.keys() {
            if !after.contains_key(ip) {
                dirty.insert(*ip);
            }
        }
        dirty
    }

    fn absorb_traces(&mut self, traces: Vec<Trace>) -> BTreeSet<Ipv4Addr> {
        let before = self.fingerprints();
        self.cfs.ingest(traces);
        // Alias resolution is global (new probes can merge old sets), so
        // re-resolve and re-extract everything; the fingerprint diff then
        // narrows the re-convergence to interfaces that actually moved.
        self.cfs.refresh_aliases();
        self.cfs.process_new_traces();
        let after = self.fingerprints();
        Self::fingerprint_diff(&before, &after)
    }

    fn absorb_kb_flip(&mut self, kb: Arc<KnowledgeBase>) -> BTreeSet<Ipv4Addr> {
        // When the new epoch classifies observations identically (same
        // confirmed LAN space, same fabric directory, same activity
        // filter), extraction is a fixed point: every trace and
        // looking-glass record would rebuild the exact observation list
        // already held, and the fingerprint diff would come back empty.
        // Skip the rebuild and let the footprint diff below find the
        // dirty frontier — this is what makes a facility-list flip cost
        // O(dirty), not O(world).
        let same_view = self.cfs.kb().same_classification_view(&kb);
        let before = if same_view {
            BTreeMap::new()
        } else {
            self.fingerprints()
        };
        self.cfs.kb = KbHandle::Owned(kb);
        let mut dirty = BTreeSet::new();

        // Diff every footprint the constraint system has consumed against
        // the new epoch; a changed footprint dirties exactly the
        // interfaces the dependency index says consumed it.
        let as_keys: Vec<Asn> = self.cfs.as_fac_cache.keys().copied().collect();
        for asn in as_keys {
            let old = self
                .cfs
                .as_fac_cache
                .remove(&asn)
                .expect("key collected from this map");
            let new = self.cfs.as_facilities(asn);
            if old != new {
                if let Some(consumers) = self.cfs.deps.get(&DepKey::As(asn)) {
                    dirty.extend(consumers.iter().copied());
                }
            }
        }
        let ixp_keys: Vec<IxpId> = self.cfs.ixp_fac_cache.keys().copied().collect();
        for ixp in ixp_keys {
            let old = self
                .cfs
                .ixp_fac_cache
                .remove(&ixp)
                .expect("key collected from this map");
            let new = self.cfs.ixp_facilities(ixp);
            if old != new {
                if let Some(consumers) = self.cfs.deps.get(&DepKey::Ixp(ixp)) {
                    dirty.extend(consumers.iter().copied());
                }
            }
        }
        let metro_keys: Vec<IxpId> = self.cfs.metro_cand_cache.keys().copied().collect();
        for ixp in metro_keys {
            let old = self
                .cfs
                .metro_cand_cache
                .remove(&ixp)
                .expect("key collected from this map");
            let new = self.cfs.metro_candidates(ixp);
            if old != new {
                if let Some(consumers) = self.cfs.deps.get(&DepKey::Metro(ixp)) {
                    dirty.extend(consumers.iter().copied());
                }
            }
        }

        if same_view {
            return dirty;
        }

        // Observation classification reads the KB (confirmed IXP space ⇒
        // public), so rebuild the observation list under the new epoch:
        // replay the looking-glass log, then re-extract every trace.
        // Alias resolution and ownership correction never read the KB, so
        // they stand.
        self.cfs.observations.clear();
        self.cfs.obs_keys.clear();
        self.cfs.session_observations.clear();
        self.cfs.processed = 0;
        let log = std::mem::take(&mut self.cfs.bgp_log);
        for (owner, s) in &log {
            let class = match self.cfs.kb().ixp_of_ip(s.neighbor_ip) {
                Some(ixp) => LinkClass::Public { ixp },
                None => LinkClass::Private,
            };
            let obs = Observation {
                near_asn: *owner,
                near_ip: s.local_ip,
                class,
                far_asn: Some(s.neighbor_asn),
                far_ip: Some(s.neighbor_ip),
                evidence: crate::observe::IxpHopEvidence::FULL,
            };
            let key = (obs.near_ip, obs.class.ixp(), obs.far_ip);
            if self.cfs.obs_keys.insert(key) {
                self.cfs.session_observations.push(obs);
            }
        }
        self.cfs.bgp_log = log;
        self.cfs.process_new_traces();

        let after = self.fingerprints();
        dirty.extend(Self::fingerprint_diff(&before, &after));
        dirty
    }

    fn absorb_vp_status(&mut self, vp: VantagePointId, up: bool) -> BTreeSet<Ipv4Addr> {
        if up {
            self.cfs.vp_down.remove(&vp);
        } else {
            self.cfs.vp_down.insert(vp);
        }
        // Remote verdicts are pure functions of (ixp, ip, down-set);
        // recompute every cached one under the new pool and dirty the
        // interfaces whose verdict flipped. The stored exchange binding
        // keeps the re-measurement aimed where the first trigger aimed.
        let entries: Vec<(Ipv4Addr, IxpId, Option<bool>)> = self
            .cfs
            .remote_cache
            .iter()
            .map(|(ip, (ixp, verdict))| (*ip, *ixp, *verdict))
            .collect();
        let mut dirty = BTreeSet::new();
        for (ip, ixp, old) in entries {
            let verdict = RemoteTester::new(self.cfs.engine, self.cfs.vps)
                .recorded(&*self.cfs.recorder)
                .retrying(self.cfs.cfg.retry, self.cfs.chaos_seed)
                .excluding(&self.cfs.vp_down)
                .is_remote(ixp, ip);
            if verdict != old {
                self.cfs.remote_cache.insert(ip, (ixp, verdict));
                dirty.insert(ip);
            }
        }
        dirty
    }

    /// Closes a dirty set over alias sets: every member of any alias set
    /// containing a dirty interface joins the re-convergence scope, so
    /// the scoped alias-combination step sees whole routers (alias sets
    /// are disjoint, so one level of closure suffices).
    fn alias_closure(&self, dirty: &BTreeSet<Ipv4Addr>) -> BTreeSet<Ipv4Addr> {
        let mut scope = dirty.clone();
        for ip in dirty {
            if let Some(members) = self.cfs.aliases.aliases_of(*ip) {
                scope.extend(members.iter().copied());
            }
        }
        scope
    }
}

/// Renders the canonical `cfs-trace/1` document for a report: a fresh
/// deterministic recorder is fed pure functions of the report, so equal
/// reports ⇒ equal documents ⇒ equal digests. This is what the daemon
/// serves and what the CI smoke job diffs against a fresh batch run.
pub fn canonical_trace(report: &CfsReport) -> String {
    let recorder = TraceRecorder::deterministic();
    recorder.counter("report.interfaces", report.interfaces.len() as u64);
    recorder.counter("report.links", report.links.len() as u64);
    recorder.counter("cfs.iterations", report.iterations.len() as u64);
    for _ in &report.iterations {
        for iface in report.interfaces.values() {
            if !iface.candidates.is_empty() {
                recorder.observe("cfs.candidates_per_iface", iface.candidates.len() as u64);
            }
        }
    }
    render_trace_json(report, &recorder.snapshot())
}
