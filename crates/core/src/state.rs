//! Per-interface search state: the candidate facility sets the algorithm
//! progressively narrows.

use std::collections::BTreeSet;
use std::net::Ipv4Addr;

use cfs_types::{Asn, FacilityId, FacilitySet, IxpId, UnresolvedReason};

/// The paper's Step 2 outcome taxonomy for one interface.
#[derive(
    Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, serde::Serialize, serde::Deserialize,
)]
pub enum SearchOutcome {
    /// Converged to exactly one facility.
    Resolved,
    /// Constrained to a set of local candidates (> 1).
    UnresolvedLocal,
    /// Inferred to peer remotely: candidates are wherever the owner AS
    /// has presence, far from the counterparty.
    UnresolvedRemote,
    /// No usable facility data for the owner (33% of the paper's
    /// unresolved interfaces had none).
    MissingData,
}

/// One step of an interface's narrowing trajectory: the candidate-set
/// size right after a constraint changed it (§4's convergence signal,
/// exported through `CfsReport::convergence`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, serde::Serialize)]
pub struct TrajectoryPoint {
    /// 1-based iteration the change happened in.
    pub iteration: usize,
    /// Candidate facilities remaining after the change.
    pub candidates: usize,
}

/// Search state of one observed peering interface.
#[derive(Clone, Debug)]
pub struct IfaceState {
    /// The interface address.
    pub ip: Ipv4Addr,
    /// Corrected owner AS (post alias majority vote), when known.
    pub owner: Option<Asn>,
    /// Current candidate facilities. `None` until the first constraint is
    /// applied. Interned sets make the clone here a reference-count bump.
    pub candidates: Option<FacilitySet>,
    /// Whether the RTT test flagged this interface as a remote peer.
    pub remote: bool,
    /// Whether any constraint could not be computed for lack of data.
    pub missing_data: bool,
    /// Whether the candidate set was widened to metro-level fallback
    /// candidates after an empty facility intersection (DESIGN.md §9).
    pub widened: bool,
    /// Whether a public-crossing constraint was withheld because the
    /// IXP-hop evidence behind it was weak or contested (DESIGN.md §11)
    /// — the interface kept the wider owner-footprint candidates.
    pub evidence_gated: bool,
    /// First degradation symptom observed for this interface, if any.
    /// [`IfaceState::final_reason`] folds it into the verdict taxonomy.
    pub reason: Option<UnresolvedReason>,
    /// Number of constraints whose intersection would have been empty
    /// (kept for diagnostics; the offending constraint is dropped).
    pub conflicts: usize,
    /// IXPs over which this interface was seen peering publicly.
    pub public_ixps: BTreeSet<IxpId>,
    /// Whether the interface was seen in a private adjacency.
    pub seen_private: bool,
    /// Iteration at which the interface resolved (1-based), if it did.
    pub resolved_at: Option<usize>,
    /// Whether the candidate set was ever larger than one — §4.4 trains
    /// its proximity ranking only on far ends that *had* several
    /// candidate facilities before converging.
    pub was_ambiguous: bool,
    /// Every point at which a constraint changed the candidate set:
    /// the interface's narrowing trajectory, oldest first.
    pub trajectory: Vec<TrajectoryPoint>,
}

impl IfaceState {
    /// Fresh state for an interface.
    pub fn new(ip: Ipv4Addr, owner: Option<Asn>) -> Self {
        Self {
            ip,
            owner,
            candidates: None,
            remote: false,
            missing_data: false,
            widened: false,
            evidence_gated: false,
            reason: None,
            conflicts: 0,
            public_ixps: BTreeSet::new(),
            seen_private: false,
            resolved_at: None,
            was_ambiguous: false,
            trajectory: Vec::new(),
        }
    }

    /// The single facility, when resolved.
    pub fn facility(&self) -> Option<FacilityId> {
        self.candidates.as_ref().and_then(FacilitySet::single)
    }

    /// Current outcome classification.
    pub fn outcome(&self) -> SearchOutcome {
        match &self.candidates {
            Some(set) if set.len() == 1 => SearchOutcome::Resolved,
            Some(set) if !set.is_empty() => {
                if self.remote {
                    SearchOutcome::UnresolvedRemote
                } else {
                    SearchOutcome::UnresolvedLocal
                }
            }
            _ if self.missing_data => SearchOutcome::MissingData,
            _ if self.remote => SearchOutcome::UnresolvedRemote,
            _ => SearchOutcome::MissingData,
        }
    }

    /// Why the interface is not pinned to exactly one facility, `None`
    /// when it resolved. The first recorded symptom wins; conflicts and
    /// plain ambiguity are the fallbacks when no sharper reason was seen.
    pub fn final_reason(&self) -> Option<UnresolvedReason> {
        match self.outcome() {
            SearchOutcome::Resolved => None,
            SearchOutcome::UnresolvedRemote => Some(UnresolvedReason::RemotePeer),
            SearchOutcome::MissingData => {
                Some(self.reason.unwrap_or(UnresolvedReason::NoFacilityData))
            }
            SearchOutcome::UnresolvedLocal => Some(self.reason.unwrap_or(if self.conflicts > 0 {
                UnresolvedReason::ConstraintConflict
            } else {
                UnresolvedReason::AmbiguousCandidates
            })),
        }
    }

    /// Applies a constraint: intersects the candidate set with `allowed`,
    /// recording the iteration on resolution. An empty intersection is a
    /// conflict (incomplete data, §5/Figure 8): the constraint is dropped
    /// and counted rather than wiping the state.
    ///
    /// Returns `true` when the state changed.
    pub fn constrain(&mut self, allowed: &FacilitySet, iteration: usize) -> bool {
        if allowed.is_empty() {
            self.missing_data = true;
            self.reason.get_or_insert(UnresolvedReason::NoFacilityData);
            return false;
        }
        match &mut self.candidates {
            None => {
                self.candidates = Some(allowed.clone());
                if allowed.len() == 1 {
                    self.resolved_at.get_or_insert(iteration);
                } else {
                    self.was_ambiguous = true;
                }
                self.trajectory.push(TrajectoryPoint {
                    iteration,
                    candidates: allowed.len(),
                });
                true
            }
            Some(current) => {
                let intersection = current.intersect(allowed);
                if intersection.is_empty() {
                    self.conflicts += 1;
                    return false;
                }
                if intersection.len() == current.len() {
                    return false;
                }
                let resolved_now = intersection.len() == 1;
                *current = intersection;
                if resolved_now {
                    self.resolved_at.get_or_insert(iteration);
                }
                self.trajectory.push(TrajectoryPoint {
                    iteration,
                    candidates: current.len(),
                });
                true
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ip() -> Ipv4Addr {
        "192.0.2.1".parse().unwrap()
    }

    fn set(ids: &[u32]) -> FacilitySet {
        ids.iter().map(|i| FacilityId::new(*i)).collect()
    }

    #[test]
    fn first_constraint_initializes() {
        let mut s = IfaceState::new(ip(), Some(Asn(65_001)));
        assert_eq!(s.outcome(), SearchOutcome::MissingData);
        assert!(s.constrain(&set(&[1, 2, 3]), 1));
        assert_eq!(s.outcome(), SearchOutcome::UnresolvedLocal);
        assert_eq!(s.facility(), None);
    }

    #[test]
    fn intersection_narrows_until_resolved() {
        let mut s = IfaceState::new(ip(), None);
        s.constrain(&set(&[1, 2, 5]), 1);
        assert!(s.constrain(&set(&[2, 5, 9]), 2));
        assert_eq!(s.candidates.as_ref().unwrap().len(), 2);
        assert!(s.constrain(&set(&[2]), 3));
        assert_eq!(s.outcome(), SearchOutcome::Resolved);
        assert_eq!(s.facility(), Some(FacilityId::new(2)));
        assert_eq!(s.resolved_at, Some(3));
    }

    #[test]
    fn single_facility_first_constraint_resolves_at_iteration_one() {
        let mut s = IfaceState::new(ip(), None);
        s.constrain(&set(&[7]), 1);
        assert_eq!(s.outcome(), SearchOutcome::Resolved);
        assert_eq!(s.resolved_at, Some(1));
    }

    #[test]
    fn conflicting_constraint_is_dropped_not_applied() {
        let mut s = IfaceState::new(ip(), None);
        s.constrain(&set(&[1, 2]), 1);
        assert!(!s.constrain(&set(&[8, 9]), 2));
        assert_eq!(s.conflicts, 1);
        assert_eq!(s.candidates.as_ref().unwrap().len(), 2, "state preserved");
    }

    #[test]
    fn empty_constraint_marks_missing_data() {
        let mut s = IfaceState::new(ip(), None);
        assert!(!s.constrain(&FacilitySet::empty(), 1));
        assert!(s.missing_data);
        assert_eq!(s.outcome(), SearchOutcome::MissingData);
    }

    #[test]
    fn remote_flag_shapes_outcome() {
        let mut s = IfaceState::new(ip(), None);
        s.remote = true;
        assert_eq!(s.outcome(), SearchOutcome::UnresolvedRemote);
        s.constrain(&set(&[1, 2]), 1);
        assert_eq!(s.outcome(), SearchOutcome::UnresolvedRemote);
        s.constrain(&set(&[1]), 2);
        assert_eq!(s.outcome(), SearchOutcome::Resolved);
    }

    #[test]
    fn trajectory_records_every_narrowing_step() {
        let mut s = IfaceState::new(ip(), None);
        s.constrain(&set(&[1, 2, 5]), 1);
        s.constrain(&set(&[1, 2, 5]), 2); // no change: no point
        s.constrain(&set(&[8, 9]), 3); // conflict: no point
        s.constrain(&set(&[2, 5]), 4);
        s.constrain(&set(&[5]), 6);
        assert_eq!(
            s.trajectory,
            vec![
                TrajectoryPoint {
                    iteration: 1,
                    candidates: 3
                },
                TrajectoryPoint {
                    iteration: 4,
                    candidates: 2
                },
                TrajectoryPoint {
                    iteration: 6,
                    candidates: 1
                },
            ]
        );
    }

    #[test]
    fn final_reason_tracks_outcome() {
        let mut s = IfaceState::new(ip(), None);
        assert_eq!(s.final_reason(), Some(UnresolvedReason::NoFacilityData));
        s.constrain(&set(&[1, 2]), 1);
        assert_eq!(
            s.final_reason(),
            Some(UnresolvedReason::AmbiguousCandidates)
        );
        s.constrain(&set(&[8, 9]), 2); // conflict, dropped
        assert_eq!(s.final_reason(), Some(UnresolvedReason::ConstraintConflict));
        s.reason = Some(UnresolvedReason::EmptyIntersection);
        assert_eq!(s.final_reason(), Some(UnresolvedReason::EmptyIntersection));
        s.constrain(&set(&[2]), 3);
        assert_eq!(s.final_reason(), None, "resolved clears the reason");
        s.remote = true;
        s.candidates = Some(set(&[1, 2]));
        assert_eq!(s.final_reason(), Some(UnresolvedReason::RemotePeer));
    }

    #[test]
    fn resolved_at_does_not_regress() {
        let mut s = IfaceState::new(ip(), None);
        s.constrain(&set(&[4]), 2);
        s.constrain(&set(&[4]), 9);
        assert_eq!(s.resolved_at, Some(2));
    }

    proptest::proptest! {
        /// Candidate sets never grow.
        #[test]
        fn prop_candidates_shrink_monotonically(
            constraints in proptest::collection::vec(
                proptest::collection::btree_set(0u32..12, 1..6),
                1..8
            )
        ) {
            let mut s = IfaceState::new("10.0.0.1".parse().unwrap(), None);
            let mut last_len: Option<usize> = None;
            for (i, raw) in constraints.iter().enumerate() {
                let facs: FacilitySet =
                    raw.iter().map(|x| FacilityId::new(*x)).collect();
                s.constrain(&facs, i + 1);
                if let Some(set) = &s.candidates {
                    if let Some(prev) = last_len {
                        proptest::prop_assert!(set.len() <= prev);
                    }
                    proptest::prop_assert!(!set.is_empty());
                    last_len = Some(set.len());
                }
            }
        }

        /// A resolved facility is a member of every constraint that was
        /// actually applied (non-conflicting).
        #[test]
        fn prop_resolution_consistent_with_applied_constraints(
            constraints in proptest::collection::vec(
                proptest::collection::btree_set(0u32..6, 1..4),
                1..6
            )
        ) {
            let mut s = IfaceState::new("10.0.0.1".parse().unwrap(), None);
            let mut applied: Vec<FacilitySet> = Vec::new();
            for (i, raw) in constraints.iter().enumerate() {
                let facs: FacilitySet =
                    raw.iter().map(|x| FacilityId::new(*x)).collect();
                let before = s.conflicts;
                s.constrain(&facs, i + 1);
                if s.conflicts == before {
                    applied.push(facs);
                }
            }
            if let Some(f) = s.facility() {
                for c in &applied {
                    proptest::prop_assert!(c.contains(f));
                }
            }
        }
    }
}
