//! The switch-proximity heuristic (§4.4).
//!
//! The far end of a public peering link replies from its IXP fabric
//! address, whose facility is often ambiguous (the member connects to the
//! exchange at several buildings). Without the exchange's switch diagram,
//! the paper ranks facility proximity *probabilistically*: "for each IXP
//! facility that appears at the near end of a public peering link, we
//! count how often it traverses a certain IXP facility at the far end …
//! and we rank the proximity of IXP facilities using this metric". Far
//! ends then land in the facility most proximate to their (resolved) near
//! end. Ties — same backhaul or core switch — abstain, exactly the
//! failure mode the paper reports for AMS-IX.

use std::collections::BTreeMap;

use cfs_types::{FacilityId, FacilitySet};

/// Facility co-occurrence statistics for far-end inference.
#[derive(Clone, Debug, Default)]
pub struct ProximityModel {
    counts: BTreeMap<(FacilityId, FacilityId), usize>,
    far_totals: BTreeMap<FacilityId, usize>,
}

impl ProximityModel {
    /// Creates an empty model.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a fully resolved public link: near end at `near`, far end
    /// at `far`.
    pub fn observe(&mut self, near: FacilityId, far: FacilityId) {
        *self.counts.entry((near, far)).or_default() += 1;
        *self.far_totals.entry(far).or_default() += 1;
    }

    /// Number of recorded pairs.
    pub fn observations(&self) -> usize {
        self.counts.values().sum()
    }

    /// Infers the far-end facility for a link whose near end resolved to
    /// `near` and whose far end is constrained to `candidates`.
    ///
    /// Scoring uses *lift* — the share of a far facility's sightings that
    /// came from this near end — rather than raw counts, so exchanges'
    /// mega-facilities (popular with everyone, hence proximate to no one
    /// in particular) don't drown the locality signal. Returns `None`
    /// when no candidate was ever seen from `near`, or when the leaders
    /// tie (facilities behind the same backhaul or core switch are
    /// indistinguishable from traffic, as the paper notes for AMS-IX).
    pub fn infer(&self, near: FacilityId, candidates: &FacilitySet) -> Option<FacilityId> {
        // Lift in per-mille to keep ordering integral and exact.
        let lift = |c: FacilityId| -> (u64, usize) {
            let n = self.counts.get(&(near, c)).copied().unwrap_or(0);
            let total = self.far_totals.get(&c).copied().unwrap_or(0);
            if n == 0 || total == 0 {
                (0, 0)
            } else {
                ((n as u64 * 1000) / total as u64, n)
            }
        };
        let mut scored: Vec<(u64, usize, FacilityId)> = candidates
            .iter()
            .map(|c| (lift(c).0, lift(c).1, c))
            .collect();
        scored.sort_by_key(|(l, n, f)| (std::cmp::Reverse(*l), std::cmp::Reverse(*n), *f));
        match scored.as_slice() {
            [] => None,
            [(lift, _, f)] => (*lift > 0).then_some(*f),
            [(top_l, top_n, f), (second_l, second_n, _), ..] => {
                // A material lift lead decides; when lifts tie (e.g. both
                // candidates only ever seen from this near end), fall back
                // to a strong raw-count skew. Anything weaker is a
                // same-backhaul tie and abstains.
                let lift_lead = *top_l > 0 && *top_l >= second_l + second_l / 2 + 50;
                let count_skew = *top_n >= 3 && *top_n >= second_n * 3;
                (lift_lead || count_skew).then_some(*f)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f(id: u32) -> FacilityId {
        FacilityId::new(id)
    }

    fn set(ids: &[u32]) -> FacilitySet {
        ids.iter().map(|i| f(*i)).collect()
    }

    #[test]
    fn infers_dominant_far_facility() {
        let mut m = ProximityModel::new();
        for _ in 0..5 {
            m.observe(f(1), f(10));
        }
        m.observe(f(1), f(11));
        assert_eq!(m.infer(f(1), &set(&[10, 11])), Some(f(10)));
        assert_eq!(m.observations(), 6);
    }

    #[test]
    fn ties_abstain() {
        let mut m = ProximityModel::new();
        m.observe(f(1), f(10));
        m.observe(f(1), f(11));
        assert_eq!(m.infer(f(1), &set(&[10, 11])), None);
    }

    #[test]
    fn unseen_near_end_abstains() {
        let m = ProximityModel::new();
        assert_eq!(m.infer(f(9), &set(&[10, 11])), None);
        assert_eq!(m.infer(f(9), &set(&[])), None);
    }

    #[test]
    fn candidates_outside_the_counts_score_zero() {
        let mut m = ProximityModel::new();
        m.observe(f(1), f(10));
        m.observe(f(1), f(10));
        // Candidate set excludes the seen facility: nothing scores.
        assert_eq!(m.infer(f(1), &set(&[11, 12])), None);
        // Candidate set includes it plus a stranger: seen one wins.
        assert_eq!(m.infer(f(1), &set(&[10, 12])), Some(f(10)));
    }

    #[test]
    fn proximity_is_directional_per_near_end() {
        let mut m = ProximityModel::new();
        for _ in 0..2 {
            m.observe(f(1), f(10));
            m.observe(f(2), f(11));
        }
        assert_eq!(m.infer(f(1), &set(&[10, 11])), Some(f(10)));
        assert_eq!(m.infer(f(2), &set(&[10, 11])), Some(f(11)));
    }

    #[test]
    fn weak_or_noisy_leads_abstain() {
        let mut m = ProximityModel::new();
        // A lone sighting against total silence is still a lift lead.
        m.observe(f(1), f(10));
        assert_eq!(m.infer(f(1), &set(&[10, 11])), Some(f(10)));
        // 3-vs-2 with equal lift: a noise-level lead abstains.
        m.observe(f(1), f(10));
        m.observe(f(1), f(10));
        m.observe(f(1), f(11));
        m.observe(f(1), f(11));
        assert_eq!(m.infer(f(1), &set(&[10, 11])), None);
        // 6-vs-2: a real count skew decides despite tied lifts.
        for _ in 0..3 {
            m.observe(f(1), f(10));
        }
        assert_eq!(m.infer(f(1), &set(&[10, 11])), Some(f(10)));
    }
}
