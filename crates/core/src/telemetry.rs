//! Rendering the `cfs-trace/1` document: the `--trace-json` export
//! combining a [`cfs_obs::TraceSnapshot`] with the report's convergence
//! telemetry.
//!
//! Everything here is hand-rolled JSON over `BTreeMap`-ordered data, in
//! the style of `cfs_obs::export`: a given `(report, snapshot)` pair
//! always renders to the same bytes, and nothing thread-sensitive (span
//! durations) enters the document. That is what lets
//! `crates/core/tests/determinism.rs` assert byte-identical trace files
//! across worker counts.
//!
//! Document layout:
//!
//! ```text
//! {
//!   "schema": "cfs-trace/1",
//!   "digest": "<fnv1a64 over everything after this member>",
//!   "counters": { "<name>": <u64>, … },
//!   "histogram_le": [1, 2, 4, …],               // shared obs bounds
//!   "histograms": { "<name>": {"count", "sum", "buckets"}, … },
//!   "spans": { "<name>": {"count"}, … },        // counts, never ns
//!   "convergence": {
//!     "candidate_bucket_le": [2, 4, 8, 16, 32],
//!     "per_iteration": [ {"iteration", "unconstrained",
//!                         "resolved", "buckets"}, … ],
//!     "trajectories": { "<ip>": [[iteration, candidates], …], … }
//!   },
//!   "resolution_curve": [0.25, …],
//!   "kb_quality": { "records", "agreement_mean_pm", "unanimous",
//!                   "majority", "contested", "single_source",
//!                   "per_source": { "<label>": {"trust_pm", "claims",
//!                                   "dissents", "mean_agreement_pm"} } }
//! }
//! ```

use cfs_obs::export::{fnv1a64, stable_body};
use cfs_obs::TraceSnapshot;

use crate::report::{CfsReport, ConvergenceTelemetry, CANDIDATE_BUCKET_LE};

/// Schema identifier stamped into every trace document.
pub const TRACE_SCHEMA: &str = "cfs-trace/1";

/// The duration-sidecar renderer, re-exported so trace producers can
/// write the `cfs-profile/1` file next to the trace without reaching
/// into `cfs_obs` themselves. The sidecar reads the same snapshot but
/// never enters [`render_trace_json`]'s digested body.
pub use cfs_obs::profile::{render_profile_json, PROFILE_SCHEMA};

fn push_usize_list(out: &mut String, values: impl IntoIterator<Item = usize>) {
    out.push('[');
    for (i, v) in values.into_iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&v.to_string());
    }
    out.push(']');
}

fn push_convergence(out: &mut String, conv: &ConvergenceTelemetry) {
    out.push_str("{\"candidate_bucket_le\":");
    push_usize_list(out, CANDIDATE_BUCKET_LE);
    out.push_str(",\"per_iteration\":[");
    for (i, h) in conv.per_iteration.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"iteration\":{},\"unconstrained\":{},\"resolved\":{},\"buckets\":",
            h.iteration, h.unconstrained, h.resolved
        ));
        push_usize_list(out, h.buckets.iter().map(|b| *b as usize));
        out.push('}');
    }
    out.push_str("],\"trajectories\":{");
    for (i, (ip, points)) in conv.trajectories.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\"{ip}\":["));
        for (j, p) in points.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push_str(&format!("[{},{}]", p.iteration, p.candidates));
        }
        out.push(']');
    }
    out.push_str("}}");
}

fn push_kb_quality(out: &mut String, q: &cfs_kb::KbQuality) {
    out.push_str(&format!(
        "{{\"records\":{},\"agreement_mean_pm\":{},\"unanimous\":{},\"majority\":{},\
         \"contested\":{},\"single_source\":{},\"per_source\":{{",
        q.records, q.agreement_mean_pm, q.unanimous, q.majority, q.contested, q.single_source
    ));
    for (i, (label, s)) in q.per_source.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\"{label}\":{{\"trust_pm\":{},\"claims\":{},\"dissents\":{},\
             \"mean_agreement_pm\":{}}}",
            s.trust_pm, s.claims, s.dissents, s.mean_agreement_pm
        ));
    }
    out.push_str("}}");
}

/// Renders the full trace document for `--trace-json`.
///
/// The digest is FNV-1a 64 over the document body (everything after the
/// `"digest"` member), so consumers can check integrity — and the
/// determinism test can compare files across thread counts — without
/// parsing.
pub fn render_trace_json(report: &CfsReport, snap: &TraceSnapshot) -> String {
    render_with(report, snap, None)
}

/// [`render_trace_json`] with a run-shape fingerprint stamped into the
/// body: `"shape"` is the FNV-1a 64 of a caller-chosen configuration
/// string (scale, seed, fault plan, …), rendered as 16 hex digits
/// immediately after the digest member — *inside* the digested body, so
/// tampering with the shape invalidates the digest like any other
/// member. `trace-diff --baseline-dir` keys golden selection on it.
/// Consumers that predate the member (the validator, the diff engine's
/// structural walk) skip unknown members, so shaped and shape-less
/// documents interoperate.
pub fn render_trace_json_with_shape(
    report: &CfsReport,
    snap: &TraceSnapshot,
    shape: &str,
) -> String {
    render_with(report, snap, Some(shape))
}

fn render_with(report: &CfsReport, snap: &TraceSnapshot, shape: Option<&str>) -> String {
    let mut body = String::new();
    if let Some(shape) = shape {
        body.push_str(&format!("\"shape\":\"{:016x}\",", fnv1a64(shape)));
    }
    body.push_str(&stable_body(snap));
    body.push_str(",\"convergence\":");
    push_convergence(&mut body, &report.convergence);
    body.push_str(",\"resolution_curve\":[");
    for (i, v) in report.resolution_curve().iter().enumerate() {
        if i > 0 {
            body.push(',');
        }
        // Shortest-roundtrip float formatting: stable for equal bits.
        body.push_str(&format!("{v}"));
    }
    body.push(']');
    body.push_str(",\"kb_quality\":");
    push_kb_quality(&mut body, &report.kb_quality);
    let digest = fnv1a64(&body);
    format!("{{\"schema\":\"{TRACE_SCHEMA}\",\"digest\":\"{digest:016x}\",{body}}}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::CandidateHistogram;
    use crate::state::TrajectoryPoint;
    use cfs_obs::{Recorder, TraceRecorder};
    use std::collections::BTreeMap;

    fn report() -> CfsReport {
        let mut hist = CandidateHistogram::new(1);
        hist.record(Some(3));
        hist.record(Some(1));
        hist.record(None);
        let mut trajectories = BTreeMap::new();
        trajectories.insert(
            "10.0.0.1".parse().unwrap(),
            vec![
                TrajectoryPoint {
                    iteration: 1,
                    candidates: 3,
                },
                TrajectoryPoint {
                    iteration: 2,
                    candidates: 1,
                },
            ],
        );
        CfsReport {
            interfaces: BTreeMap::new(),
            links: Vec::new(),
            iterations: Vec::new(),
            router_stats: Default::default(),
            traces_issued: 0,
            convergence: ConvergenceTelemetry {
                per_iteration: vec![hist],
                trajectories,
            },
            data_quality: Default::default(),
            kb_quality: Default::default(),
        }
    }

    fn snapshot() -> TraceSnapshot {
        let rec = TraceRecorder::deterministic();
        rec.counter("cfs.iterations", 2);
        rec.observe("cfs.candidates_per_iface", 3);
        let s = rec.span_start();
        rec.span_end("cfs.run", s);
        rec.snapshot()
    }

    #[test]
    fn document_shape_and_stability() {
        let doc = render_trace_json(&report(), &snapshot());
        assert!(doc.starts_with("{\"schema\":\"cfs-trace/1\",\"digest\":\""));
        for needle in [
            "\"counters\":{\"cfs.iterations\":2",
            "\"convergence\":{\"candidate_bucket_le\":[2,4,8,16,32]",
            "\"per_iteration\":[{\"iteration\":1,\"unconstrained\":1,\"resolved\":1,",
            "\"trajectories\":{\"10.0.0.1\":[[1,3],[2,1]]}",
            "\"resolution_curve\":[]",
            "\"kb_quality\":{\"records\":0,\"agreement_mean_pm\":0,",
        ] {
            assert!(doc.contains(needle), "missing {needle} in {doc}");
        }
        assert!(!doc.contains("total_ns"), "durations leaked: {doc}");
        assert_eq!(doc, render_trace_json(&report(), &snapshot()));
    }

    #[test]
    fn shape_member_is_digested_and_deterministic() {
        let shaped = render_trace_json_with_shape(&report(), &snapshot(), "scale=tiny;seed=7");
        let expected = format!(
            "\"shape\":\"{:016x}\",\"counters\"",
            fnv1a64("scale=tiny;seed=7")
        );
        assert!(shaped.contains(&expected), "{shaped}");
        // The shape sits inside the digested body: same digest math as
        // digest_matches_body, over a body that now leads with shape.
        let digest_start = shaped.find("\"digest\":\"").unwrap() + "\"digest\":\"".len();
        let digest_hex = &shaped[digest_start..digest_start + 16];
        let body_start = shaped[digest_start..].find("\",").unwrap() + digest_start + 2;
        let body = &shaped[body_start..shaped.len() - 1];
        assert_eq!(format!("{:016x}", fnv1a64(body)), digest_hex);
        // Different shape strings change the digest; shape-less rendering
        // is untouched.
        let other = render_trace_json_with_shape(&report(), &snapshot(), "scale=small;seed=7");
        assert_ne!(shaped, other);
        assert!(!render_trace_json(&report(), &snapshot()).contains("\"shape\""));
    }

    #[test]
    fn digest_matches_body() {
        let doc = render_trace_json(&report(), &snapshot());
        // Everything after the digest member is the digested body.
        let marker = "\",";
        let digest_start = doc.find("\"digest\":\"").unwrap() + "\"digest\":\"".len();
        let digest_hex = &doc[digest_start..digest_start + 16];
        let body_start = doc[digest_start..].find(marker).unwrap() + digest_start + marker.len();
        let body = &doc[body_start..doc.len() - 1];
        assert_eq!(format!("{:016x}", fnv1a64(body)), digest_hex);
    }
}
