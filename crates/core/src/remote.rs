//! Remote-peering inference (§4.2 Step 2 case 3, after Castro et al.
//! [14]): when an AS shares no facility with the exchange it peers at,
//! confirm remoteness by measuring the RTT floor to the fabric address
//! from vantage points near the exchange — "multiple measurements taken
//! at different times of the day to avoid temporarily elevated RTT values
//! due to congestion".

use std::net::Ipv4Addr;

use cfs_geo::fiber_rtt_ms;
use cfs_obs::{Recorder, NOOP};
use cfs_traceroute::{Engine, VpSet};
use cfs_types::{IxpId, VantagePointId};

/// Spacing between repeated measurements: beyond the congestion episode
/// length, so one bad slot cannot poison every sample.
const SAMPLE_SPACING_MS: u64 = 3_600_000; // one hour

/// Number of repeated measurements per vantage point.
const SAMPLES: u64 = 4;

/// Slack added on top of the local propagation bound before declaring a
/// port remote (accounts for queueing and access-circuit detours).
const REMOTE_SLACK_MS: f64 = 6.0;

/// RTT-based remote-peering detector.
pub struct RemoteTester<'a> {
    engine: &'a Engine<'a>,
    vps: &'a VpSet,
    recorder: &'a dyn Recorder,
}

impl<'a> RemoteTester<'a> {
    /// Creates a tester over the measurement platforms.
    pub fn new(engine: &'a Engine<'a>, vps: &'a VpSet) -> Self {
        Self {
            engine,
            vps,
            recorder: &NOOP,
        }
    }

    /// Attaches a recorder: every [`RemoteTester::is_remote`] call then
    /// counts its test and verdict. Recording is per tested address, so
    /// the totals are chunking-independent (DESIGN.md §7).
    pub fn recorded(mut self, recorder: &'a dyn Recorder) -> Self {
        self.recorder = recorder;
        self
    }

    /// The nearest vantage points to the exchange's core facility.
    fn nearest_vps(&self, ixp: IxpId, count: usize) -> Vec<(VantagePointId, f64)> {
        let topo = self.engine.topology();
        let core_fac = topo.switches[topo.ixps[ixp].core].facility;
        let core = topo.facilities[core_fac].location;
        let mut scored: Vec<(VantagePointId, f64)> = self
            .vps
            .vps
            .iter()
            .map(|(id, vp)| (id, vp.coords.distance_km(core)))
            .collect();
        scored.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
        scored.truncate(count);
        scored
    }

    /// Tests whether the member behind `fabric_ip` peers remotely at
    /// `ixp`. Returns `None` when no measurement succeeded (silent
    /// router, no vantage points).
    pub fn is_remote(&self, ixp: IxpId, fabric_ip: Ipv4Addr) -> Option<bool> {
        self.recorder.counter("remote.tests", 1);
        let mut verdict = None;
        for (vp_id, dist_km) in self.nearest_vps(ixp, 3) {
            let vp = &self.vps.vps[vp_id];
            let min_rtt = (0..SAMPLES)
                .filter_map(|k| self.engine.ping(vp, fabric_ip, 1 + k * SAMPLE_SPACING_MS))
                .fold(f64::INFINITY, f64::min);
            if !min_rtt.is_finite() {
                continue;
            }
            // The local bound: reach the exchange, cross the metro fabric.
            let local_bound = fiber_rtt_ms(dist_km) + REMOTE_SLACK_MS;
            verdict = Some(min_rtt > local_bound);
            break; // nearest responsive vantage point decides
        }
        let outcome = match verdict {
            Some(true) => "remote.verdict_remote",
            Some(false) => "remote.verdict_local",
            None => "remote.verdict_unknown",
        };
        self.recorder.counter(outcome, 1);
        verdict
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfs_topology::{Topology, TopologyConfig};
    use cfs_traceroute::{deploy_vantage_points, VpConfig};

    fn setup() -> Topology {
        Topology::generate(TopologyConfig::tiny()).unwrap()
    }

    #[test]
    fn remote_members_flagged_locals_cleared() {
        let topo = setup();
        let vps = deploy_vantage_points(&topo, &VpConfig::tiny()).unwrap();
        let engine = Engine::new(&topo);
        let tester = RemoteTester::new(&engine, &vps);

        let mut checked_remote = 0usize;
        let mut correct_remote = 0usize;
        let mut checked_local = 0usize;
        let mut correct_local = 0usize;

        for (id, ixp) in topo.ixps.iter() {
            for m in &ixp.members {
                let Some(verdict) = tester.is_remote(id, m.fabric_ip) else {
                    continue;
                };
                // Ground truth: remote membership via reseller, with the
                // router genuinely far from the exchange.
                let core = topo.facilities[topo.switches[ixp.core].facility].location;
                let far = topo.routers[m.router].coords.distance_km(core) > 400.0;
                if m.remote_via.is_some() && far {
                    checked_remote += 1;
                    correct_remote += usize::from(verdict);
                } else if m.remote_via.is_none() {
                    checked_local += 1;
                    correct_local += usize::from(!verdict);
                }
            }
        }

        assert!(checked_local > 0, "no local members tested");
        assert!(
            correct_local * 10 >= checked_local * 9,
            "local false-positive rate too high: {correct_local}/{checked_local}"
        );
        if checked_remote > 0 {
            assert!(
                correct_remote * 10 >= checked_remote * 8,
                "remote recall too low: {correct_remote}/{checked_remote}"
            );
        }
    }

    #[test]
    fn unknown_address_yields_no_verdict() {
        let topo = setup();
        let vps = deploy_vantage_points(&topo, &VpConfig::tiny()).unwrap();
        let engine = Engine::new(&topo);
        let tester = RemoteTester::new(&engine, &vps);
        let ixp = topo.ixps.ids().next().unwrap();
        assert_eq!(tester.is_remote(ixp, "198.18.0.1".parse().unwrap()), None);
    }
}
