//! Remote-peering inference (§4.2 Step 2 case 3, after Castro et al.
//! [14]): when an AS shares no facility with the exchange it peers at,
//! confirm remoteness by measuring the RTT floor to the fabric address
//! from vantage points near the exchange — "multiple measurements taken
//! at different times of the day to avoid temporarily elevated RTT values
//! due to congestion".

use std::collections::BTreeSet;
use std::net::Ipv4Addr;

use cfs_chaos::RetryPolicy;
use cfs_geo::fiber_rtt_ms;
use cfs_obs::{Recorder, NOOP};
use cfs_traceroute::{ProbeService, VantagePoint, VpSet};
use cfs_types::{IxpId, VantagePointId};

/// Spacing between repeated measurements: beyond the congestion episode
/// length, so one bad slot cannot poison every sample.
const SAMPLE_SPACING_MS: u64 = 3_600_000; // one hour

/// Number of repeated measurements per vantage point.
const SAMPLES: u64 = 4;

/// Slack added on top of the local propagation bound before declaring a
/// port remote (accounts for queueing and access-circuit detours).
const REMOTE_SLACK_MS: f64 = 6.0;

/// RTT-based remote-peering detector.
pub struct RemoteTester<'a> {
    engine: &'a dyn ProbeService,
    vps: &'a VpSet,
    recorder: &'a dyn Recorder,
    retry: RetryPolicy,
    retry_seed: u64,
    down: Option<&'a BTreeSet<VantagePointId>>,
}

impl<'a> RemoteTester<'a> {
    /// Creates a tester over the measurement platforms.
    pub fn new(engine: &'a dyn ProbeService, vps: &'a VpSet) -> Self {
        Self {
            engine,
            vps,
            recorder: &NOOP,
            retry: RetryPolicy::default(),
            retry_seed: 0,
            down: None,
        }
    }

    /// Excludes the given vantage points from the measurement pool (a
    /// `VpStatusChange` delta marks platforms administratively down).
    /// The verdict stays a pure function of `(ixp, ip, down-set)`, so a
    /// resident session and a fresh run built with the same exclusions
    /// agree byte-for-byte.
    pub fn excluding(mut self, down: &'a BTreeSet<VantagePointId>) -> Self {
        self.down = Some(down);
        self
    }

    /// Attaches a recorder: every [`RemoteTester::is_remote`] call then
    /// counts its test and verdict. Recording is per tested address, so
    /// the totals are chunking-independent (DESIGN.md §7).
    pub fn recorded(mut self, recorder: &'a dyn Recorder) -> Self {
        self.recorder = recorder;
        self
    }

    /// Sets the retry policy for unanswered pings. Backoff jitter comes
    /// from `seed`, never from ambient randomness (DESIGN.md §9).
    pub fn retrying(mut self, retry: RetryPolicy, seed: u64) -> Self {
        self.retry = retry;
        self.retry_seed = seed;
        self
    }

    /// One RTT sample with deterministic retry-on-silence: an unanswered
    /// ping is re-issued after an exponential backoff delay, so transient
    /// loss (rate-limit episodes, timeout blips) does not starve the
    /// remote-peering test.
    fn sample(&self, vp: &VantagePoint, target: Ipv4Addr, at_ms: u64) -> Option<f64> {
        if let Some(rtt) = self.engine.ping(vp, target, at_ms) {
            return Some(rtt);
        }
        let seed = self.retry_seed ^ u64::from(u32::from(target)).rotate_left(17) ^ at_ms;
        for attempt in 1..=self.retry.max_retries {
            self.recorder.counter("remote.retries", 1);
            let t = at_ms + self.retry.delay_ms(seed, attempt);
            if let Some(rtt) = self.engine.ping(vp, target, t) {
                return Some(rtt);
            }
        }
        None
    }

    /// The nearest vantage points to the exchange's core facility.
    fn nearest_vps(&self, ixp: IxpId, count: usize) -> Vec<(VantagePointId, f64)> {
        let topo = self.engine.topology();
        let core_fac = topo.switches[topo.ixps[ixp].core].facility;
        let core = topo.facilities[core_fac].location;
        let mut scored: Vec<(VantagePointId, f64)> = self
            .vps
            .vps
            .iter()
            .filter(|(id, _)| self.down.is_none_or(|down| !down.contains(id)))
            .map(|(id, vp)| (id, vp.coords.distance_km(core)))
            .collect();
        scored.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
        scored.truncate(count);
        scored
    }

    /// Tests whether the member behind `fabric_ip` peers remotely at
    /// `ixp`. Returns `None` when no measurement succeeded (silent
    /// router, no vantage points).
    pub fn is_remote(&self, ixp: IxpId, fabric_ip: Ipv4Addr) -> Option<bool> {
        self.recorder.counter("remote.tests", 1);
        let mut verdict = None;
        for (vp_id, dist_km) in self.nearest_vps(ixp, 3) {
            let vp = &self.vps.vps[vp_id];
            let min_rtt = (0..SAMPLES)
                .filter_map(|k| self.sample(vp, fabric_ip, 1 + k * SAMPLE_SPACING_MS))
                .fold(f64::INFINITY, f64::min);
            if !min_rtt.is_finite() {
                continue;
            }
            // The local bound: reach the exchange, cross the metro fabric.
            let local_bound = fiber_rtt_ms(dist_km) + REMOTE_SLACK_MS;
            verdict = Some(min_rtt > local_bound);
            break; // nearest responsive vantage point decides
        }
        let outcome = match verdict {
            Some(true) => "remote.verdict_remote",
            Some(false) => "remote.verdict_local",
            None => "remote.verdict_unknown",
        };
        self.recorder.counter(outcome, 1);
        verdict
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfs_topology::{Topology, TopologyConfig};
    use cfs_traceroute::{deploy_vantage_points, Engine, VpConfig};

    fn setup() -> Topology {
        Topology::generate(TopologyConfig::tiny()).unwrap()
    }

    #[test]
    fn remote_members_flagged_locals_cleared() {
        let topo = setup();
        let vps = deploy_vantage_points(&topo, &VpConfig::tiny()).unwrap();
        let engine = Engine::new(&topo);
        let tester = RemoteTester::new(&engine, &vps);

        let mut checked_remote = 0usize;
        let mut correct_remote = 0usize;
        let mut checked_local = 0usize;
        let mut correct_local = 0usize;

        for (id, ixp) in topo.ixps.iter() {
            for m in &ixp.members {
                let Some(verdict) = tester.is_remote(id, m.fabric_ip) else {
                    continue;
                };
                // Ground truth: remote membership via reseller, with the
                // router genuinely far from the exchange.
                let core = topo.facilities[topo.switches[ixp.core].facility].location;
                let far = topo.routers[m.router].coords.distance_km(core) > 400.0;
                if m.remote_via.is_some() && far {
                    checked_remote += 1;
                    correct_remote += usize::from(verdict);
                } else if m.remote_via.is_none() {
                    checked_local += 1;
                    correct_local += usize::from(!verdict);
                }
            }
        }

        assert!(checked_local > 0, "no local members tested");
        assert!(
            correct_local * 10 >= checked_local * 9,
            "local false-positive rate too high: {correct_local}/{checked_local}"
        );
        if checked_remote > 0 {
            assert!(
                correct_remote * 10 >= checked_remote * 8,
                "remote recall too low: {correct_remote}/{checked_remote}"
            );
        }
    }

    #[test]
    fn retries_preserve_verdict_coverage_under_transient_loss() {
        use std::sync::atomic::{AtomicU64, Ordering};

        use cfs_chaos::{FaultPlan, FaultProfile};
        use cfs_traceroute::ChaosEngine;

        #[derive(Default)]
        struct Retries(AtomicU64);
        impl Recorder for Retries {
            fn counter(&self, name: &'static str, delta: u64) {
                if name == "remote.retries" {
                    self.0.fetch_add(delta, Ordering::Relaxed);
                }
            }
        }

        let topo = setup();
        let vps = deploy_vantage_points(&topo, &VpConfig::tiny()).unwrap();
        let clean = Engine::new(&topo);
        let noisy = ChaosEngine::new(
            Engine::new(&topo),
            FaultPlan::new(
                9,
                FaultProfile {
                    probe_timeout_pm: 400,
                    ..FaultProfile::off()
                },
            ),
        );
        let rec = Retries::default();
        let retried = RemoteTester::new(&noisy, &vps)
            .recorded(&rec)
            .retrying(RetryPolicy::default(), 9);

        let baseline = RemoteTester::new(&clean, &vps);
        let mut clean_verdicts = 0usize;
        let mut noisy_verdicts = 0usize;
        let mut tested = 0usize;
        for (id, ixp) in topo.ixps.iter() {
            for m in &ixp.members {
                tested += 1;
                clean_verdicts += usize::from(baseline.is_remote(id, m.fabric_ip).is_some());
                noisy_verdicts += usize::from(retried.is_remote(id, m.fabric_ip).is_some());
            }
        }
        assert!(tested > 0);
        assert!(rec.0.load(Ordering::Relaxed) > 0, "no retries were issued");
        // 40% per-probe transient loss with exponential-backoff retries
        // must not collapse verdict coverage.
        assert!(
            noisy_verdicts * 10 >= clean_verdicts * 9,
            "coverage collapsed: {noisy_verdicts}/{clean_verdicts} of {tested}"
        );
    }

    #[test]
    fn unknown_address_yields_no_verdict() {
        let topo = setup();
        let vps = deploy_vantage_points(&topo, &VpConfig::tiny()).unwrap();
        let engine = Engine::new(&topo);
        let tester = RemoteTester::new(&engine, &vps);
        let ixp = topo.ixps.ids().next().unwrap();
        assert_eq!(tester.is_remote(ixp, "198.18.0.1".parse().unwrap()), None);
    }
}
