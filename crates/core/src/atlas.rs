//! Incremental interconnection-map construction.
//!
//! The paper's conclusion: "by utilizing results for individual
//! interconnections and others inferred in the process, it is possible to
//! incrementally construct a more detailed map of interconnections."
//! [`InterconnectionAtlas`] is that construction: merge the reports of
//! successive campaigns (different targets, vantage points, days) into a
//! cumulative facility map, tracking confirmations and disagreements per
//! interface.

use std::collections::BTreeMap;
use std::net::Ipv4Addr;

use cfs_types::{Asn, IxpId};

use crate::report::{CfsReport, InferredInterface, InferredLink};
use crate::state::SearchOutcome;

/// One interface's cumulative record.
#[derive(Clone, Debug)]
pub struct AtlasEntry {
    /// The current best verdict.
    pub verdict: InferredInterface,
    /// Campaigns that re-derived the same facility.
    pub confirmations: usize,
    /// Campaigns that derived a *different* facility (data drift or
    /// incomplete-data convergence, Figure 8's "changed inference").
    pub disagreements: usize,
    /// Campaign index of the current verdict.
    pub last_campaign: usize,
}

/// Key identifying an interconnection across campaigns.
type LinkKey = (Ipv4Addr, Option<Ipv4Addr>, Option<IxpId>);

/// A cumulative map of interfaces and interconnections.
#[derive(Clone, Debug, Default)]
pub struct InterconnectionAtlas {
    interfaces: BTreeMap<Ipv4Addr, AtlasEntry>,
    links: BTreeMap<LinkKey, InferredLink>,
    campaigns: usize,
}

impl InterconnectionAtlas {
    /// An empty atlas.
    pub fn new() -> Self {
        Self::default()
    }

    /// Merges one campaign's report. Verdict precedence per interface:
    /// a constraint-resolved facility beats a proximity-derived one,
    /// which beats no facility; among equals the *tighter* candidate set
    /// wins, then the newer campaign.
    pub fn merge(&mut self, report: &CfsReport) {
        self.campaigns += 1;
        let campaign = self.campaigns;

        for (ip, incoming) in &report.interfaces {
            match self.interfaces.get_mut(ip) {
                None => {
                    self.interfaces.insert(
                        *ip,
                        AtlasEntry {
                            verdict: incoming.clone(),
                            confirmations: 0,
                            disagreements: 0,
                            last_campaign: campaign,
                        },
                    );
                }
                Some(entry) => {
                    match (entry.verdict.facility, incoming.facility) {
                        (Some(old), Some(new)) if old == new => entry.confirmations += 1,
                        (Some(_), Some(_)) => entry.disagreements += 1,
                        _ => {}
                    }
                    if replaces(&entry.verdict, incoming) {
                        entry.verdict = incoming.clone();
                        entry.last_campaign = campaign;
                    } else {
                        // Keep the standing verdict but accumulate what
                        // the newer campaign *observed* (roles, IXPs).
                        entry
                            .verdict
                            .public_ixps
                            .extend(incoming.public_ixps.iter().copied());
                        entry.verdict.seen_private |= incoming.seen_private;
                    }
                }
            }
        }

        for link in &report.links {
            let key = (link.near_ip, link.far_ip, link.ixp);
            self.links.entry(key).or_insert_with(|| link.clone());
        }
    }

    /// Number of merged campaigns.
    pub fn campaigns(&self) -> usize {
        self.campaigns
    }

    /// Interfaces known to the atlas.
    pub fn interface_count(&self) -> usize {
        self.interfaces.len()
    }

    /// Interfaces with a facility verdict.
    pub fn resolved_count(&self) -> usize {
        self.interfaces
            .values()
            .filter(|e| e.verdict.facility.is_some())
            .count()
    }

    /// Distinct interconnections accumulated.
    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    /// Entry for one interface.
    pub fn interface(&self, ip: Ipv4Addr) -> Option<&AtlasEntry> {
        self.interfaces.get(&ip)
    }

    /// Iterates all entries.
    pub fn interfaces(&self) -> impl Iterator<Item = (&Ipv4Addr, &AtlasEntry)> {
        self.interfaces.iter()
    }

    /// Iterates all accumulated links.
    pub fn links(&self) -> impl Iterator<Item = &InferredLink> {
        self.links.values()
    }

    /// Interfaces whose verdict has been contradicted at least once —
    /// candidates for re-measurement.
    pub fn contested(&self) -> Vec<Ipv4Addr> {
        self.interfaces
            .iter()
            .filter(|(_, e)| e.disagreements > 0)
            .map(|(ip, _)| *ip)
            .collect()
    }

    /// All interfaces attributed to one AS.
    pub fn interfaces_of(&self, asn: Asn) -> Vec<Ipv4Addr> {
        self.interfaces
            .iter()
            .filter(|(_, e)| e.verdict.owner == Some(asn))
            .map(|(ip, _)| *ip)
            .collect()
    }
}

/// Whether `incoming` should replace `standing` as the verdict.
fn replaces(standing: &InferredInterface, incoming: &InferredInterface) -> bool {
    // Rank: resolved-by-constraints > resolved-by-proximity > constrained
    // > nothing; ties broken by tighter candidate sets.
    fn rank(i: &InferredInterface) -> (u8, std::cmp::Reverse<usize>) {
        let class = match (i.facility.is_some(), i.via_proximity, i.outcome) {
            (true, false, _) => 3,
            (true, true, _) => 2,
            (false, _, SearchOutcome::UnresolvedLocal | SearchOutcome::UnresolvedRemote) => 1,
            _ => 0,
        };
        let tightness = if i.candidates.is_empty() {
            usize::MAX
        } else {
            i.candidates.len()
        };
        (class, std::cmp::Reverse(tightness))
    }
    rank(incoming) > rank(standing)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    fn iface(
        ip: &str,
        facility: Option<u32>,
        via_proximity: bool,
        cands: usize,
    ) -> InferredInterface {
        let candidates: BTreeSet<cfs_types::FacilityId> = match facility {
            Some(f) => [cfs_types::FacilityId::new(f)].into_iter().collect(),
            None => (0..cands as u32).map(cfs_types::FacilityId::new).collect(),
        };
        InferredInterface {
            ip: ip.parse().unwrap(),
            owner: Some(Asn(65_000)),
            facility: facility.map(cfs_types::FacilityId::new),
            candidates,
            metro: None,
            outcome: if facility.is_some() {
                SearchOutcome::Resolved
            } else {
                SearchOutcome::UnresolvedLocal
            },
            remote: false,
            public_ixps: BTreeSet::new(),
            seen_private: false,
            resolved_at: facility.map(|_| 1),
            via_proximity,
            widened: false,
            unresolved_reason: None,
        }
    }

    fn report(ifaces: Vec<InferredInterface>) -> CfsReport {
        CfsReport {
            interfaces: ifaces.into_iter().map(|i| (i.ip, i)).collect(),
            links: Vec::new(),
            iterations: Vec::new(),
            router_stats: Default::default(),
            traces_issued: 0,
            convergence: Default::default(),
            data_quality: Default::default(),
            kb_quality: Default::default(),
        }
    }

    #[test]
    fn coverage_grows_monotonically() {
        let mut atlas = InterconnectionAtlas::new();
        atlas.merge(&report(vec![iface("10.0.0.1", Some(3), false, 1)]));
        assert_eq!(atlas.interface_count(), 1);
        atlas.merge(&report(vec![iface("10.0.0.2", Some(4), false, 1)]));
        assert_eq!(atlas.interface_count(), 2);
        assert_eq!(atlas.resolved_count(), 2);
        assert_eq!(atlas.campaigns(), 2);
    }

    #[test]
    fn resolution_upgrades_but_never_downgrades() {
        let mut atlas = InterconnectionAtlas::new();
        // Campaign 1: unresolved with 4 candidates.
        atlas.merge(&report(vec![iface("10.0.0.1", None, false, 4)]));
        assert_eq!(atlas.resolved_count(), 0);
        // Campaign 2: resolves it.
        atlas.merge(&report(vec![iface("10.0.0.1", Some(7), false, 1)]));
        assert_eq!(atlas.resolved_count(), 1);
        // Campaign 3: a weaker (unresolved) sighting does not erase it.
        atlas.merge(&report(vec![iface("10.0.0.1", None, false, 5)]));
        assert_eq!(atlas.resolved_count(), 1);
        let entry = atlas.interface("10.0.0.1".parse().unwrap()).unwrap();
        assert_eq!(entry.verdict.facility, Some(cfs_types::FacilityId::new(7)));
        assert_eq!(entry.last_campaign, 2);
    }

    #[test]
    fn constraint_verdicts_beat_proximity_verdicts() {
        let mut atlas = InterconnectionAtlas::new();
        atlas.merge(&report(vec![iface("10.0.0.1", Some(9), true, 1)]));
        atlas.merge(&report(vec![iface("10.0.0.1", Some(2), false, 1)]));
        let entry = atlas.interface("10.0.0.1".parse().unwrap()).unwrap();
        assert_eq!(entry.verdict.facility, Some(cfs_types::FacilityId::new(2)));
        // And the reverse direction does not downgrade.
        atlas.merge(&report(vec![iface("10.0.0.1", Some(9), true, 1)]));
        let entry = atlas.interface("10.0.0.1".parse().unwrap()).unwrap();
        assert_eq!(entry.verdict.facility, Some(cfs_types::FacilityId::new(2)));
    }

    #[test]
    fn disagreements_are_tracked_and_listed() {
        let mut atlas = InterconnectionAtlas::new();
        atlas.merge(&report(vec![iface("10.0.0.1", Some(1), false, 1)]));
        atlas.merge(&report(vec![iface("10.0.0.1", Some(1), false, 1)]));
        atlas.merge(&report(vec![iface("10.0.0.1", Some(2), false, 1)]));
        let entry = atlas.interface("10.0.0.1".parse().unwrap()).unwrap();
        assert_eq!(entry.confirmations, 1);
        assert_eq!(entry.disagreements, 1);
        assert_eq!(
            atlas.contested(),
            vec!["10.0.0.1".parse::<Ipv4Addr>().unwrap()]
        );
    }

    #[test]
    fn owner_index_works() {
        let mut atlas = InterconnectionAtlas::new();
        atlas.merge(&report(vec![iface("10.0.0.1", Some(1), false, 1)]));
        assert_eq!(atlas.interfaces_of(Asn(65_000)).len(), 1);
        assert!(atlas.interfaces_of(Asn(65_001)).is_empty());
    }
}
