//! # cfs-core
//!
//! The paper's contribution: **Constrained Facility Search** (CFS).
//!
//! Given (a) traceroute reachability through the `cfs-traceroute` engine,
//! (b) the assembled public knowledge base (`cfs-kb`), and (c) alias
//! resolution (`cfs-alias`), CFS infers — for every peering interface it
//! observes — the physical colocation facility the interface sits in and
//! the engineering method of the interconnection (§4):
//!
//! 1. **Classify** each traceroute adjacency as public (an intermediate
//!    hop from confirmed IXP address space) or private (a direct
//!    AS-to-AS hop).
//! 2. **Initial facility search**: intersect the known facility sets of
//!    the near-side AS with the IXP's (public) or the far AS's (private);
//!    single facility ⇒ resolved, several ⇒ unresolved-local, none ⇒
//!    remote (confirmed by an RTT test) or missing data.
//! 3. **Alias constraints**: all interfaces of one router share one
//!    facility, so candidate sets intersect across alias sets.
//! 4. **Targeted follow-ups**: probe toward ASes whose known footprint is
//!    a small subset of the unresolved side's candidates, so every new
//!    crossing shrinks a candidate set; iterate 2–4 to convergence.
//!
//! The reverse search (§4.3) reruns the pipeline from vantage points
//! behind the far side, and the switch-proximity heuristic (§4.4) pins
//! remaining far-end fabric interfaces by facility co-occurrence.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

mod atlas;
mod engine;
mod observe;
mod proximity;
mod remote;
mod report;
mod session;
mod state;
mod telemetry;

pub use atlas::{AtlasEntry, InterconnectionAtlas};
pub use engine::{Cfs, CfsBuilder, CfsConfig, IterationStats};
pub use observe::{
    extract_observations, extract_observations_recorded, HopMeaning, Observation, Resolver,
};
pub use proximity::ProximityModel;
pub use remote::RemoteTester;
pub use report::{
    CandidateHistogram, CfsReport, ConvergenceTelemetry, DataQualityReport, InferredInterface,
    InferredLink, RouterRoleStats, CANDIDATE_BUCKET_LE,
};
pub use session::{canonical_trace, CfsSession, Delta, DeltaOutcome, QueryAnswer};
pub use state::{IfaceState, SearchOutcome, TrajectoryPoint};
pub use telemetry::{
    render_profile_json, render_trace_json, render_trace_json_with_shape, PROFILE_SCHEMA,
    TRACE_SCHEMA,
};
