//! The algorithm's output: per-interface facility verdicts, per-link
//! interconnection types, convergence history, and the router-role
//! statistics the paper reports in §5.

use std::collections::{BTreeMap, BTreeSet};
use std::net::Ipv4Addr;

use cfs_types::{Asn, FacilityId, IxpId, MetroId, PeeringKind, UnresolvedReason};

use crate::engine::IterationStats;
use crate::state::{SearchOutcome, TrajectoryPoint};

/// Upper (inclusive) bounds of the [`CandidateHistogram`] size buckets
/// for interfaces still holding several candidates; sizes above the last
/// bound land in a trailing overflow bucket.
pub const CANDIDATE_BUCKET_LE: [usize; 5] = [2, 4, 8, 16, 32];

/// Distribution of candidate-set sizes across tracked interfaces at the
/// end of one CFS iteration (the convergence signal behind Figure 7:
/// mass should drain from the wide buckets into `resolved`).
#[derive(Clone, Debug, Default, PartialEq, Eq, serde::Serialize)]
pub struct CandidateHistogram {
    /// 1-based iteration this snapshot was taken after.
    pub iteration: usize,
    /// Interfaces with no candidate set yet (unconstrained or missing
    /// data).
    pub unconstrained: usize,
    /// Interfaces down to exactly one candidate.
    pub resolved: usize,
    /// Interfaces with > 1 candidates, bucketed by
    /// [`CANDIDATE_BUCKET_LE`] plus one overflow bucket.
    pub buckets: Vec<u64>,
}

impl CandidateHistogram {
    /// An empty histogram for the given iteration.
    pub fn new(iteration: usize) -> Self {
        Self {
            iteration,
            unconstrained: 0,
            resolved: 0,
            buckets: vec![0; CANDIDATE_BUCKET_LE.len() + 1],
        }
    }

    /// Buckets one interface's current candidate-set size (`None` when
    /// no constraint has produced a set yet).
    pub fn record(&mut self, candidates: Option<usize>) {
        match candidates {
            None | Some(0) => self.unconstrained += 1,
            Some(1) => self.resolved += 1,
            Some(n) => {
                let idx = CANDIDATE_BUCKET_LE
                    .iter()
                    .position(|b| n <= *b)
                    .unwrap_or(CANDIDATE_BUCKET_LE.len());
                self.buckets[idx] += 1;
            }
        }
    }
}

/// Convergence telemetry: how candidate sets drained, globally and per
/// interface. Lives alongside [`CfsReport::resolution_curve`], which
/// summarizes the same process as one number per iteration.
#[derive(Clone, Debug, Default, PartialEq, Eq, serde::Serialize)]
pub struct ConvergenceTelemetry {
    /// One candidate-set-size histogram per iteration, in order.
    pub per_iteration: Vec<CandidateHistogram>,
    /// Narrowing trajectory of every interface whose candidate set ever
    /// changed: (iteration, size-after-change) pairs, oldest first.
    pub trajectories: BTreeMap<Ipv4Addr, Vec<TrajectoryPoint>>,
}

/// Final verdict for one observed peering interface.
#[derive(Clone, Debug, serde::Serialize)]
pub struct InferredInterface {
    /// The interface address.
    pub ip: Ipv4Addr,
    /// Corrected owner AS, when known.
    pub owner: Option<Asn>,
    /// The single inferred facility (when resolved).
    pub facility: Option<FacilityId>,
    /// Remaining candidates when not fully resolved.
    pub candidates: BTreeSet<FacilityId>,
    /// The metro, when all candidates agree on one (the paper pins ~9% of
    /// its unresolved interfaces to a single city this way).
    pub metro: Option<MetroId>,
    /// Outcome classification.
    pub outcome: SearchOutcome,
    /// Remote-peering verdict.
    pub remote: bool,
    /// IXPs over which the interface peers publicly.
    pub public_ixps: BTreeSet<IxpId>,
    /// Whether the interface was seen in private peerings.
    pub seen_private: bool,
    /// Iteration of resolution (1-based).
    pub resolved_at: Option<usize>,
    /// Whether the facility came from the switch-proximity fallback
    /// rather than constraint convergence.
    pub via_proximity: bool,
    /// Whether the candidate set was widened to metro-level fallback
    /// candidates after an empty intersection (DESIGN.md §9).
    pub widened: bool,
    /// Why the interface did not pin to one facility, `None` when
    /// resolved (the §9 reason taxonomy).
    pub unresolved_reason: Option<UnresolvedReason>,
}

/// Final verdict for one interconnection (deduplicated across traces).
#[derive(Clone, Debug, serde::Serialize)]
pub struct InferredLink {
    /// Near-side AS.
    pub near_asn: Asn,
    /// Near-side interface.
    pub near_ip: Ipv4Addr,
    /// Far-side AS, when identified.
    pub far_asn: Option<Asn>,
    /// Far-side interface (fabric address or point-to-point neighbour).
    pub far_ip: Option<Ipv4Addr>,
    /// Inferred engineering method.
    pub kind: PeeringKind,
    /// The exchange, for fabric-borne kinds.
    pub ixp: Option<IxpId>,
    /// Inferred near-side facility.
    pub near_facility: Option<FacilityId>,
    /// Inferred far-side facility.
    pub far_facility: Option<FacilityId>,
}

/// Router-level role statistics (§5: 39% of observed routers implement
/// both public and private peering; 11.9% of public-peering routers span
/// 2-3 exchanges).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, serde::Serialize)]
pub struct RouterRoleStats {
    /// Observed routers (alias sets, plus singleton interfaces).
    pub routers: usize,
    /// Routers with both public and private peerings.
    pub multi_role: usize,
    /// Routers peering publicly at two or more exchanges.
    pub routers_public: usize,
    /// Of those, routers spanning ≥ 2 exchanges.
    pub multi_ixp: usize,
}

/// What one run had to absorb to produce its verdicts: retries spent,
/// probes lost for good, circuits opened, and degraded inferences
/// (DESIGN.md §9). Built from search-observable symptoms only, so the
/// ledger reads the same whether trouble came from injected faults or
/// honestly dirty data.
#[derive(Clone, Debug, Default, PartialEq, Eq, serde::Serialize)]
pub struct DataQualityReport {
    /// Follow-up probes re-issued after a failure (retry budget spent).
    pub probes_retried: u64,
    /// Retries refused because the budget had run dry.
    pub retries_denied: u64,
    /// Probes that still carried no routing information after every
    /// retry round.
    pub failed_probes: u64,
    /// Vantage-point circuit-breaker trips over the whole run.
    pub vp_breaker_trips: u64,
    /// Interfaces whose candidates were widened to metro-level fallback
    /// sets after an empty facility intersection.
    pub widened_interfaces: u64,
    /// Single-facility verdicts withheld because the reconciled sources
    /// behind the owner's claim to that facility were contested
    /// (DESIGN.md §11). These interfaces report unresolved with a
    /// `contested_provenance` reason instead of a confident pin.
    pub contested_pins_refused: u64,
    /// Tally of unresolved-verdict reasons, keyed by
    /// [`UnresolvedReason::code`].
    pub unresolved_reasons: BTreeMap<String, u64>,
}

/// Everything the algorithm concluded.
#[derive(Clone, Debug, serde::Serialize)]
pub struct CfsReport {
    /// Per-interface verdicts.
    pub interfaces: BTreeMap<Ipv4Addr, InferredInterface>,
    /// Per-link verdicts.
    pub links: Vec<InferredLink>,
    /// Convergence history, one entry per CFS iteration.
    pub iterations: Vec<IterationStats>,
    /// Router role statistics.
    pub router_stats: RouterRoleStats,
    /// Total traceroutes issued (bootstrap + follow-ups).
    pub traces_issued: usize,
    /// Convergence telemetry (per-iteration candidate histograms and
    /// per-interface narrowing trajectories).
    pub convergence: ConvergenceTelemetry,
    /// Data-quality ledger: faults absorbed, retries spent, degraded
    /// inferences (DESIGN.md §9).
    pub data_quality: DataQualityReport,
    /// Knowledge-plane quality: how the public sources agreed under
    /// reconciliation — conflict taxonomy counts, mean agreement, and
    /// the per-source trust/claims table (DESIGN.md §11).
    pub kb_quality: cfs_kb::KbQuality,
}

impl CfsReport {
    /// Number of interfaces resolved to exactly one facility.
    pub fn resolved(&self) -> usize {
        self.interfaces
            .values()
            .filter(|i| i.facility.is_some())
            .count()
    }

    /// Number of peering interfaces tracked.
    pub fn total(&self) -> usize {
        self.interfaces.len()
    }

    /// Fraction resolved.
    pub fn resolved_fraction(&self) -> f64 {
        if self.interfaces.is_empty() {
            return 0.0;
        }
        self.resolved() as f64 / self.total() as f64
    }

    /// Interfaces not resolved to a facility but pinned to a single
    /// metro.
    pub fn city_constrained(&self) -> usize {
        self.interfaces
            .values()
            .filter(|i| i.facility.is_none() && i.metro.is_some() && !i.candidates.is_empty())
            .count()
    }

    /// Unresolved interfaces whose owner had no facility data at all.
    pub fn missing_data(&self) -> usize {
        self.interfaces
            .values()
            .filter(|i| i.outcome == SearchOutcome::MissingData)
            .count()
    }

    /// Distinct interfaces of one owner AS by peering kind (Figure 10
    /// rows). An AS's interfaces appear on the *near* side when traces
    /// leave it and on the *far* side (fabric or point-to-point
    /// addresses) when traces enter it; both count. An interface seen
    /// under several kinds lands in its most frequent one.
    pub fn interfaces_by_kind(&self, owner: Asn) -> BTreeMap<PeeringKind, usize> {
        let mut votes: BTreeMap<Ipv4Addr, BTreeMap<PeeringKind, usize>> = BTreeMap::new();
        for link in &self.links {
            if link.near_asn == owner {
                *votes
                    .entry(link.near_ip)
                    .or_default()
                    .entry(link.kind)
                    .or_default() += 1;
            }
            if link.far_asn == Some(owner) {
                if let Some(far_ip) = link.far_ip {
                    // Public kinds are re-read from the far side's own
                    // remote verdict: the near side being local says
                    // nothing about the far port.
                    let kind = if link.kind.is_public() {
                        match self.interfaces.get(&far_ip).map(|i| i.remote) {
                            Some(true) => PeeringKind::PublicRemote,
                            _ => PeeringKind::PublicLocal,
                        }
                    } else {
                        link.kind
                    };
                    *votes.entry(far_ip).or_default().entry(kind).or_default() += 1;
                }
            }
        }
        let mut out: BTreeMap<PeeringKind, usize> = BTreeMap::new();
        for (_, kinds) in votes {
            if let Some((kind, _)) = kinds
                .into_iter()
                .max_by_key(|(k, n)| (*n, std::cmp::Reverse(*k)))
            {
                *out.entry(kind).or_default() += 1;
            }
        }
        out
    }

    /// Like [`CfsReport::interfaces_by_kind`], but returning the
    /// interface addresses per kind (the experiment harness needs their
    /// inferred facilities for regional breakdowns).
    pub fn interfaces_of_owner(&self, owner: Asn) -> BTreeMap<Ipv4Addr, PeeringKind> {
        let mut votes: BTreeMap<Ipv4Addr, BTreeMap<PeeringKind, usize>> = BTreeMap::new();
        for link in &self.links {
            if link.near_asn == owner {
                *votes
                    .entry(link.near_ip)
                    .or_default()
                    .entry(link.kind)
                    .or_default() += 1;
            }
            if link.far_asn == Some(owner) {
                if let Some(far_ip) = link.far_ip {
                    let kind = if link.kind.is_public() {
                        match self.interfaces.get(&far_ip).map(|i| i.remote) {
                            Some(true) => PeeringKind::PublicRemote,
                            _ => PeeringKind::PublicLocal,
                        }
                    } else {
                        link.kind
                    };
                    *votes.entry(far_ip).or_default().entry(kind).or_default() += 1;
                }
            }
        }
        votes
            .into_iter()
            .filter_map(|(ip, kinds)| {
                kinds
                    .into_iter()
                    .max_by_key(|(k, n)| (*n, std::cmp::Reverse(*k)))
                    .map(|(kind, _)| (ip, kind))
            })
            .collect()
    }

    /// Cumulative resolved fraction per iteration (Figure 7 series).
    pub fn resolution_curve(&self) -> Vec<f64> {
        let total = self.total().max(1) as f64;
        self.iterations
            .iter()
            .map(|s| s.resolved as f64 / total)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iface(ip: &str, fac: Option<u32>) -> InferredInterface {
        InferredInterface {
            ip: ip.parse().unwrap(),
            owner: Some(Asn(65_000)),
            facility: fac.map(FacilityId::new),
            candidates: fac.map(FacilityId::new).into_iter().collect(),
            metro: None,
            outcome: if fac.is_some() {
                SearchOutcome::Resolved
            } else {
                SearchOutcome::MissingData
            },
            remote: false,
            public_ixps: BTreeSet::new(),
            seen_private: false,
            resolved_at: fac.map(|_| 1),
            via_proximity: false,
            widened: false,
            unresolved_reason: if fac.is_some() {
                None
            } else {
                Some(UnresolvedReason::NoFacilityData)
            },
        }
    }

    #[test]
    fn counters_add_up() {
        let mut interfaces = BTreeMap::new();
        for (i, fac) in [(0, Some(1)), (1, Some(2)), (2, None)] {
            let ip = format!("10.0.0.{i}");
            interfaces.insert(ip.parse().unwrap(), iface(&ip, fac));
        }
        let report = CfsReport {
            interfaces,
            links: Vec::new(),
            iterations: vec![
                IterationStats {
                    iteration: 1,
                    resolved: 1,
                    tracked: 3,
                    traces_issued: 0,
                },
                IterationStats {
                    iteration: 2,
                    resolved: 2,
                    tracked: 3,
                    traces_issued: 5,
                },
            ],
            router_stats: RouterRoleStats::default(),
            traces_issued: 5,
            convergence: ConvergenceTelemetry::default(),
            data_quality: DataQualityReport::default(),
            kb_quality: Default::default(),
        };
        assert_eq!(report.resolved(), 2);
        assert_eq!(report.total(), 3);
        assert!((report.resolved_fraction() - 2.0 / 3.0).abs() < 1e-9);
        assert_eq!(report.missing_data(), 1);
        let curve = report.resolution_curve();
        assert_eq!(curve.len(), 2);
        assert!(curve[1] > curve[0]);
    }

    #[test]
    fn resolution_curve_shape_is_pinned() {
        // Four tracked interfaces, resolved counts 1 → 2 → 4 across
        // three iterations: the curve is exactly [0.25, 0.5, 1.0] and
        // never decreases.
        let mut interfaces = BTreeMap::new();
        for i in 0..4 {
            let ip = format!("10.0.1.{i}");
            interfaces.insert(ip.parse().unwrap(), iface(&ip, Some(i)));
        }
        let iterations = [1usize, 2, 4]
            .iter()
            .enumerate()
            .map(|(i, resolved)| IterationStats {
                iteration: i + 1,
                resolved: *resolved,
                tracked: 4,
                traces_issued: 0,
            })
            .collect();
        let report = CfsReport {
            interfaces,
            links: Vec::new(),
            iterations,
            router_stats: RouterRoleStats::default(),
            traces_issued: 0,
            convergence: ConvergenceTelemetry::default(),
            data_quality: DataQualityReport::default(),
            kb_quality: Default::default(),
        };
        assert_eq!(report.resolution_curve(), vec![0.25, 0.5, 1.0]);
        let curve = report.resolution_curve();
        assert!(curve.windows(2).all(|w| w[0] <= w[1]), "must be monotone");

        // Degenerate report: no interfaces, no iterations — empty curve,
        // and the max(1) guard keeps the division finite.
        let empty = CfsReport {
            interfaces: BTreeMap::new(),
            links: Vec::new(),
            iterations: Vec::new(),
            router_stats: RouterRoleStats::default(),
            traces_issued: 0,
            convergence: ConvergenceTelemetry::default(),
            data_quality: DataQualityReport::default(),
            kb_quality: Default::default(),
        };
        assert!(empty.resolution_curve().is_empty());
    }

    #[test]
    fn candidate_histogram_buckets_sizes() {
        let mut h = CandidateHistogram::new(3);
        for size in [None, Some(0), Some(1), Some(2), Some(3), Some(33)] {
            h.record(size);
        }
        assert_eq!(h.iteration, 3);
        assert_eq!(h.unconstrained, 2);
        assert_eq!(h.resolved, 1);
        assert_eq!(h.buckets, vec![1, 1, 0, 0, 0, 1]);
    }

    #[test]
    fn interfaces_by_kind_groups_links() {
        let report = CfsReport {
            interfaces: BTreeMap::new(),
            links: vec![
                InferredLink {
                    near_asn: Asn(1),
                    near_ip: "10.0.0.1".parse().unwrap(),
                    far_asn: Some(Asn(2)),
                    far_ip: None,
                    kind: PeeringKind::PublicLocal,
                    ixp: Some(IxpId::new(0)),
                    near_facility: None,
                    far_facility: None,
                },
                InferredLink {
                    near_asn: Asn(1),
                    near_ip: "10.0.0.2".parse().unwrap(),
                    far_asn: Some(Asn(3)),
                    far_ip: None,
                    kind: PeeringKind::PrivateCrossConnect,
                    ixp: None,
                    near_facility: None,
                    far_facility: None,
                },
            ],
            iterations: Vec::new(),
            router_stats: RouterRoleStats::default(),
            traces_issued: 0,
            convergence: ConvergenceTelemetry::default(),
            data_quality: DataQualityReport::default(),
            kb_quality: Default::default(),
        };
        let by_kind = report.interfaces_by_kind(Asn(1));
        assert_eq!(by_kind[&PeeringKind::PublicLocal], 1);
        assert_eq!(by_kind[&PeeringKind::PrivateCrossConnect], 1);
        assert!(report.interfaces_by_kind(Asn(9)).is_empty());
    }
}
