//! The §3.2 augmentation channel: BGP session listings from
//! BGP-capable looking glasses feeding the search directly.

use cfs_bgp::LookingGlassBgp;
use cfs_core::Cfs;
use cfs_kb::{KbConfig, KnowledgeBase, PublicSources};
use cfs_topology::{Topology, TopologyConfig};
use cfs_traceroute::{
    deploy_vantage_points, run_campaign, CampaignLimits, Engine, Platform, VpConfig,
};

struct Fx {
    topo: Topology,
}

impl Fx {
    fn new() -> Self {
        Self {
            topo: Topology::generate(TopologyConfig::default()).unwrap(),
        }
    }

    fn run(&self, with_sessions: bool) -> cfs_core::CfsReport {
        let topo = &self.topo;
        let vps = deploy_vantage_points(topo, &VpConfig::tiny()).unwrap();
        let engine = Engine::new(topo);
        let sources = PublicSources::derive(topo, &KbConfig::default());
        let kb = KnowledgeBase::assemble(&sources, &topo.world);
        let ipasn = topo.build_ipasn_db();

        let targets: Vec<std::net::Ipv4Addr> = topo
            .ases
            .values()
            .filter(|n| n.class == cfs_types::AsClass::Cdn)
            .map(|n| topo.target_ip(n.asn).unwrap())
            .collect();
        let all_vps: Vec<_> = vps.ids().collect();
        let traces = run_campaign(
            &engine,
            &vps,
            &all_vps,
            &targets,
            0,
            &CampaignLimits::default(),
        );

        let mut session = Cfs::builder(&engine, &kb)
            .vps(&vps)
            .ipasn(&ipasn)
            .build_session()
            .unwrap();
        session.ingest(traces);
        if with_sessions {
            let lg_bgp = LookingGlassBgp::new(topo);
            for id in vps.of_platform(Platform::LookingGlass) {
                let vp = &vps.vps[*id];
                session.ingest_bgp_sessions(vp.asn, &lg_bgp.sessions(vp.router));
            }
        }
        session.into_report()
    }
}

#[test]
fn session_listings_expand_coverage() {
    let fx = Fx::new();
    let without = fx.run(false);
    let with = fx.run(true);
    assert!(
        with.total() > without.total(),
        "sessions added no interfaces: {} vs {}",
        with.total(),
        without.total()
    );
    assert!(
        with.resolved() >= without.resolved(),
        "sessions lost resolutions: {} vs {}",
        with.resolved(),
        without.resolved()
    );
}

#[test]
fn session_verdicts_are_accurate_too() {
    let fx = Fx::new();
    let report = fx.run(true);
    let topo = &fx.topo;
    let mut correct = 0usize;
    let mut wrong = 0usize;
    for iface in report.interfaces.values() {
        let Some(inferred) = iface.facility else {
            continue;
        };
        let Some(ifid) = topo.iface_by_ip(iface.ip) else {
            continue;
        };
        let Some(truth) = topo.router_facility(topo.ifaces[ifid].router) else {
            continue;
        };
        if inferred == truth {
            correct += 1;
        } else {
            wrong += 1;
        }
    }
    let checked = correct + wrong;
    assert!(checked > 100);
    assert!(
        correct * 10 >= checked * 8,
        "accuracy dropped with sessions: {correct}/{checked}"
    );
}
