//! The parallel stages must not change results: serial (`threads = 1`)
//! and parallel (`threads ∈ {2, 8}`) runs of the full pipeline over the
//! same seeded world must produce byte-identical `CfsReport` JSON.
//!
//! This holds because every measurement primitive the parallel stages
//! fan out (trace simulation, IP-ID probing, remote-peering RTT tests)
//! is a pure function of its call parameters, and every fan-out merges
//! its results in submission order.

use cfs_core::{Cfs, CfsConfig};
use cfs_kb::{KbConfig, KnowledgeBase, PublicSources};
use cfs_topology::{Topology, TopologyConfig};
use cfs_traceroute::{deploy_vantage_points, run_campaign, CampaignLimits, Engine, VpConfig};

fn report_json(topo: &Topology, threads: usize) -> String {
    let vps = deploy_vantage_points(topo, &VpConfig::tiny()).unwrap();
    let engine = Engine::new(topo);
    let sources = PublicSources::derive(topo, &KbConfig::default());
    let kb = KnowledgeBase::assemble(&sources, &topo.world);
    let ipasn = topo.build_ipasn_db();

    let targets: Vec<std::net::Ipv4Addr> = topo
        .ases
        .keys()
        .take(12)
        .map(|a| topo.target_ip(*a).unwrap())
        .collect();
    let all_vps: Vec<_> = vps.ids().collect();
    let traces = run_campaign(
        &engine,
        &vps,
        &all_vps,
        &targets,
        0,
        &CampaignLimits::default(),
    );

    let mut cfs = Cfs::builder(&engine, &kb)
        .vps(&vps)
        .ipasn(&ipasn)
        .config(CfsConfig {
            max_iterations: 8,
            ..CfsConfig::default()
        })
        .threads(threads)
        .build()
        .unwrap();
    cfs.ingest(traces);
    let report = cfs.run();
    serde_json::to_string(&report).unwrap()
}

#[test]
fn serial_and_parallel_reports_are_byte_identical() {
    // 1 vs 2 vs 8: an off-by-one in chunking shows up at small worker
    // counts, a merge-order bug at large ones (8 > the 120-interface
    // chase budget / 64-trace threshold chunk sizes in several stages).
    let topo = Topology::generate(TopologyConfig::tiny()).unwrap();
    let serial = report_json(&topo, 1);
    assert!(!serial.is_empty());
    for threads in [2, 8] {
        let parallel = report_json(&topo, threads);
        assert_eq!(
            serial, parallel,
            "thread count {threads} changed the report"
        );
    }
}

#[test]
fn rerun_at_same_thread_count_is_deterministic() {
    let topo = Topology::generate(TopologyConfig::tiny()).unwrap();
    assert_eq!(report_json(&topo, 4), report_json(&topo, 4));
}

#[test]
fn cfs_is_send() {
    fn assert_send<T: Send>(_: &T) {}
    let topo = Topology::generate(TopologyConfig::tiny()).unwrap();
    let vps = deploy_vantage_points(&topo, &VpConfig::tiny()).unwrap();
    let engine = Engine::new(&topo);
    let sources = PublicSources::derive(&topo, &KbConfig::default());
    let kb = KnowledgeBase::assemble(&sources, &topo.world);
    let ipasn = topo.build_ipasn_db();
    let cfs = Cfs::builder(&engine, &kb)
        .vps(&vps)
        .ipasn(&ipasn)
        .build()
        .unwrap();
    assert_send(&cfs);
}
