//! The parallel stages must not change results: serial (`threads = 1`)
//! and parallel (`threads ∈ {2, 8}`) runs of the full pipeline over the
//! same seeded world must produce byte-identical `CfsReport` JSON.
//!
//! This holds because every measurement primitive the parallel stages
//! fan out (trace simulation, IP-ID probing, remote-peering RTT tests)
//! is a pure function of its call parameters, and every fan-out merges
//! its results in submission order.

use std::sync::Arc;

use cfs_chaos::{FaultPlan, FaultProfile};
use cfs_core::{render_profile_json, render_trace_json, Cfs, CfsConfig};
use cfs_kb::{degrade_sources, KbConfig, KnowledgeBase, PublicSources};
use cfs_obs::{Clock, Monotonic, TraceRecorder, Virtual};
use cfs_topology::{Topology, TopologyConfig};
use cfs_traceroute::{
    deploy_vantage_points, run_campaign, CampaignLimits, ChaosEngine, Engine, VpConfig,
};

fn report_json(topo: &Topology, threads: usize) -> String {
    let (report, _) = report_and_trace(topo, threads);
    report
}

/// Runs the pipeline with a deterministic (virtual-clock) recorder
/// attached, returning both the report JSON and the rendered
/// `cfs-trace/1` document.
fn report_and_trace(topo: &Topology, threads: usize) -> (String, String) {
    faulted_report_and_trace(topo, threads, None)
}

/// Same pipeline, optionally behind an active fault plan: the probe
/// engine lies (timeouts, truncation, rate limiting) and the knowledge
/// base is assembled from a degraded source snapshot. Retries, breaker
/// bookkeeping, and metro widening must all stay thread-invariant.
fn faulted_report_and_trace(
    topo: &Topology,
    threads: usize,
    plan: Option<FaultPlan>,
) -> (String, String) {
    let (report, trace, _) = run_with_clock(topo, threads, plan, Arc::new(Virtual::new()));
    (report, trace)
}

/// The full pipeline with an arbitrary recorder clock, returning the
/// report JSON, the rendered trace, and the `cfs-profile/1` sidecar.
fn run_with_clock(
    topo: &Topology,
    threads: usize,
    plan: Option<FaultPlan>,
    clock: Arc<dyn Clock>,
) -> (String, String, String) {
    let vps = deploy_vantage_points(topo, &VpConfig::tiny()).unwrap();
    let engine = match plan {
        Some(p) => ChaosEngine::new(Engine::new(topo), p),
        None => ChaosEngine::new(Engine::new(topo), FaultPlan::new(0, FaultProfile::off())),
    };
    let clean_sources = PublicSources::derive(topo, &KbConfig::default());
    let sources = match plan {
        Some(p) => degrade_sources(&clean_sources, &p),
        None => clean_sources,
    };
    let kb = KnowledgeBase::assemble(&sources, &topo.world);
    let ipasn = topo.build_ipasn_db();

    let targets: Vec<std::net::Ipv4Addr> = topo
        .ases
        .keys()
        .take(12)
        .map(|a| topo.target_ip(*a).unwrap())
        .collect();
    let all_vps: Vec<_> = vps.ids().collect();
    let traces = run_campaign(
        &engine,
        &vps,
        &all_vps,
        &targets,
        0,
        &CampaignLimits::default(),
    );

    let recorder = Arc::new(TraceRecorder::new(clock));
    let mut session = Cfs::builder(&engine, &kb)
        .vps(&vps)
        .ipasn(&ipasn)
        .config(CfsConfig {
            max_iterations: 8,
            ..CfsConfig::default()
        })
        .threads(threads)
        .recorder(recorder.clone())
        .build_session()
        .unwrap();
    session.ingest(traces);
    let report = session.into_report();
    let snap = recorder.snapshot();
    let trace = render_trace_json(&report, &snap);
    let profile = render_profile_json(&snap);
    (serde_json::to_string(&report).unwrap(), trace, profile)
}

#[test]
fn serial_and_parallel_reports_are_byte_identical() {
    // 1 vs 2 vs 8: an off-by-one in chunking shows up at small worker
    // counts, a merge-order bug at large ones (8 > the 120-interface
    // chase budget / 64-trace threshold chunk sizes in several stages).
    let topo = Topology::generate(TopologyConfig::tiny()).unwrap();
    let serial = report_json(&topo, 1);
    assert!(!serial.is_empty());
    for threads in [2, 8] {
        let parallel = report_json(&topo, threads);
        assert_eq!(
            serial, parallel,
            "thread count {threads} changed the report"
        );
    }
}

#[test]
fn trace_json_is_byte_identical_across_thread_counts() {
    // The tentpole guarantee of cfs-obs: worker counters are recorded
    // per item (never per chunk) and the stable export carries no span
    // durations, so the whole `cfs-trace/1` document — counters,
    // histograms, span counts, convergence telemetry, digest — is
    // byte-identical however the stages were chunked.
    let topo = Topology::generate(TopologyConfig::tiny()).unwrap();
    let (serial_report, serial_trace) = report_and_trace(&topo, 1);
    assert!(serial_trace.starts_with("{\"schema\":\"cfs-trace/1\""));
    for threads in [2, 8] {
        let (report, trace) = report_and_trace(&topo, threads);
        assert_eq!(serial_report, report, "report changed at {threads} threads");
        assert_eq!(serial_trace, trace, "trace changed at {threads} threads");
    }
}

#[test]
fn faulted_runs_are_byte_identical_across_thread_counts() {
    // The chaos layer's fault decisions are pure hashes of (seed,
    // entity, time slot), and the resilience machinery they trigger —
    // retry budget spends, circuit-breaker trips, metro widening — is
    // accounted serially in submission order between parallel rounds.
    // So even a run full of injected faults must not depend on how the
    // fan-outs were chunked.
    let topo = Topology::generate(TopologyConfig::tiny()).unwrap();
    let plan = Some(FaultPlan::new(topo.config.seed, FaultProfile::standard()));
    let (serial_report, serial_trace) = faulted_report_and_trace(&topo, 1, plan);
    assert!(serial_trace.starts_with("{\"schema\":\"cfs-trace/1\""));
    // The plan must actually be biting, or this test proves nothing.
    assert!(
        serial_report.contains("\"probes_retried\":")
            && !serial_report.contains("\"probes_retried\":0,"),
        "fault plan injected no retriable probe failures"
    );
    for threads in [2, 8] {
        let (report, trace) = faulted_report_and_trace(&topo, threads, plan);
        assert_eq!(
            serial_report, report,
            "faulted report changed at {threads} threads"
        );
        assert_eq!(
            serial_trace, trace,
            "faulted trace changed at {threads} threads"
        );
    }
}

#[test]
fn conflicted_kb_runs_are_byte_identical_across_thread_counts() {
    // The ISSUE-9 determinism criterion: the dirty-KB composite
    // (staleness + manufactured source conflicts) exercises the whole
    // reconciliation layer — agreement scoring, evidence gating, and the
    // contested-pin refusals in report assembly — and none of it may
    // depend on worker chunking. The kb_quality member rides inside the
    // digested trace body, so the byte-compare covers it too.
    let topo = Topology::generate(TopologyConfig::tiny()).unwrap();
    let plan = Some(FaultPlan::new(
        topo.config.seed,
        FaultProfile::parse("stale-kb+conflict").unwrap(),
    ));
    let (serial_report, serial_trace) = faulted_report_and_trace(&topo, 1, plan);
    assert!(
        serial_trace.contains("\"kb_quality\":{\"records\":"),
        "trace body must carry the kb_quality section"
    );
    // The conflict dial must actually contest something, or this run
    // exercises nothing beyond plain stale-kb.
    assert!(
        !serial_trace.contains("\"contested\":0,"),
        "conflict profile manufactured no contested claims"
    );
    for threads in [2, 8] {
        let (report, trace) = faulted_report_and_trace(&topo, threads, plan);
        assert_eq!(
            serial_report, report,
            "conflicted report changed at {threads} threads"
        );
        assert_eq!(
            serial_trace, trace,
            "conflicted trace changed at {threads} threads"
        );
    }
}

#[test]
fn profile_sidecar_never_perturbs_the_trace() {
    // The ISSUE acceptance criterion: the deterministic trace digest is
    // byte-identical with and without duration capture. A wall-clock
    // (Monotonic) recorder accumulates real nanoseconds in the sidecar,
    // yet the rendered `cfs-trace/1` document — digest included — must
    // match the virtual-clock run exactly, and rendering the profile
    // must not perturb a re-rendered trace.
    let topo = Topology::generate(TopologyConfig::tiny()).unwrap();
    let (_, virtual_trace, virtual_profile) =
        run_with_clock(&topo, 2, None, Arc::new(Virtual::new()));
    let (_, wall_trace, wall_profile) = run_with_clock(&topo, 2, None, Arc::new(Monotonic::new()));
    assert_eq!(
        virtual_trace, wall_trace,
        "wall-clock durations leaked into the digestible trace body"
    );
    for profile in [&virtual_profile, &wall_profile] {
        assert!(
            profile.starts_with("{\"schema\":\"cfs-profile/1\""),
            "sidecar carries its own schema marker: {}",
            &profile[..60.min(profile.len())]
        );
    }
    // Same pipeline work → same span entry counts, whatever the clock.
    let doc_v = cfs_obs::ProfileDoc::parse(&virtual_profile).unwrap();
    let doc_w = cfs_obs::ProfileDoc::parse(&wall_profile).unwrap();
    assert_eq!(
        doc_v.spans.keys().collect::<Vec<_>>(),
        doc_w.spans.keys().collect::<Vec<_>>()
    );
    for (name, stats) in &doc_v.spans {
        assert_eq!(stats.count, doc_w.spans[name].count, "span {name}");
    }
}

#[test]
fn trace_diff_is_clean_across_thread_counts_and_catches_drift() {
    // Self-compare via the diff engine at every supported worker count:
    // the tool must report zero drift for traces of the same world. A
    // different topology seed must surface as counter deltas.
    let topo = Topology::generate(TopologyConfig::tiny()).unwrap();
    let (_, base_trace) = report_and_trace(&topo, 1);
    for threads in [1, 2, 8] {
        let (_, trace) = report_and_trace(&topo, threads);
        let diff = cfs_obs::diff_docs(&base_trace, &trace, 0).unwrap();
        assert!(
            !diff.is_drift(),
            "threads={threads} drifted: {}",
            diff.render_text()
        );
    }

    let other = Topology::generate(TopologyConfig::tiny().with_seed(999)).unwrap();
    let (_, other_trace) = report_and_trace(&other, 1);
    let diff = cfs_obs::diff_docs(&base_trace, &other_trace, 0).unwrap();
    assert!(diff.is_drift(), "different worlds must diff as drift");
    let cfs_obs::DocDiff::Trace(t) = &diff else {
        panic!("trace pair must produce a trace diff");
    };
    assert!(
        !t.counters_changed.is_empty(),
        "seeded drift produced no counter deltas: {}",
        diff.render_text()
    );
}

#[test]
fn rerun_at_same_thread_count_is_deterministic() {
    let topo = Topology::generate(TopologyConfig::tiny()).unwrap();
    assert_eq!(report_json(&topo, 4), report_json(&topo, 4));
}

#[test]
fn cfs_is_send() {
    fn assert_send<T: Send>(_: &T) {}
    let topo = Topology::generate(TopologyConfig::tiny()).unwrap();
    let vps = deploy_vantage_points(&topo, &VpConfig::tiny()).unwrap();
    let engine = Engine::new(&topo);
    let sources = PublicSources::derive(&topo, &KbConfig::default());
    let kb = KnowledgeBase::assemble(&sources, &topo.world);
    let ipasn = topo.build_ipasn_db();
    let cfs = Cfs::builder(&engine, &kb)
        .vps(&vps)
        .ipasn(&ipasn)
        .build()
        .unwrap();
    assert_send(&cfs);
}
