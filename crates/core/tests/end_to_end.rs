//! End-to-end exercise of the full CFS pipeline on a small world:
//! generate ground truth, derive the public view, run bootstrap
//! campaigns, execute the search, and score the verdicts against the
//! hidden truth.

use cfs_core::{Cfs, SearchOutcome};
use cfs_kb::{KbConfig, KnowledgeBase, PublicSources};
use cfs_topology::{Topology, TopologyConfig};
use cfs_traceroute::{
    deploy_vantage_points, run_campaign, CampaignLimits, Engine, Platform, VpConfig, VpSet,
};
use cfs_types::Asn;

struct Fixture {
    topo: Topology,
}

impl Fixture {
    fn new() -> Self {
        Self {
            topo: Topology::generate(TopologyConfig::default()).unwrap(),
        }
    }

    fn run_cfs(&self) -> (cfs_core::CfsReport, &Topology) {
        let topo = &self.topo;
        let vps = deploy_vantage_points(topo, &VpConfig::tiny()).unwrap();
        let engine = Engine::new(topo);
        let sources = PublicSources::derive(
            topo,
            &KbConfig {
                noc_pages: 40,
                ..Default::default()
            },
        );
        let kb = KnowledgeBase::assemble(&sources, &topo.world);
        let ipasn = topo.build_ipasn_db();

        // Bootstrap: every VP probes a handful of popular networks.
        let targets: Vec<std::net::Ipv4Addr> = topo
            .ases
            .values()
            .filter(|n| matches!(n.class, cfs_types::AsClass::Cdn | cfs_types::AsClass::Tier1))
            .map(|n| topo.target_ip(n.asn).unwrap())
            .collect();
        let all_vps: Vec<_> = vps.ids().collect();
        let traces = run_campaign(
            &engine,
            &vps,
            &all_vps,
            &targets,
            0,
            &CampaignLimits::default(),
        );

        let mut session = Cfs::builder(&engine, &kb)
            .vps(&vps)
            .ipasn(&ipasn)
            .build_session()
            .unwrap();
        session.ingest(traces);
        let report = session.into_report();
        (report, topo)
    }
}

fn facility_accuracy(report: &cfs_core::CfsReport, topo: &Topology) -> (usize, usize, usize) {
    let mut correct = 0;
    let mut wrong = 0;
    let mut same_city_wrong = 0;
    for iface in report.interfaces.values() {
        let Some(inferred) = iface.facility else {
            continue;
        };
        let Some(ifid) = topo.iface_by_ip(iface.ip) else {
            continue;
        };
        let router = topo.ifaces[ifid].router;
        let Some(truth) = topo.router_facility(router) else {
            continue;
        };
        if inferred == truth {
            correct += 1;
        } else {
            wrong += 1;
            if topo.facilities[inferred].metro == topo.facilities[truth].metro {
                same_city_wrong += 1;
            }
        }
    }
    (correct, wrong, same_city_wrong)
}

#[test]
fn cfs_resolves_interfaces_with_high_accuracy() {
    let fx = Fixture::new();
    let (report, topo) = fx.run_cfs();

    assert!(
        report.total() > 100,
        "only {} interfaces tracked",
        report.total()
    );
    assert!(
        report.resolved_fraction() > 0.35,
        "resolved fraction too low: {:.2}",
        report.resolved_fraction()
    );

    let (correct, wrong, same_city) = facility_accuracy(&report, topo);
    let checked = correct + wrong;
    assert!(checked > 50, "too few verdicts to score: {checked}");
    let accuracy = correct as f64 / checked as f64;
    assert!(
        accuracy > 0.80,
        "facility accuracy {accuracy:.2} ({correct}/{checked})"
    );
    // The paper's signature failure mode: wrong building, right city.
    let city_accuracy = (correct + same_city) as f64 / checked as f64;
    assert!(city_accuracy >= accuracy);
}

#[test]
fn convergence_curve_is_monotonic_and_frontloaded() {
    let fx = Fixture::new();
    let (report, _) = fx.run_cfs();

    let curve = report.resolution_curve();
    assert!(curve.len() >= 2, "no iterations recorded");
    for w in curve.windows(2) {
        assert!(
            w[1] >= w[0] - 1e-12,
            "resolution curve decreased: {curve:?}"
        );
    }
    // Iteration 1 (single-common-facility cases) already resolves a
    // sizeable share, as in Figure 7.
    assert!(
        curve[0] > 0.05,
        "first iteration resolved too little: {}",
        curve[0]
    );
}

#[test]
fn outcome_taxonomy_is_populated() {
    let fx = Fixture::new();
    let (report, _) = fx.run_cfs();

    let mut by_outcome = std::collections::BTreeMap::new();
    for iface in report.interfaces.values() {
        *by_outcome.entry(iface.outcome).or_insert(0usize) += 1;
    }
    assert!(
        by_outcome
            .get(&SearchOutcome::Resolved)
            .copied()
            .unwrap_or(0)
            > 0
    );
    // Incomplete public data must leave some interfaces short of a
    // verdict, as in the paper (70.65% resolved, not 100%).
    let unresolved: usize = by_outcome
        .iter()
        .filter(|(k, _)| **k != SearchOutcome::Resolved)
        .map(|(_, v)| *v)
        .sum();
    assert!(
        unresolved > 0,
        "everything resolved — incompleteness not modelled"
    );
}

#[test]
fn multi_role_routers_emerge() {
    let fx = Fixture::new();
    let (report, _) = fx.run_cfs();
    let stats = report.router_stats;
    assert!(stats.routers > 20);
    assert!(
        stats.multi_role > 0,
        "no router implements both public and private peering"
    );
}

#[test]
fn links_carry_kinds_and_some_are_public() {
    let fx = Fixture::new();
    let (report, _) = fx.run_cfs();
    assert!(!report.links.is_empty());
    let public = report.links.iter().filter(|l| l.kind.is_public()).count();
    let private = report.links.len() - public;
    assert!(public > 0, "no public links classified");
    assert!(private > 0, "no private links classified");
}

#[test]
fn platform_restriction_limits_followups() {
    let topo = Topology::generate(TopologyConfig::tiny()).unwrap();
    let vps: VpSet = deploy_vantage_points(&topo, &VpConfig::tiny()).unwrap();
    let engine = Engine::new(&topo);
    let sources = PublicSources::derive(&topo, &KbConfig::default());
    let kb = KnowledgeBase::assemble(&sources, &topo.world);
    let ipasn = topo.build_ipasn_db();

    let targets: Vec<std::net::Ipv4Addr> = topo
        .ases
        .keys()
        .take(10)
        .map(|a| topo.target_ip(*a).unwrap())
        .collect();
    let atlas_vps: Vec<_> = vps.of_platform(Platform::RipeAtlas).to_vec();
    let traces = run_campaign(
        &engine,
        &vps,
        &atlas_vps,
        &targets,
        0,
        &CampaignLimits::default(),
    );

    let mut session = Cfs::builder(&engine, &kb)
        .vps(&vps)
        .ipasn(&ipasn)
        .platforms(&[Platform::RipeAtlas])
        .build_session()
        .unwrap();
    session.ingest(traces);
    let report = session.into_report();
    // Must complete and produce a nonempty report even under restriction.
    assert!(report.total() > 0);
}

#[test]
fn fabric_interfaces_of_ground_truth_remote_members_marked_remote() {
    let fx = Fixture::new();
    let (report, topo) = fx.run_cfs();

    let mut flagged = 0usize;
    let mut remote_seen = 0usize;
    for ixp in topo.ixps.values() {
        for m in &ixp.members {
            if let Some(iface) = report.interfaces.get(&m.fabric_ip) {
                if m.remote_via.is_some() {
                    remote_seen += 1;
                    flagged += usize::from(iface.remote);
                }
            }
        }
    }
    if remote_seen >= 3 {
        assert!(
            flagged * 2 >= remote_seen,
            "remote recall too low: {flagged}/{remote_seen}"
        );
    }
}

#[test]
fn report_is_deterministic() {
    let fx = Fixture::new();
    let (a, _) = fx.run_cfs();
    let (b, _) = fx.run_cfs();
    assert_eq!(a.total(), b.total());
    assert_eq!(a.resolved(), b.resolved());
    let asn = Asn(15169);
    assert_eq!(a.interfaces_by_kind(asn), b.interfaces_by_kind(asn));
}
