//! Service-mode determinism: a resident session that converges and then
//! absorbs deltas must end in *exactly* the state a from-scratch batch
//! run over the merged inputs reaches — byte-identical report JSON and
//! identical canonical trace digests — at several worker counts, with
//! and without an active fault plan. This is the contract that lets
//! `cfsd` serve incremental answers without ever drifting from the
//! paper's batch semantics.

use std::collections::BTreeSet;
use std::net::Ipv4Addr;
use std::sync::Arc;

use cfs_chaos::{FaultPlan, FaultProfile};
use cfs_core::{canonical_trace, Cfs, CfsConfig, CfsReport, Delta};
use cfs_kb::{KbConfig, KnowledgeBase, PublicSources};
use cfs_obs::TraceRecorder;
use cfs_topology::{Topology, TopologyConfig};
use cfs_traceroute::{
    deploy_vantage_points, run_campaign, CampaignLimits, ChaosEngine, Engine, ProbeService, Trace,
    VpConfig, VpSet,
};
use cfs_types::VantagePointId;

struct World {
    topo: Topology,
    sources: PublicSources,
}

impl World {
    fn new() -> Self {
        let topo = Topology::generate(TopologyConfig::tiny()).unwrap();
        let sources = PublicSources::derive(&topo, &KbConfig::default());
        Self { topo, sources }
    }

    fn engine(&self, faults: bool) -> Box<dyn ProbeService + '_> {
        if faults {
            Box::new(ChaosEngine::new(
                Engine::new(&self.topo),
                FaultPlan::new(
                    11,
                    FaultProfile {
                        probe_timeout_pm: 150,
                        ..FaultProfile::off()
                    },
                ),
            ))
        } else {
            Box::new(Engine::new(&self.topo))
        }
    }

    fn campaign(&self, engine: &dyn ProbeService, vps: &VpSet, at_ms: u64) -> Vec<Trace> {
        let targets: Vec<Ipv4Addr> = self
            .topo
            .ases
            .keys()
            .take(12)
            .map(|a| self.topo.target_ip(*a).unwrap())
            .collect();
        let vp_ids: Vec<_> = vps.ids().collect();
        run_campaign(
            engine,
            vps,
            &vp_ids,
            &targets,
            at_ms,
            &CampaignLimits::default(),
        )
    }
}

/// Service sessions run follow-up-less (measurement-complete) configs.
fn service_config(threads: usize) -> CfsConfig {
    CfsConfig {
        followup_interfaces: 0,
        threads,
        ..CfsConfig::default()
    }
}

fn report_bytes(report: &CfsReport) -> String {
    serde_json::to_string(report).unwrap()
}

/// Builds a fresh batch session over the given inputs and converges it.
#[allow(clippy::too_many_arguments)]
fn fresh_report(
    engine: &dyn ProbeService,
    kb: &KnowledgeBase,
    vps: &VpSet,
    ipasn: &cfs_net::IpAsnDb,
    threads: usize,
    campaigns: &[Vec<Trace>],
    down: BTreeSet<VantagePointId>,
) -> CfsReport {
    let mut session = Cfs::builder(engine, kb)
        .vps(vps)
        .ipasn(ipasn)
        .config(service_config(threads))
        .vps_down(down)
        .build_session()
        .unwrap();
    for c in campaigns {
        session.ingest(c.clone());
    }
    session.into_report()
}

#[test]
fn traceroute_delta_replay_matches_fresh_batch() {
    let world = World::new();
    let vps = deploy_vantage_points(&world.topo, &VpConfig::tiny()).unwrap();
    let kb = KnowledgeBase::assemble(&world.sources, &world.topo.world);
    let ipasn = world.topo.build_ipasn_db();

    for faults in [false, true] {
        let engine = world.engine(faults);
        let batch_a = world.campaign(engine.as_ref(), &vps, 0);
        let batch_b = world.campaign(engine.as_ref(), &vps, 7_200_000);

        for threads in [1usize, 2, 8] {
            let full = fresh_report(
                engine.as_ref(),
                &kb,
                &vps,
                &ipasn,
                threads,
                &[batch_a.clone(), batch_b.clone()],
                BTreeSet::new(),
            );

            let mut session = Cfs::builder(engine.as_ref(), &kb)
                .vps(&vps)
                .ipasn(&ipasn)
                .config(service_config(threads))
                .build_session()
                .unwrap();
            session.ingest(batch_a.clone());
            session.converge();
            let outcome = session
                .apply_delta(Delta::TracerouteBatch(batch_b.clone()))
                .unwrap();
            assert_eq!(outcome.epoch, 2);
            let incremental = session.into_report();

            assert_eq!(
                report_bytes(&full),
                report_bytes(&incremental),
                "threads={threads} faults={faults}: replay diverged from batch"
            );
            assert_eq!(
                canonical_trace(&full),
                canonical_trace(&incremental),
                "threads={threads} faults={faults}: trace digests diverged"
            );
        }
    }
}

#[test]
fn kb_flip_dirties_strict_subset_and_matches_fresh_batch() {
    let world = World::new();
    let vps = deploy_vantage_points(&world.topo, &VpConfig::tiny()).unwrap();
    let kb = KnowledgeBase::assemble(&world.sources, &world.topo.world);
    let ipasn = world.topo.build_ipasn_db();
    let engine = Engine::new(&world.topo);
    let batch = world.campaign(&engine, &vps, 0);

    // A 1-record epoch flip: an AS the search actually constrained loses
    // one listed facility. Pick it from the converged report's owners so
    // the delta provably intersects the constraint graph.
    let baseline = fresh_report(
        &engine,
        &kb,
        &vps,
        &ipasn,
        1,
        std::slice::from_ref(&batch),
        BTreeSet::new(),
    );
    let observed_owners: BTreeSet<_> = baseline
        .interfaces
        .values()
        .filter_map(|i| i.owner)
        .collect();
    // The assembled footprint is pdb ∪ NOC, so scrub the facility from
    // both sources and keep looking until the merged footprint really
    // shrinks.
    let (asn, removed, kb2) = observed_owners
        .iter()
        .find_map(|asn| {
            let rec = world.sources.pdb_networks.get(asn)?;
            if rec.facilities.len() < 2 {
                return None;
            }
            let victim = rec.facilities[0];
            let mut sources2 = world.sources.clone();
            let rec2 = sources2.pdb_networks.get_mut(asn).unwrap();
            rec2.facilities.retain(|f| *f != victim);
            if let Some(page) = sources2.noc_pages.get_mut(asn) {
                page.facilities.retain(|f| *f != victim);
            }
            let kb2 = KnowledgeBase::assemble(&sources2, &world.topo.world);
            (kb2.facilities_of_as(*asn) != kb.facilities_of_as(*asn))
                .then(|| (*asn, victim, Arc::new(kb2)))
        })
        .expect("some observed AS has a removable facility");

    for threads in [1usize, 2, 8] {
        let full = fresh_report(
            &engine,
            &kb2,
            &vps,
            &ipasn,
            threads,
            std::slice::from_ref(&batch),
            BTreeSet::new(),
        );

        let recorder = Arc::new(TraceRecorder::deterministic());
        let mut session = Cfs::builder(&engine, &kb)
            .vps(&vps)
            .ipasn(&ipasn)
            .config(service_config(threads))
            .recorder(recorder.clone())
            .build_session()
            .unwrap();
        session.ingest(batch.clone());
        session.converge();
        let outcome = session
            .apply_delta(Delta::KbEpochFlip(kb2.clone()))
            .unwrap();

        // The acceptance assertion: a 1-record KB delta re-converges
        // strictly fewer interfaces than the session tracks, and the
        // serve.* counters say the same thing.
        assert!(
            outcome.dirty > 0,
            "flip of {asn:?}/{removed:?} dirtied nothing"
        );
        assert!(
            outcome.reconverged < outcome.total,
            "1-record delta swept the world: {} of {}",
            outcome.reconverged,
            outcome.total
        );
        let snap = recorder.snapshot();
        assert_eq!(
            snap.counters.get("serve.dirty_ifaces").copied(),
            Some(outcome.dirty as u64)
        );
        assert_eq!(
            snap.counters.get("serve.reconverged").copied(),
            Some(outcome.reconverged as u64)
        );
        assert!(
            snap.counters["serve.reconverged"] < full.total() as u64,
            "counter claims a full sweep"
        );

        let incremental = session.into_report();
        assert_eq!(
            report_bytes(&full),
            report_bytes(&incremental),
            "threads={threads}: KB flip diverged from fresh batch under the new epoch"
        );
        assert_eq!(canonical_trace(&full), canonical_trace(&incremental));
    }
}

#[test]
fn vp_status_delta_matches_fresh_batch_with_pool_exclusion() {
    let world = World::new();
    let vps = deploy_vantage_points(&world.topo, &VpConfig::tiny()).unwrap();
    let kb = KnowledgeBase::assemble(&world.sources, &world.topo.world);
    let ipasn = world.topo.build_ipasn_db();
    let engine = Engine::new(&world.topo);
    let batch = world.campaign(&engine, &vps, 0);
    let victim = vps.ids().next().unwrap();

    for threads in [1usize, 2, 8] {
        let full = fresh_report(
            &engine,
            &kb,
            &vps,
            &ipasn,
            threads,
            std::slice::from_ref(&batch),
            BTreeSet::from([victim]),
        );

        let mut session = Cfs::builder(&engine, &kb)
            .vps(&vps)
            .ipasn(&ipasn)
            .config(service_config(threads))
            .build_session()
            .unwrap();
        session.ingest(batch.clone());
        session.converge();
        session
            .apply_delta(Delta::VpStatusChange {
                vp: victim,
                up: false,
            })
            .unwrap();
        let incremental = session.into_report();

        assert_eq!(
            report_bytes(&full),
            report_bytes(&incremental),
            "threads={threads}: VP-down delta diverged from a fresh run excluding it"
        );
        assert_eq!(canonical_trace(&full), canonical_trace(&incremental));
    }
}

#[test]
fn followup_config_delta_replays_full_batch() {
    // Follow-up-driven configurations have no iteration-1 fixed point,
    // so apply_delta falls back to a full deterministic replay over the
    // merged external inputs — discarding the previous run's follow-up
    // probes, which the replay re-issues itself. The contract is the
    // same as the incremental path: byte-identical to a fresh batch run.
    let world = World::new();
    let vps = deploy_vantage_points(&world.topo, &VpConfig::tiny()).unwrap();
    let kb = KnowledgeBase::assemble(&world.sources, &world.topo.world);
    let ipasn = world.topo.build_ipasn_db();
    let engine = Engine::new(&world.topo);

    let batch_a = world.campaign(&engine, &vps, 0);
    let batch_b = world.campaign(&engine, &vps, 7_200_000);
    let followup_cfg = |threads| CfsConfig {
        followup_interfaces: 24,
        threads,
        ..CfsConfig::default()
    };

    for threads in [1usize, 2, 8] {
        let mut batch = Cfs::builder(&engine, &kb)
            .vps(&vps)
            .ipasn(&ipasn)
            .config(followup_cfg(threads))
            .build_session()
            .unwrap();
        batch.ingest(batch_a.clone());
        batch.ingest(batch_b.clone());
        let full = batch.into_report();

        let mut session = Cfs::builder(&engine, &kb)
            .vps(&vps)
            .ipasn(&ipasn)
            .config(followup_cfg(threads))
            .build_session()
            .unwrap();
        session.ingest(batch_a.clone());
        session.converge();
        let outcome = session
            .apply_delta(Delta::TracerouteBatch(batch_b.clone()))
            .unwrap();
        assert_eq!(outcome.epoch, 2);
        assert_eq!(
            outcome.reconverged, outcome.total,
            "the replay path re-converges everything"
        );
        let replayed = session.into_report();

        assert_eq!(
            report_bytes(&full),
            report_bytes(&replayed),
            "threads={threads}: follow-up replay diverged from batch"
        );
        assert_eq!(
            canonical_trace(&full),
            canonical_trace(&replayed),
            "threads={threads}: trace digests diverged"
        );
    }
}

#[test]
fn session_queries_answer_from_the_cached_report() {
    let world = World::new();
    let vps = deploy_vantage_points(&world.topo, &VpConfig::tiny()).unwrap();
    let kb = KnowledgeBase::assemble(&world.sources, &world.topo.world);
    let ipasn = world.topo.build_ipasn_db();
    let engine = Engine::new(&world.topo);

    let mut session = Cfs::builder(&engine, &kb)
        .vps(&vps)
        .ipasn(&ipasn)
        .config(service_config(1))
        .build_session()
        .unwrap();
    session.ingest(world.campaign(&engine, &vps, 0));
    assert_eq!(session.epoch(), 0);
    session.converge();
    assert_eq!(session.epoch(), 1);

    let report = session.report().unwrap();
    let (resolved_ip, iface) = report
        .interfaces
        .iter()
        .find(|(_, i)| i.facility.is_some() && !i.via_proximity && !i.widened)
        .map(|(ip, i)| (*ip, i.clone()))
        .expect("some interface resolves");
    let answer = session.query(resolved_ip);
    assert_eq!(answer.facility, iface.facility);
    assert_eq!(answer.owner, iface.owner);
    assert_eq!(answer.candidates, 1);
    assert_eq!(answer.epoch, 1);
    assert!((answer.confidence - 0.95).abs() < 1e-9);
    assert_ne!(answer.method, "unknown");

    // An address the search never tracked: zero-confidence missing-data.
    let missing = session.query("203.0.113.200".parse().unwrap());
    assert_eq!(missing.candidates, 0);
    assert_eq!(missing.confidence, 0.0);
    assert_eq!(missing.method, "unknown");

    // converge() is idempotent and run()-equivalent.
    let again = report_bytes(session.converge());
    let mut batch = Cfs::builder(&engine, &kb)
        .vps(&vps)
        .ipasn(&ipasn)
        .config(service_config(1))
        .build()
        .unwrap();
    batch.ingest(world.campaign(&engine, &vps, 0));
    assert_eq!(report_bytes(&batch.run()), again);
}
