//! Property tests for Step-1 observation extraction: arbitrary hop lists
//! must never panic, and every extracted observation must be anchored in
//! the trace it came from.

use std::collections::BTreeMap;
use std::net::Ipv4Addr;

use cfs_core::{extract_observations, Resolver};
use cfs_kb::{KbConfig, KnowledgeBase, PublicSources};
use cfs_topology::{Topology, TopologyConfig};
use cfs_traceroute::{Hop, Trace};
use cfs_types::{Asn, LinkClass};
use proptest::prelude::*;

fn fixture() -> (Topology, KnowledgeBase) {
    let topo = Topology::generate(TopologyConfig::tiny()).unwrap();
    let src = PublicSources::derive(&topo, &KbConfig::default());
    let kb = KnowledgeBase::assemble(&src, &topo.world);
    (topo, kb)
}

fn trace_of(hops: Vec<Hop>) -> Trace {
    Trace {
        vp: cfs_types::VantagePointId::new(0),
        src_asn: Asn(64_500),
        target: "198.51.100.1".parse().unwrap(),
        at_ms: 0,
        hops,
        reached: false,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Arbitrary hop lists (random addresses, random stars, random
    /// mappings) extract without panicking, and every observation points
    /// at addresses that actually appear, adjacent and in order, in the
    /// trace.
    #[test]
    fn observations_are_anchored_in_the_trace(
        raw_hops in proptest::collection::vec(
            proptest::option::weighted(0.8, any::<u32>()),
            0..12
        ),
        mappings in proptest::collection::btree_map(any::<u32>(), 1u32..5000, 0..12),
    ) {
        let (topo, kb) = fixture();
        let _ = &topo;
        let mut corrected: BTreeMap<Ipv4Addr, Asn> =
            mappings.into_iter().map(|(ip, asn)| (Ipv4Addr::from(ip), Asn(asn))).collect();
        // Also map half the hop addresses so adjacencies can form.
        for (i, h) in raw_hops.iter().enumerate() {
            if let Some(ip) = h {
                if i % 2 == 0 {
                    corrected.insert(Ipv4Addr::from(*ip), Asn(100 + (i as u32 % 3)));
                }
            }
        }
        let hops: Vec<Hop> = raw_hops
            .iter()
            .map(|h| Hop { ip: h.map(Ipv4Addr::from), rtt_ms: 1.0 })
            .collect();
        let trace = trace_of(hops.clone());
        let resolver = Resolver::new(&kb, &corrected);
        let observations = extract_observations(&trace, &resolver);

        let ips: Vec<Option<Ipv4Addr>> = hops.iter().map(|h| h.ip).collect();
        for obs in &observations {
            // Some occurrence of near_ip in the trace anchors the
            // observation (addresses can repeat; any adjacent position
            // will do).
            let anchored = ips.iter().enumerate().any(|(i, h)| {
                *h == Some(obs.near_ip) && ips.get(i + 1).copied().flatten() == obs.far_ip
            });
            prop_assert!(anchored, "observation not anchored: {obs:?}");
            match obs.class {
                LinkClass::Private => {
                    // Different (corrected) owners on each side.
                    prop_assert_ne!(Some(obs.near_asn), obs.far_asn);
                }
                LinkClass::Public { ixp } => {
                    // The middle hop is fabric space of that exchange.
                    prop_assert_eq!(kb.ixp_of_ip(obs.far_ip.unwrap()), Some(ixp));
                }
            }
        }
    }

    /// Extraction is a pure function of (trace, resolver): same inputs,
    /// same observations.
    #[test]
    fn extraction_is_deterministic(
        raw_hops in proptest::collection::vec(
            proptest::option::weighted(0.9, any::<u32>()),
            0..10
        ),
    ) {
        let (_topo, kb) = fixture();
        let corrected: BTreeMap<Ipv4Addr, Asn> = raw_hops
            .iter()
            .flatten()
            .enumerate()
            .map(|(i, ip)| (Ipv4Addr::from(*ip), Asn(1 + (i as u32 % 4))))
            .collect();
        let hops: Vec<Hop> = raw_hops
            .iter()
            .map(|h| Hop { ip: h.map(Ipv4Addr::from), rtt_ms: 1.0 })
            .collect();
        let trace = trace_of(hops);
        let resolver = Resolver::new(&kb, &corrected);
        let a = extract_observations(&trace, &resolver);
        let b = extract_observations(&trace, &resolver);
        prop_assert_eq!(a, b);
    }
}
