//! Property tests for the resilience layer: under *arbitrary* fault
//! plans — any mix of VP outages, probe timeouts, silent routers, rate
//! limiting, truncation, loops, and knowledge-base rot — the pipeline
//! must never panic, and every interface it observed must still leave
//! with a verdict: a facility, or a typed unresolved reason.

use std::sync::OnceLock;

use cfs_chaos::{FaultPlan, FaultProfile};
use cfs_core::{Cfs, CfsConfig, SearchOutcome};
use cfs_kb::{degrade_sources, KbConfig, KnowledgeBase, PublicSources};
use cfs_net::IpAsnDb;
use cfs_topology::{Topology, TopologyConfig};
use cfs_traceroute::{
    deploy_vantage_points, run_campaign, CampaignLimits, ChaosEngine, Engine, Trace, VpConfig,
    VpSet,
};
use proptest::prelude::*;

struct Fixture {
    topo: Topology,
    vps: VpSet,
    sources: PublicSources,
    ipasn: IpAsnDb,
}

/// One shared world: the property varies the fault plan, not the
/// topology, so the expensive generation happens once.
fn fixture() -> &'static Fixture {
    static FIX: OnceLock<Fixture> = OnceLock::new();
    FIX.get_or_init(|| {
        let topo = Topology::generate(TopologyConfig::tiny()).unwrap();
        let vps = deploy_vantage_points(&topo, &VpConfig::tiny()).unwrap();
        let sources = PublicSources::derive(&topo, &KbConfig::default());
        let ipasn = topo.build_ipasn_db();
        Fixture {
            topo,
            vps,
            sources,
            ipasn,
        }
    })
}

/// A fast configuration: the property needs many full runs.
fn small_cfg() -> CfsConfig {
    CfsConfig {
        max_iterations: 6,
        followup_interfaces: 12,
        ..CfsConfig::default()
    }
}

fn bootstrap(engine: &ChaosEngine<'_>, fix: &Fixture) -> Vec<Trace> {
    let targets: Vec<std::net::Ipv4Addr> = fix
        .topo
        .ases
        .keys()
        .take(8)
        .map(|a| fix.topo.target_ip(*a).unwrap())
        .collect();
    let all_vps: Vec<_> = fix.vps.ids().collect();
    run_campaign(
        engine,
        &fix.vps,
        &all_vps,
        &targets,
        0,
        &CampaignLimits::default(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The acceptance property of the chaos tentpole: no fault plan can
    /// make CFS panic, and every observed interface gets exactly one of
    /// a facility or a typed unresolved reason — never silence.
    ///
    /// Rates run up to 40% per dimension — far past any plausible real
    /// campaign. (The vendored proptest has no `prop_map`, so the
    /// profile's fields are drawn individually.)
    #[test]
    fn cfs_survives_arbitrary_fault_plans(
        seed in any::<u64>(),
        vp_outage_pm in 0u32..400,
        outage_window_ms in 1u64..600_000,
        probe_timeout_pm in 0u32..400,
        router_silent_pm in 0u32..200,
        rate_limit_episode_pm in 0u32..400,
        rate_limit_drop_pm in 0u32..=1000,
        rate_limit_slot_ms in 1u64..120_000,
        truncate_pm in 0u32..300,
        loop_pm in 0u32..300,
        kb_member_lag_pm in 0u32..400,
        kb_facility_loss_pm in 0u32..300,
        kb_conflict_pm in 0u32..400,
        kb_refresh_window_ms in 0u64..172_800_000,
    ) {
        let fix = fixture();
        let profile = FaultProfile {
            vp_outage_pm,
            outage_window_ms,
            probe_timeout_pm,
            router_silent_pm,
            rate_limit_episode_pm,
            rate_limit_drop_pm,
            rate_limit_slot_ms,
            truncate_pm,
            loop_pm,
            kb_member_lag_pm,
            kb_facility_loss_pm,
            kb_conflict_pm,
            kb_refresh_window_ms,
        };
        let plan = FaultPlan::new(seed, profile);
        let engine = ChaosEngine::new(Engine::new(&fix.topo), plan);
        let dirty = degrade_sources(&fix.sources, &plan);
        let kb = KnowledgeBase::assemble(&dirty, &fix.topo.world);
        let traces = bootstrap(&engine, fix);

        let mut session = Cfs::builder(&engine, &kb)
            .vps(&fix.vps)
            .ipasn(&fix.ipasn)
            .config(small_cfg())
            .build_session()
            .unwrap();
        session.ingest(traces);
        let report = session.into_report();

        for iface in report.interfaces.values() {
            match iface.outcome {
                SearchOutcome::Resolved => {
                    prop_assert!(iface.facility.is_some(),
                        "{}: resolved without a facility", iface.ip);
                    prop_assert!(iface.unresolved_reason.is_none(),
                        "{}: resolved but carries a reason", iface.ip);
                }
                _ => prop_assert!(iface.unresolved_reason.is_some(),
                    "{}: unresolved ({:?}) without a reason", iface.ip, iface.outcome),
            }
        }
        // The tallies in the data-quality section cover exactly the
        // unresolved population.
        let unresolved = report.interfaces.values()
            .filter(|i| i.outcome != SearchOutcome::Resolved)
            .count() as u64;
        let tallied: u64 = report.data_quality.unresolved_reasons.values().sum();
        prop_assert_eq!(tallied, unresolved);
    }
}
