//! Scoring CFS verdicts against the validation channels — the Figure 9
//! machinery: accuracy broken down by validation source and inferred
//! link type, at facility and city granularity.

use std::collections::BTreeMap;
use std::net::Ipv4Addr;

use cfs_core::CfsReport;
use cfs_types::PeeringKind;

use crate::oracle::{ValidationOracles, ValidationSource};

/// Counters for one (source, link-kind) cell of Figure 9.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Bucket {
    /// Facility-level comparisons performed.
    pub checked: usize,
    /// Facility-level matches.
    pub matched: usize,
    /// Metro-level comparisons performed.
    pub metro_checked: usize,
    /// Metro-level matches.
    pub metro_matched: usize,
    /// Remote-classification comparisons.
    pub remote_checked: usize,
    /// Remote-classification matches.
    pub remote_matched: usize,
}

impl Bucket {
    /// Facility-level accuracy, `None` when nothing was checked.
    pub fn accuracy(&self) -> Option<f64> {
        (self.checked > 0).then(|| self.matched as f64 / self.checked as f64)
    }

    /// Metro-level accuracy.
    pub fn metro_accuracy(&self) -> Option<f64> {
        (self.metro_checked > 0).then(|| self.metro_matched as f64 / self.metro_checked as f64)
    }
}

/// The full validation scorecard.
#[derive(Clone, Debug, Default)]
pub struct ValidationReport {
    /// Per (source, inferred kind) cells.
    pub cells: BTreeMap<(ValidationSource, PeeringKind), Bucket>,
}

impl ValidationReport {
    /// Aggregated bucket for one source across kinds.
    pub fn by_source(&self, source: ValidationSource) -> Bucket {
        let mut total = Bucket::default();
        for ((s, _), b) in &self.cells {
            if *s == source {
                merge(&mut total, b);
            }
        }
        total
    }

    /// Aggregated bucket over everything.
    pub fn overall(&self) -> Bucket {
        let mut total = Bucket::default();
        for b in self.cells.values() {
            merge(&mut total, b);
        }
        total
    }
}

fn merge(into: &mut Bucket, from: &Bucket) {
    into.checked += from.checked;
    into.matched += from.matched;
    into.metro_checked += from.metro_checked;
    into.metro_matched += from.metro_matched;
    into.remote_checked += from.remote_checked;
    into.remote_matched += from.remote_matched;
}

/// Scores a CFS report against the oracles.
///
/// Only *resolved* interfaces are scored at facility level (the paper
/// validates its inferences, not its abstentions); remote classification
/// is scored wherever the IXP-website channel annotates it.
pub fn score_report(
    report: &CfsReport,
    oracles: &ValidationOracles<'_>,
    topo: &cfs_topology::Topology,
) -> ValidationReport {
    // Dominant inferred kind per interface (for bucketing).
    let mut kind_of: BTreeMap<Ipv4Addr, PeeringKind> = BTreeMap::new();
    let mut kind_votes: BTreeMap<Ipv4Addr, BTreeMap<PeeringKind, usize>> = BTreeMap::new();
    for link in &report.links {
        *kind_votes
            .entry(link.near_ip)
            .or_default()
            .entry(link.kind)
            .or_default() += 1;
        if let Some(far) = link.far_ip {
            *kind_votes
                .entry(far)
                .or_default()
                .entry(link.kind)
                .or_default() += 1;
        }
    }
    for (ip, votes) in kind_votes {
        if let Some((kind, _)) = votes
            .into_iter()
            .max_by_key(|(k, n)| (*n, std::cmp::Reverse(*k)))
        {
            kind_of.insert(ip, kind);
        }
    }

    let mut out = ValidationReport::default();
    for (ip, iface) in &report.interfaces {
        let kind = kind_of.get(ip).copied().unwrap_or(PeeringKind::PublicLocal);
        for answer in oracles.answers(*ip) {
            let bucket = out.cells.entry((answer.source, kind)).or_default();

            if let (Some(inferred), Some(truth)) = (iface.facility, answer.facility) {
                bucket.checked += 1;
                bucket.matched += usize::from(inferred == truth);
                // City-level comparison rides along.
                let inferred_metro = topo.facilities[inferred].metro;
                let truth_metro = topo.facilities[truth].metro;
                bucket.metro_checked += 1;
                bucket.metro_matched += usize::from(inferred_metro == truth_metro);
            } else if let (Some(inferred), Some(truth_metro), None) =
                (iface.facility, answer.metro, answer.facility)
            {
                // Metro-granularity channel (community metro tags).
                bucket.metro_checked += 1;
                bucket.metro_matched += usize::from(topo.facilities[inferred].metro == truth_metro);
            }

            if let Some(truth_remote) = answer.remote {
                bucket.remote_checked += 1;
                bucket.remote_matched += usize::from(iface.remote == truth_remote);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfs_core::Cfs;
    use cfs_kb::{KbConfig, KnowledgeBase, PublicSources};
    use cfs_topology::{Topology, TopologyConfig};
    use cfs_traceroute::{deploy_vantage_points, run_campaign, CampaignLimits, Engine, VpConfig};

    /// Full pipeline, then Figure 9 scoring.
    fn run() -> (Topology, ValidationReport) {
        let topo = Topology::generate(TopologyConfig::default()).unwrap();
        let vps = deploy_vantage_points(&topo, &VpConfig::tiny()).unwrap();
        let engine = Engine::new(&topo);
        let sources = PublicSources::derive(
            &topo,
            &KbConfig {
                noc_pages: 40,
                ..Default::default()
            },
        );
        let kb = KnowledgeBase::assemble(&sources, &topo.world);
        let ipasn = topo.build_ipasn_db();

        let targets: Vec<std::net::Ipv4Addr> = topo
            .ases
            .values()
            .filter(|n| matches!(n.class, cfs_types::AsClass::Cdn | cfs_types::AsClass::Tier1))
            .map(|n| topo.target_ip(n.asn).unwrap())
            .collect();
        let all_vps: Vec<_> = vps.ids().collect();
        let traces = run_campaign(
            &engine,
            &vps,
            &all_vps,
            &targets,
            0,
            &CampaignLimits::default(),
        );

        let mut session = Cfs::builder(&engine, &kb)
            .vps(&vps)
            .ipasn(&ipasn)
            .build_session()
            .expect("score: CFS dependencies are always set");
        session.ingest(traces);
        let report = session.into_report();

        let oracles = ValidationOracles::standard(&topo, &sources);
        let scored = score_report(&report, &oracles, &topo);
        (topo, scored)
    }

    #[test]
    fn validation_finds_coverage_and_high_accuracy() {
        let (_topo, scored) = run();
        let overall = scored.overall();
        assert!(
            overall.checked > 10,
            "validation coverage too thin: {}",
            overall.checked
        );
        let acc = overall.accuracy().unwrap();
        assert!(acc > 0.8, "overall validated accuracy {acc:.2}");
        // City-level accuracy dominates facility-level (the paper's
        // misses land in the right city).
        let metro_acc = overall.metro_accuracy().unwrap();
        assert!(
            metro_acc >= acc - 1e-9,
            "metro {metro_acc:.2} < facility {acc:.2}"
        );
    }

    #[test]
    fn multiple_sources_contribute() {
        let (_topo, scored) = run();
        let sources_with_coverage = ValidationSource::ALL
            .iter()
            .filter(|s| {
                let b = scored.by_source(**s);
                b.checked + b.metro_checked + b.remote_checked > 0
            })
            .count();
        assert!(
            sources_with_coverage >= 3,
            "only {sources_with_coverage} sources fired"
        );
    }

    #[test]
    fn bucket_accuracy_handles_empty() {
        let b = Bucket::default();
        assert_eq!(b.accuracy(), None);
        assert_eq!(b.metro_accuracy(), None);
    }
}
