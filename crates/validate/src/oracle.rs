//! The four validation channels and their coverage models.

use std::collections::{BTreeMap, BTreeSet};
use std::net::Ipv4Addr;

use cfs_bgp::{CommunityDictionary, IngressTag};
use cfs_kb::PublicSources;
use cfs_topology::{DnsStyle, Topology};
use cfs_types::{AsClass, Asn, FacilityId, MetroId};

/// Which channel produced a ground-truth claim.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ValidationSource {
    /// Private communication with two CDN operators (§6).
    DirectFeedback,
    /// Ingress-tagging BGP communities of four transit providers.
    BgpCommunities,
    /// Per-operator DNS naming conventions (seven operators).
    DnsRecords,
    /// Member directories of the detailed IXP websites.
    IxpWebsites,
}

impl ValidationSource {
    /// All sources in Figure 9 order.
    pub const ALL: [ValidationSource; 4] = [
        Self::DirectFeedback,
        Self::BgpCommunities,
        Self::DnsRecords,
        Self::IxpWebsites,
    ];

    /// Short label for reports.
    pub fn label(self) -> &'static str {
        match self {
            Self::DirectFeedback => "direct-feedback",
            Self::BgpCommunities => "bgp-communities",
            Self::DnsRecords => "dns-records",
            Self::IxpWebsites => "ixp-websites",
        }
    }
}

impl std::fmt::Display for ValidationSource {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// One ground-truth claim about an interface.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OracleAnswer {
    /// The claiming channel.
    pub source: ValidationSource,
    /// Facility-level claim, when the channel speaks at that granularity.
    pub facility: Option<FacilityId>,
    /// Metro-level claim (facility claims imply one; community metro tags
    /// provide only this).
    pub metro: Option<MetroId>,
    /// Remote-peering claim (detailed IXP sites only).
    pub remote: Option<bool>,
}

/// The assembled validation channels.
pub struct ValidationOracles<'t> {
    topo: &'t Topology,
    feedback_ases: BTreeSet<Asn>,
    dict: CommunityDictionary,
    dict_providers: BTreeSet<Asn>,
    dns_operators: BTreeSet<Asn>,
    dns_code_index: BTreeMap<String, FacilityId>,
    site_ports: BTreeMap<Ipv4Addr, (Option<FacilityId>, bool)>,
}

impl<'t> ValidationOracles<'t> {
    /// Builds the channels the paper used: feedback from two CDNs,
    /// community dictionaries from four transit providers, DNS
    /// conventions from up to seven facility-coding operators, and the
    /// detailed IXP websites from the public sources.
    pub fn standard(topo: &'t Topology, sources: &PublicSources) -> Self {
        let feedback_ases: BTreeSet<Asn> = topo
            .ases
            .values()
            .filter(|n| n.class == AsClass::Cdn)
            .map(|n| n.asn)
            .take(2)
            .collect();

        let dict_providers: BTreeSet<Asn> = [2914u32, 174, 3356, 1299]
            .into_iter()
            .map(Asn)
            .filter(|a| topo.ases.contains_key(a))
            .collect();
        let providers: Vec<Asn> = dict_providers.iter().copied().collect();
        // ~109 values across 4 providers at paper scale: cap facility
        // enumeration per provider.
        let dict = CommunityDictionary::build(topo, &providers, 15);

        let dns_operators: BTreeSet<Asn> = topo
            .ases
            .values()
            .filter(|n| n.dns_style == DnsStyle::FacilityCoded)
            .map(|n| n.asn)
            .take(7)
            .collect();
        let dns_code_index: BTreeMap<String, FacilityId> = topo
            .facilities
            .iter()
            .map(|(id, f)| (f.dns_code.clone(), id))
            .collect();

        let mut site_ports = BTreeMap::new();
        for site in sources.ixp_sites.values().filter(|s| s.detailed) {
            for m in &site.members {
                if let Some(remote) = m.remote {
                    // Facility claims only validate local ports: for
                    // remote members the site lists the *reseller's*
                    // port, not the member's router (§6).
                    let fac = if remote { None } else { m.facility };
                    site_ports.insert(m.fabric_ip, (fac, remote));
                }
            }
        }

        Self {
            topo,
            feedback_ases,
            dict,
            dict_providers,
            dns_operators,
            dns_code_index,
            site_ports,
        }
    }

    /// The community dictionary (exposed for the experiment harness).
    pub fn community_dictionary(&self) -> &CommunityDictionary {
        &self.dict
    }

    /// Number of interfaces the IXP-website channel covers.
    pub fn site_coverage(&self) -> usize {
        self.site_ports.len()
    }

    /// The ground-truth facility and metro of an interface (used
    /// internally by channels that genuinely know it).
    fn truth_of(&self, ip: Ipv4Addr) -> Option<(Asn, Option<FacilityId>, Option<MetroId>)> {
        let ifid = self.topo.iface_by_ip(ip)?;
        let iface = &self.topo.ifaces[ifid];
        let router = &self.topo.routers[iface.router];
        let facility = router.location.facility();
        let metro = facility.map(|f| self.topo.facilities[f].metro);
        Some((iface.asn, facility, metro))
    }

    /// Every claim the four channels can make about `ip`.
    pub fn answers(&self, ip: Ipv4Addr) -> Vec<OracleAnswer> {
        let mut out = Vec::new();
        let Some((owner, facility, metro)) = self.truth_of(ip) else {
            return out;
        };

        // --- Direct feedback: the two CDNs validate their own side only.
        if self.feedback_ases.contains(&owner) {
            out.push(OracleAnswer {
                source: ValidationSource::DirectFeedback,
                facility,
                metro,
                remote: None,
            });
        }

        // --- BGP communities: a provider's ingress router carries the
        // facility (or at least metro) tag if the dictionary enumerates it.
        if self.dict_providers.contains(&owner) {
            if let Some(fac) = facility {
                let tags = self.dict.tags_for_ingress(self.topo, owner, fac);
                let mut fac_claim = None;
                let mut metro_claim = None;
                for tag in tags {
                    match self.dict.decode(tag) {
                        Some(IngressTag::Facility(f)) => fac_claim = Some(f),
                        Some(IngressTag::Metro(m)) => metro_claim = Some(m),
                        None => {}
                    }
                }
                if fac_claim.is_some() || metro_claim.is_some() {
                    out.push(OracleAnswer {
                        source: ValidationSource::BgpCommunities,
                        facility: fac_claim,
                        metro: metro_claim.or(metro),
                        remote: None,
                    });
                }
            }
        }

        // --- DNS conventions: parse the facility code out of the
        // hostname. Stale names yield a *wrong but confident* claim —
        // the noise the paper warns about [62].
        if self.dns_operators.contains(&owner) {
            let ifid = self.topo.iface_by_ip(ip).expect("checked above");
            if let Some(name) = &self.topo.ifaces[ifid].dns_name {
                for label in name.split('.') {
                    if let Some(f) = self.dns_code_index.get(label) {
                        out.push(OracleAnswer {
                            source: ValidationSource::DnsRecords,
                            facility: Some(*f),
                            metro: Some(self.topo.facilities[*f].metro),
                            remote: None,
                        });
                        break;
                    }
                }
            }
        }

        // --- Detailed IXP websites.
        if let Some((fac, remote)) = self.site_ports.get(&ip) {
            out.push(OracleAnswer {
                source: ValidationSource::IxpWebsites,
                facility: *fac,
                metro: fac.map(|f| self.topo.facilities[f].metro),
                remote: Some(*remote),
            });
        }

        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfs_kb::KbConfig;
    use cfs_topology::TopologyConfig;

    fn fixture() -> (Topology, PublicSources) {
        let topo = Topology::generate(TopologyConfig::default()).unwrap();
        let src = PublicSources::derive(&topo, &KbConfig::default());
        (topo, src)
    }

    #[test]
    fn feedback_covers_only_the_two_cdns() {
        let (topo, src) = fixture();
        let oracles = ValidationOracles::standard(&topo, &src);
        let mut feedback_owners: BTreeSet<Asn> = BTreeSet::new();
        for iface in topo.ifaces.values() {
            for a in oracles.answers(iface.ip) {
                if a.source == ValidationSource::DirectFeedback {
                    feedback_owners.insert(iface.asn);
                }
            }
        }
        assert!(!feedback_owners.is_empty());
        assert!(feedback_owners.len() <= 2);
        for asn in feedback_owners {
            assert_eq!(topo.ases[&asn].class, AsClass::Cdn);
        }
    }

    #[test]
    fn community_claims_match_reality_where_enumerated() {
        let (topo, src) = fixture();
        let oracles = ValidationOracles::standard(&topo, &src);
        let mut seen = 0;
        for iface in topo.ifaces.values() {
            for a in oracles.answers(iface.ip) {
                if a.source == ValidationSource::BgpCommunities {
                    seen += 1;
                    if let Some(claim) = a.facility {
                        let truth = topo.routers[iface.router].location.facility().unwrap();
                        assert_eq!(claim, truth, "community tags never lie");
                    }
                }
            }
        }
        assert!(seen > 0, "no community coverage at all");
    }

    #[test]
    fn dns_claims_are_mostly_but_not_always_right() {
        let (topo, src) = fixture();
        let oracles = ValidationOracles::standard(&topo, &src);
        let mut right = 0usize;
        let mut wrong = 0usize;
        for iface in topo.ifaces.values() {
            for a in oracles.answers(iface.ip) {
                if a.source == ValidationSource::DnsRecords {
                    let truth = topo.routers[iface.router].location.facility();
                    match (a.facility, truth) {
                        (Some(c), Some(t)) if c == t => right += 1,
                        (Some(_), Some(_)) => wrong += 1,
                        _ => {}
                    }
                }
            }
        }
        assert!(right > 0, "no DNS coverage");
        // Stale names exist but are rare.
        assert!(wrong * 10 < right, "{wrong} stale vs {right} fresh");
    }

    #[test]
    fn site_channel_annotates_remote_and_skips_their_facility() {
        let (topo, src) = fixture();
        let oracles = ValidationOracles::standard(&topo, &src);
        assert!(oracles.site_coverage() > 0);
        let mut remote_claims = 0;
        for ixp in topo.ixps.values() {
            for m in &ixp.members {
                for a in oracles.answers(m.fabric_ip) {
                    if a.source == ValidationSource::IxpWebsites {
                        assert_eq!(a.remote, Some(m.remote_via.is_some()));
                        if m.remote_via.is_some() {
                            remote_claims += 1;
                            assert_eq!(a.facility, None, "remote port facility is the reseller's");
                        }
                    }
                }
            }
        }
        let _ = remote_claims; // may be zero on small worlds
    }

    #[test]
    fn unknown_address_gets_no_answers() {
        let (topo, src) = fixture();
        let oracles = ValidationOracles::standard(&topo, &src);
        assert!(oracles.answers("198.18.0.1".parse().unwrap()).is_empty());
    }

    #[test]
    fn dictionary_is_paper_sized() {
        let (topo, src) = fixture();
        let oracles = ValidationOracles::standard(&topo, &src);
        let n = oracles.community_dictionary().len();
        assert!((20..500).contains(&n), "dictionary size {n}");
    }
}
