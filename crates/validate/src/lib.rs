//! # cfs-validate
//!
//! The paper's validation machinery (§6): four independent ground-truth
//! channels with the same coverage quirks the authors faced, and the
//! scoring that produces Figure 9.
//!
//! * **Direct feedback** — two CDN operators confirm facilities, but
//!   "only for their own interfaces, not the facilities of their peers".
//! * **BGP communities** — four transit providers tag route ingress
//!   points; only values present in the compiled dictionary (109 in the
//!   paper) can validate anything.
//! * **DNS records** — per-operator naming conventions for a handful of
//!   operators, confirmed current; a few records are stale anyway, which
//!   is noise on the *validator* side.
//! * **IXP websites** — the detailed (AMS-IX-like) exchanges publish
//!   interface-to-facility mappings and remote/local annotations.
//!
//! Each oracle answers for a *subset* of interfaces; the scorer buckets
//! comparisons by validation source and inferred link type.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

mod oracle;
mod score;

pub use oracle::{OracleAnswer, ValidationOracles, ValidationSource};
pub use score::{score_report, Bucket, ValidationReport};
