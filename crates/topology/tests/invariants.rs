//! Ground-truth invariants across random seeds: whatever world the
//! generator draws, its structure must satisfy the §2 semantics the rest
//! of the pipeline assumes.

use cfs_topology::{IfaceKind, Topology, TopologyConfig};
use cfs_types::PeeringKind;
use cfs_types::Rel;

fn world(seed: u64) -> Topology {
    Topology::generate(TopologyConfig::tiny().with_seed(seed)).unwrap()
}

#[test]
fn validate_holds_across_seeds() {
    for seed in 0..12u64 {
        let t = world(seed);
        t.validate().unwrap_or_else(|e| panic!("seed {seed}: {e}"));
    }
}

#[test]
fn cross_connect_semantics_across_seeds() {
    for seed in 0..8u64 {
        let t = world(seed);
        for link in t.links.values() {
            let fa = t.router_facility(link.a.router);
            let fb = t.router_facility(link.b.router);
            match link.kind {
                PeeringKind::PrivateCrossConnect => {
                    let (Some(fa), Some(fb)) = (fa, fb) else {
                        panic!("seed {seed}: x-connect outside facilities")
                    };
                    if fa != fb {
                        // Campus cross-connect: one interconnected
                        // operator, one metro.
                        let (a, b) = (&t.facilities[fa], &t.facilities[fb]);
                        assert_eq!(a.operator, b.operator, "seed {seed}");
                        assert_eq!(a.metro, b.metro, "seed {seed}");
                    }
                }
                PeeringKind::PrivateTethering => {
                    assert!(link.ixp.is_some(), "seed {seed}: tethering without fabric");
                }
                PeeringKind::PublicLocal | PeeringKind::PublicRemote => {
                    panic!("seed {seed}: public peering materialized as a private link")
                }
                PeeringKind::PrivateRemote => {}
            }
            // Point-to-point addressing: both ends inside the link subnet,
            // allocated from side a's space.
            let ip_a = t.ifaces[link.a.iface].ip;
            let ip_b = t.ifaces[link.b.iface].ip;
            assert!(link.subnet.contains(ip_a) && link.subnet.contains(ip_b));
            assert!(
                t.ases[&link.a.asn]
                    .prefixes
                    .iter()
                    .any(|p| p.covers(link.subnet)),
                "seed {seed}: subnet not from side a"
            );
        }
    }
}

#[test]
fn membership_semantics_across_seeds() {
    for seed in 0..8u64 {
        let t = world(seed);
        for (id, ixp) in t.ixps.iter() {
            for m in &ixp.members {
                // Fabric interface carries the membership address and an
                // IxpFabric kind bound to this exchange.
                let iface = &t.ifaces[m.iface];
                assert_eq!(iface.kind, IfaceKind::IxpFabric(id), "seed {seed}");
                assert_eq!(iface.asn, m.asn, "seed {seed}");
                // The access switch belongs to this exchange.
                assert_eq!(t.switches[m.access_switch].ixp, id, "seed {seed}");
                // Remote memberships name a real reseller that is itself
                // a local member.
                if let Some(reseller) = m.remote_via {
                    let r = ixp
                        .member(reseller)
                        .unwrap_or_else(|| panic!("seed {seed}: reseller {reseller} not a member"));
                    assert!(r.remote_via.is_none(), "seed {seed}: reseller is remote");
                }
            }
        }
    }
}

#[test]
fn adjacency_graph_is_connected_upward_across_seeds() {
    // Every AS must reach the tier-1 mesh through providers (otherwise
    // parts of the world are unroutable and traceroutes die silently).
    for seed in 0..8u64 {
        let t = world(seed);
        for node in t.ases.values() {
            if node.class == cfs_types::AsClass::Tier1 {
                continue;
            }
            let mut frontier = vec![node.asn];
            let mut seen = std::collections::BTreeSet::new();
            let mut reaches_tier1 = false;
            while let Some(asn) = frontier.pop() {
                if !seen.insert(asn) {
                    continue;
                }
                if t.ases[&asn].class == cfs_types::AsClass::Tier1 {
                    reaches_tier1 = true;
                    break;
                }
                for adj in t.adjacencies_of(asn) {
                    if adj.rel == Rel::CustomerToProvider && adj.a == asn {
                        frontier.push(adj.b);
                    }
                }
            }
            assert!(reaches_tier1, "seed {seed}: {} stranded", node.asn);
        }
    }
}

#[test]
fn sibling_contamination_is_symmetric_and_real() {
    // Across seeds, sibling pairs must reference each other, and at least
    // one sibling's router must carry an address from the partner's space
    // somewhere in the world (the §4.1 conflict source).
    let mut any_pair = false;
    for seed in 0..10u64 {
        let t = world(seed);
        for node in t.ases.values() {
            if let Some(sib) = node.sibling {
                any_pair = true;
                assert_eq!(t.ases[&sib].sibling, Some(node.asn), "seed {seed}");
            }
        }
    }
    assert!(any_pair, "no sibling pairs generated in ten seeds");
}

#[test]
fn dual_homed_ports_share_member_and_exchange() {
    let mut dual_seen = false;
    for seed in 0..6u64 {
        let t = Topology::generate(TopologyConfig::default().with_seed(seed)).unwrap();
        for (id, ixp) in t.ixps.iter() {
            let mut per_asn: std::collections::BTreeMap<_, Vec<_>> = Default::default();
            for m in &ixp.members {
                per_asn.entry(m.asn).or_default().push(m);
            }
            for (asn, ports) in per_asn {
                if ports.len() >= 2 {
                    dual_seen = true;
                    // Distinct addresses, distinct routers, all local or
                    // all consistent with the member's presence.
                    let mut ips: Vec<_> = ports.iter().map(|m| m.fabric_ip).collect();
                    ips.dedup();
                    assert_eq!(ips.len(), ports.len(), "seed {seed} {id} {asn}");
                    let facs: std::collections::BTreeSet<_> = ports
                        .iter()
                        .filter_map(|m| t.router_facility(m.router))
                        .collect();
                    for f in &facs {
                        assert!(
                            t.ases[&asn].facilities.contains(f),
                            "seed {seed}: port outside presence"
                        );
                    }
                }
            }
        }
        if dual_seen {
            break;
        }
    }
    assert!(dual_seen, "no dual-homed member generated");
}
