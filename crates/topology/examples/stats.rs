//! Prints the headline statistics of a paper-scale generated world, for
//! comparison against §3.1 of the paper (1,694 facilities in 95
//! countries / 684 cities, 368 IXPs, region mix, membership shapes).
//!
//! ```text
//! cargo run --release -p cfs-topology --example stats
//! ```

use cfs_obs::Monotonic;
use cfs_topology::{Topology, TopologyConfig};

fn main() {
    // Timing goes through cfs-obs: `Monotonic` is the workspace's one
    // sanctioned wall-clock reader (cfs-lint `wall-clock`).
    let start = Monotonic::new();
    let t = Topology::generate(TopologyConfig::paper()).unwrap();
    println!("generation time: {:?}", start.elapsed());
    println!("facilities:      {}", t.facilities.len());
    println!("ixps:            {}", t.ixps.len());
    println!("ases:            {}", t.ases.len());
    println!("routers:         {}", t.routers.len());
    println!("interfaces:      {}", t.ifaces.len());
    println!("private links:   {}", t.links.len());
    println!("as adjacencies:  {}", t.adjacencies.len());

    let memberships: usize = t.ixps.values().map(|x| x.members.len()).sum();
    let remote = t
        .ixps
        .values()
        .flat_map(|x| &x.members)
        .filter(|m| m.remote_via.is_some())
        .count();
    println!("ixp memberships: {memberships} ({remote} remote)");

    let multi_ixp = t.ases.values().filter(|n| n.ixps.len() > 1).count();
    let multi_fac = t.ases.values().filter(|n| n.facilities.len() > 1).count();
    println!(
        "ASes at >1 IXP:      {:.0}%  (paper: 54%)",
        100.0 * multi_ixp as f64 / t.ases.len() as f64
    );
    println!(
        "ASes at >1 facility: {:.0}%  (paper: 66%)",
        100.0 * multi_fac as f64 / t.ases.len() as f64
    );

    for region in cfs_types::Region::ALL {
        let n = t.facilities.values().filter(|f| f.region == region).count();
        println!("  {region:<14} {n:>5} facilities");
    }
}
