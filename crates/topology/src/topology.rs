//! The assembled, immutable ground-truth topology.

use std::collections::BTreeMap;
use std::net::Ipv4Addr;

use cfs_geo::World;
use cfs_net::{Announcement, IpAsnDb, Ipv4Prefix, PrefixTrie};
use cfs_types::{
    Arena, Asn, Error, FacilityId, IfaceId, IxpId, LinkId, OperatorId, Rel, Result, RouterId,
    SwitchId,
};

use crate::config::TopologyConfig;
use crate::model::{AsNode, Facility, FacilityOperator, Iface, Ixp, Link, Medium, Router, Switch};

/// One AS-level adjacency with its physical instantiations.
///
/// Canonical orientation: for `c2p`, `a` is the customer; for `p2p`,
/// `a < b` by ASN.
#[derive(Clone, Debug)]
pub struct AsAdjacency {
    /// First AS (customer for c2p).
    pub a: Asn,
    /// Second AS (provider for c2p).
    pub b: Asn,
    /// Business relationship.
    pub rel: Rel,
    /// Physical realizations (≥1; several for multi-location pairs).
    pub mediums: Vec<Medium>,
}

/// The generated world. All tables are public for read access; the struct
/// is never mutated after generation.
#[derive(Clone, Debug)]
pub struct Topology {
    /// The configuration that produced this topology.
    pub config: TopologyConfig,
    /// Geography (cities, metros).
    pub world: World,
    /// Facility operators.
    pub operators: Arena<OperatorId, FacilityOperator>,
    /// Interconnection facilities.
    pub facilities: Arena<FacilityId, Facility>,
    /// Internet exchange points.
    pub ixps: Arena<IxpId, Ixp>,
    /// IXP switches.
    pub switches: Arena<SwitchId, Switch>,
    /// Autonomous systems, keyed by ASN.
    pub ases: BTreeMap<Asn, AsNode>,
    /// Routers.
    pub routers: Arena<RouterId, Router>,
    /// Router interfaces.
    pub ifaces: Arena<IfaceId, Iface>,
    /// Materialized private/transit links.
    pub links: Arena<LinkId, Link>,
    /// AS-level adjacencies, sorted by `(a, b)`.
    pub adjacencies: Vec<AsAdjacency>,
    /// BGP announcements as route collectors would see them (including
    /// sibling contamination).
    pub announcements: Vec<Announcement>,

    // ---- indices (built once at the end of generation) ----
    pub(crate) iface_by_ip: BTreeMap<Ipv4Addr, IfaceId>,
    pub(crate) adj_index: BTreeMap<(Asn, Asn), usize>,
    pub(crate) neighbors: BTreeMap<Asn, Vec<usize>>,
    pub(crate) ixp_prefixes: PrefixTrie<IxpId>,
}

impl Topology {
    /// Generates a topology from `config`. Deterministic in the seed.
    pub fn generate(config: TopologyConfig) -> Result<Self> {
        crate::generate::generate(config)
    }

    /// The AS record for `asn`.
    pub fn as_node(&self, asn: Asn) -> Result<&AsNode> {
        self.ases
            .get(&asn)
            .ok_or_else(|| Error::not_found("as", asn))
    }

    /// Ground-truth owner interface of an IP address, if any.
    pub fn iface_by_ip(&self, ip: Ipv4Addr) -> Option<IfaceId> {
        self.iface_by_ip.get(&ip).copied()
    }

    /// A stable, always-active "customer" address inside `asn`'s primary
    /// block, used as a traceroute target (the paper selects one active
    /// IP per prefix per target network).
    pub fn target_ip(&self, asn: Asn) -> Result<Ipv4Addr> {
        let node = self.as_node(asn)?;
        let primary = node
            .prefixes
            .first()
            .ok_or_else(|| Error::invalid(format!("{asn} has no prefix")))?;
        primary.nth(10)
    }

    /// The facility a router sits in (None for PoP routers).
    pub fn router_facility(&self, router: RouterId) -> Option<FacilityId> {
        self.routers[router].location.facility()
    }

    /// The IXP owning `ip` (i.e. `ip` is inside some peering LAN).
    pub fn ixp_of_ip(&self, ip: Ipv4Addr) -> Option<IxpId> {
        self.ixp_prefixes.longest_match(ip).map(|(_, id)| *id)
    }

    /// Hop distance between two switches of one exchange in the
    /// core/backhaul/access hierarchy: 0 = same switch, 1 = same backhaul
    /// (or parent/child), 2 = via the core. Members on nearby switches
    /// exchange traffic locally (§4.4, confirmed by operators).
    pub fn switch_distance(&self, a: SwitchId, b: SwitchId) -> u8 {
        if a == b {
            return 0;
        }
        let pa = self.switches[a].parent;
        let pb = self.switches[b].parent;
        if pa == Some(b) || pb == Some(a) {
            return 1;
        }
        match (pa, pb) {
            (Some(x), Some(y)) if x == y => 1,
            _ => 2,
        }
    }

    /// The adjacency between two ASes, if any (order-insensitive).
    pub fn adjacency(&self, x: Asn, y: Asn) -> Option<&AsAdjacency> {
        self.adj_index
            .get(&(x, y))
            .or_else(|| self.adj_index.get(&(y, x)))
            .map(|i| &self.adjacencies[*i])
    }

    /// All adjacencies involving `asn`.
    pub fn adjacencies_of(&self, asn: Asn) -> impl Iterator<Item = &AsAdjacency> {
        self.neighbors
            .get(&asn)
            .into_iter()
            .flatten()
            .map(move |i| &self.adjacencies[*i])
    }

    /// Builds the (contaminated) IP→ASN database from the announcements —
    /// the view Team Cymru-style services expose (§4.1).
    pub fn build_ipasn_db(&self) -> IpAsnDb {
        IpAsnDb::from_announcements(self.announcements.iter().copied())
    }

    /// All IXP peering-LAN prefixes with their IXPs.
    pub fn ixp_prefix_list(&self) -> Vec<(Ipv4Prefix, IxpId)> {
        self.ixps
            .iter()
            .map(|(id, ixp)| (ixp.peering_lan, id))
            .collect()
    }

    /// Checks structural invariants; generation runs this before
    /// returning, and property tests call it on random seeds.
    pub fn validate(&self) -> Result<()> {
        // Every facility's operator lists it back.
        for (fid, f) in self.facilities.iter() {
            let op = self
                .operators
                .get(f.operator)
                .ok_or_else(|| Error::invalid(format!("{fid} has unknown operator")))?;
            if !op.facilities.contains(&fid) {
                return Err(Error::invalid(format!("{fid} missing from operator list")));
            }
        }
        // IXP switch hierarchy: core has no parent, others chain to core;
        // every partner facility hosts exactly one access switch.
        for (iid, ixp) in self.ixps.iter() {
            let core = &self.switches[ixp.core];
            if core.parent.is_some() || core.ixp != iid {
                return Err(Error::invalid(format!("{iid} core switch malformed")));
            }
            for sid in &ixp.switches {
                let sw = &self.switches[*sid];
                if sw.ixp != iid {
                    return Err(Error::invalid(format!("{iid} lists foreign switch {sid}")));
                }
                if *sid != ixp.core {
                    let parent = sw
                        .parent
                        .ok_or_else(|| Error::invalid(format!("{sid} orphaned")))?;
                    let p = &self.switches[parent];
                    if p.ixp != iid {
                        return Err(Error::invalid(format!("{sid} parent in foreign ixp")));
                    }
                }
            }
            for m in &ixp.members {
                if !ixp.peering_lan.contains(m.fabric_ip) {
                    return Err(Error::invalid(format!(
                        "{iid} member {} fabric ip outside LAN",
                        m.asn
                    )));
                }
                let iface = &self.ifaces[m.iface];
                if iface.router != m.router || iface.ip != m.fabric_ip {
                    return Err(Error::invalid(format!("{iid} member {} iface bad", m.asn)));
                }
                // Local members' routers must sit at a partner facility.
                if m.remote_via.is_none() {
                    match self.router_facility(m.router) {
                        Some(f) if ixp.facilities.contains(&f) => {}
                        other => {
                            return Err(Error::invalid(format!(
                                "{iid} local member {} router at {:?}, not a partner facility",
                                m.asn, other
                            )))
                        }
                    }
                }
            }
        }
        // Routers and interfaces are mutually consistent.
        for (rid, r) in self.routers.iter() {
            for ifid in &r.ifaces {
                if self.ifaces[*ifid].router != rid {
                    return Err(Error::invalid(format!(
                        "{rid} iface {ifid} points elsewhere"
                    )));
                }
            }
        }
        for (ifid, iface) in self.ifaces.iter() {
            if !self.routers[iface.router].ifaces.contains(&ifid) {
                return Err(Error::invalid(format!("{ifid} not listed by its router")));
            }
        }
        // Unique IPs.
        if self.iface_by_ip.len() != self.ifaces.len() {
            return Err(Error::invalid("duplicate interface addresses"));
        }
        // AS record consistency.
        for (asn, node) in &self.ases {
            if node.asn != *asn {
                return Err(Error::invalid(format!(
                    "as map key {asn} != node {}",
                    node.asn
                )));
            }
            for rid in &node.routers {
                if self.routers[*rid].asn != *asn {
                    return Err(Error::invalid(format!("{asn} lists foreign router {rid}")));
                }
            }
            let mut sorted = node.facilities.clone();
            sorted.sort();
            sorted.dedup();
            if sorted != node.facilities {
                return Err(Error::invalid(format!(
                    "{asn} facility list not sorted/unique"
                )));
            }
        }
        // Adjacency canonical form and index completeness.
        for (i, adj) in self.adjacencies.iter().enumerate() {
            if adj.rel == Rel::PeerToPeer && adj.a >= adj.b {
                return Err(Error::invalid(format!(
                    "p2p adjacency not canonical at {i}"
                )));
            }
            if adj.mediums.is_empty() {
                return Err(Error::invalid(format!(
                    "adjacency {}-{} has no medium",
                    adj.a, adj.b
                )));
            }
            if self.adj_index.get(&(adj.a, adj.b)) != Some(&i) {
                return Err(Error::invalid("adjacency index out of sync"));
            }
            for m in &adj.mediums {
                if let Medium::Private(lid) = m {
                    let link = &self.links[*lid];
                    let pair_ok = (link.a.asn == adj.a && link.b.asn == adj.b)
                        || (link.a.asn == adj.b && link.b.asn == adj.a);
                    if !pair_ok {
                        return Err(Error::invalid(format!(
                            "link {lid} does not connect {}-{}",
                            adj.a, adj.b
                        )));
                    }
                }
            }
        }
        Ok(())
    }
}
