//! Phase 4: interconnections — transit relationships, the Tier-1 mesh,
//! private peering (cross-connects and tethering VLANs), and public
//! peering across IXP fabrics (bilateral and route-server multilateral).

use rand::seq::SliceRandom;
use rand::Rng;

use cfs_types::{AsClass, Asn, Error, FacilityId, IxpId, PeeringKind, Rel, Result};

use crate::model::{EndPoint, IfaceKind, Link, Medium};

use super::Gen;

pub(super) fn build(g: &mut Gen) -> Result<()> {
    transit_links(g)?;
    tier1_mesh(g)?;
    private_peering(g)?;
    public_peering(g)?;
    Ok(())
}

/// ASNs of a class, sorted (deterministic).
fn of_class(g: &Gen, class: AsClass) -> Vec<Asn> {
    g.ases
        .values()
        .filter(|n| n.class == class)
        .map(|n| n.asn)
        .collect()
}

// ---------------------------------------------------------------------
// Physical link materialization
// ---------------------------------------------------------------------

/// Common ground-truth facilities of two ASes, sorted so the facilities
/// where either side already terminates IXP ports come first (networks
/// consolidate equipment — this is what makes 39% of observed routers
/// carry both public and private peerings in §5).
fn common_facilities(g: &Gen, a: Asn, b: Asn) -> Vec<FacilityId> {
    let fa = &g.ases[&a].facilities;
    let fb = &g.ases[&b].facilities;
    let mut common: Vec<FacilityId> = fa.iter().copied().filter(|f| fb.contains(f)).collect();
    let fabric_ifaces = |asn: Asn, fac: FacilityId| -> usize {
        match g.routers_at.get(&(asn, fac)) {
            Some(rid) => g.routers[*rid]
                .ifaces
                .iter()
                .filter(|i| matches!(g.ifaces[**i].kind, IfaceKind::IxpFabric(_)))
                .count(),
            None => 0,
        }
    };
    common.sort_by_key(|f| std::cmp::Reverse(fabric_ifaces(a, *f) + fabric_ifaces(b, *f)));
    common
}

/// Materializes one private link of `kind` between `a` and `b` at the
/// given facilities (the point-to-point subnet comes from `a`'s space).
fn materialize(
    g: &mut Gen,
    a: Asn,
    b: Asn,
    kind: PeeringKind,
    fac_a: FacilityId,
    fac_b: FacilityId,
    ixp: Option<IxpId>,
) -> Result<Medium> {
    let ra = *g
        .routers_at
        .get(&(a, fac_a))
        .ok_or_else(|| Error::invalid(format!("{a} lacks router at {fac_a}")))?;
    let rb = *g
        .routers_at
        .get(&(b, fac_b))
        .ok_or_else(|| Error::invalid(format!("{b} lacks router at {fac_b}")))?;
    let subnet = g.alloc_ptp(a)?;
    let lid = g.links.next_id();
    let ia = g.add_iface(ra, a, subnet.nth(0)?, IfaceKind::PrivatePtp(lid));
    let ib = g.add_iface(rb, b, subnet.nth(1)?, IfaceKind::PrivatePtp(lid));
    let id = g.links.push(Link {
        kind,
        a: EndPoint {
            asn: a,
            router: ra,
            iface: ia,
        },
        b: EndPoint {
            asn: b,
            router: rb,
            iface: ib,
        },
        ixp,
        subnet,
    });
    debug_assert_eq!(id, lid);
    Ok(Medium::Private(lid))
}

/// Creates a private interconnect between two ASes, choosing the best
/// available engineering: cross-connect at a shared facility, tethering
/// over a shared IXP (when allowed), or a long-haul private line.
fn private_link(g: &mut Gen, a: Asn, b: Asn, allow_tethering: bool) -> Result<Option<Medium>> {
    let common = common_facilities(g, a, b);
    if let Some(fac) = common.first() {
        let m = materialize(g, a, b, PeeringKind::PrivateCrossConnect, *fac, *fac, None)?;
        return Ok(Some(m));
    }

    // §2: "Cross-connects can be established between members that host
    // their network equipment in different facilities of the same
    // interconnection facility operator, if these facilities are
    // interconnected." Campus cross-connects span two buildings of one
    // metro-interconnected operator — the source of the paper's
    // "Telecity Amsterdam 1 instead of Telecity Amsterdam 2" near-misses.
    if let Some((fa, fb)) = campus_pair(g, a, b) {
        let m = materialize(g, a, b, PeeringKind::PrivateCrossConnect, fa, fb, None)?;
        return Ok(Some(m));
    }

    if allow_tethering && g.rng.random_bool(0.75) {
        // Tethering: both sides hold ports on the same IXP fabric but sit
        // in different buildings; a VLAN over the fabric joins them.
        let shared_ixp: Option<IxpId> = {
            let ia = &g.ases[&a].ixps;
            let ib = &g.ases[&b].ixps;
            ia.iter().copied().find(|i| ib.contains(i))
        };
        if let Some(ixp) = shared_ixp {
            let (fac_a, fac_b) = {
                let ma = g.ixps[ixp].member(a).expect("a is member");
                let mb = g.ixps[ixp].member(b).expect("b is member");
                (
                    g.routers[ma.router].location.facility(),
                    g.routers[mb.router].location.facility(),
                )
            };
            if let (Some(fa), Some(fb)) = (fac_a, fac_b) {
                let m = materialize(g, a, b, PeeringKind::PrivateTethering, fa, fb, Some(ixp))?;
                return Ok(Some(m));
            }
        }
    }

    // Long-haul private line between each side's first facility.
    let fa = *g.ases[&a].facilities.first().expect("presence");
    let fb = *g.ases[&b].facilities.first().expect("presence");
    let m = materialize(g, a, b, PeeringKind::PrivateRemote, fa, fb, None)?;
    Ok(Some(m))
}

/// Finds a campus pair: facility of `a` and facility of `b` run by the
/// same metro-interconnected operator in the same metro.
fn campus_pair(g: &Gen, a: Asn, b: Asn) -> Option<(FacilityId, FacilityId)> {
    for fa in &g.ases[&a].facilities {
        let fac_a = &g.facilities[*fa];
        if !g.operators[fac_a.operator].metro_interconnected {
            continue;
        }
        for fb in &g.ases[&b].facilities {
            if fa == fb {
                continue;
            }
            let fac_b = &g.facilities[*fb];
            if fac_b.operator == fac_a.operator && fac_b.metro == fac_a.metro {
                return Some((*fa, *fb));
            }
        }
    }
    None
}

/// A transit handoff. Cross-connect at a shared facility when one
/// exists; otherwise the customer usually *buys into* one of the
/// provider's buildings (extending its ground-truth presence there) —
/// long-haul off-net delivery is the minority case.
fn transit_link(g: &mut Gen, prov: Asn, cust: Asn) -> Result<Option<Medium>> {
    if !common_facilities(g, prov, cust).is_empty() || !g.rng.random_bool(0.6) {
        return private_link(g, prov, cust, false);
    }
    // Move the customer into the provider's facility nearest its home.
    let cust_home = g.routers[g.ases[&cust].routers[0]].coords;
    let target_fac = g.ases[&prov]
        .facilities
        .iter()
        .copied()
        .min_by_key(|f| g.facilities[*f].location.distance_km(cust_home) as u64)
        .expect("provider has presence");
    if !g.routers_at.contains_key(&(cust, target_fac)) {
        let coords = g.facilities[target_fac].location;
        let class = g.ases[&cust].class;
        let ipid = g.sample_ipid(class);
        g.new_router(
            cust,
            crate::model::RouterLocation::Facility(target_fac),
            coords,
            ipid,
        )?;
        let node = g.ases.get_mut(&cust).expect("exists");
        node.facilities.push(target_fac);
        node.facilities.sort();
        node.facilities.dedup();
    }
    let m = materialize(
        g,
        prov,
        cust,
        PeeringKind::PrivateCrossConnect,
        target_fac,
        target_fac,
        None,
    )?;
    Ok(Some(m))
}

// ---------------------------------------------------------------------
// Relationship generation
// ---------------------------------------------------------------------

fn transit_links(g: &mut Gen) -> Result<()> {
    let tier1s = of_class(g, AsClass::Tier1);
    let transits = of_class(g, AsClass::Transit);

    // Customer class → candidate providers and how many to pick.
    let specs: Vec<(AsClass, bool, std::ops::RangeInclusive<usize>)> = vec![
        (AsClass::Transit, true, 2..=3),  // transit buys from tier1s
        (AsClass::Cdn, true, 1..=2),      // cdn keeps tier1 backup transit
        (AsClass::Reseller, true, 1..=2), // resellers ride on tier1s
        (AsClass::Content, false, 1..=2), // content buys from transit
        (AsClass::Access, false, 1..=2),
        (AsClass::Enterprise, false, 1..=2),
    ];

    for (class, from_tier1, range) in specs {
        let customers = of_class(g, class);
        for cust in customers {
            let home = g.ases[&cust].home_region;
            let pool: Vec<Asn> = if from_tier1 {
                tier1s.clone()
            } else {
                // Prefer transit providers with footprint in the home
                // region; fall back to any transit, then tier1.
                let regional: Vec<Asn> = transits
                    .iter()
                    .copied()
                    .filter(|t| g.ases[t].home_region == home)
                    .collect();
                if regional.is_empty() {
                    transits.clone()
                } else {
                    regional
                }
            };
            let pool: Vec<Asn> = if pool.is_empty() {
                tier1s.clone()
            } else {
                pool
            };
            let n = g.rng.random_range(range.clone());
            let mut choices = pool;
            choices.retain(|p| *p != cust);
            choices.shuffle(&mut g.rng);
            for prov in choices.into_iter().take(n) {
                if g.has_adjacency(cust, prov) {
                    continue;
                }
                // 1-2 handoff locations.
                let locations = if g.rng.random_bool(0.25) { 2 } else { 1 };
                for _ in 0..locations {
                    if let Some(m) = transit_link(g, prov, cust)? {
                        g.add_adjacency(cust, prov, Rel::CustomerToProvider, m);
                    }
                }
            }
        }
    }
    Ok(())
}

fn tier1_mesh(g: &mut Gen) -> Result<()> {
    let tier1s = of_class(g, AsClass::Tier1);
    for (i, a) in tier1s.iter().enumerate() {
        for b in &tier1s[i + 1..] {
            let common = common_facilities(g, *a, *b);
            let n_locations = common.len().clamp(1, 3);
            if common.is_empty() {
                if let Some(m) = private_link(g, *a, *b, false)? {
                    g.add_adjacency(*a, *b, Rel::PeerToPeer, m);
                }
                continue;
            }
            for fac in common.into_iter().take(n_locations) {
                let m = materialize(g, *a, *b, PeeringKind::PrivateCrossConnect, fac, fac, None)?;
                g.add_adjacency(*a, *b, Rel::PeerToPeer, m);
            }
        }
    }
    Ok(())
}

fn private_peering(g: &mut Gen) -> Result<()> {
    // CDNs peer privately with the largest transit/access networks they
    // share buildings with (§5: CDNs still keep plenty of private pairs).
    let cdns = of_class(g, AsClass::Cdn);
    let peers_pool: Vec<Asn> = of_class(g, AsClass::Transit)
        .into_iter()
        .chain(of_class(g, AsClass::Access))
        .collect();

    for cdn in cdns {
        let mut scored: Vec<(usize, Asn)> = peers_pool
            .iter()
            .map(|p| (common_facilities(g, cdn, *p).len(), *p))
            .filter(|(n, p)| *n > 0 && !g.has_adjacency(cdn, *p))
            .collect();
        scored.sort_by_key(|(n, asn)| (std::cmp::Reverse(*n), *asn));
        let take = (scored.len() / 2).clamp(1, 18);
        for (_, peer) in scored.into_iter().take(take) {
            let tether = g.rng.random_bool(g.cfg.tethering_fraction);
            let medium = if tether {
                // Force the tethering path by pretending no shared
                // facility exists: call private_link with tethering
                // allowed only when they actually share an IXP.
                let shares_ixp = {
                    let ia = &g.ases[&cdn].ixps;
                    g.ases[&peer].ixps.iter().any(|i| ia.contains(i))
                };
                if shares_ixp {
                    tethering_link(g, cdn, peer)?
                } else {
                    private_link(g, cdn, peer, false)?
                }
            } else {
                private_link(g, cdn, peer, false)?
            };
            if let Some(m) = medium {
                g.add_adjacency(cdn, peer, Rel::PeerToPeer, m);
            }
        }
    }

    // A sprinkling of transit↔transit private peering at shared sites.
    let transits = of_class(g, AsClass::Transit);
    for (i, a) in transits.iter().enumerate() {
        for b in &transits[i + 1..] {
            if g.has_adjacency(*a, *b) || !g.rng.random_bool(0.12) {
                continue;
            }
            if common_facilities(g, *a, *b).is_empty() {
                continue;
            }
            if let Some(m) = private_link(g, *a, *b, true)? {
                g.add_adjacency(*a, *b, Rel::PeerToPeer, m);
            }
        }
    }
    Ok(())
}

/// Builds a tethering VLAN between two members of a shared IXP.
fn tethering_link(g: &mut Gen, a: Asn, b: Asn) -> Result<Option<Medium>> {
    let shared: Option<IxpId> = {
        let ia = &g.ases[&a].ixps;
        g.ases[&b].ixps.iter().copied().find(|i| ia.contains(i))
    };
    let Some(ixp) = shared else { return Ok(None) };
    let (ra, rb) = {
        let ma = g.ixps[ixp].member(a).expect("member");
        let mb = g.ixps[ixp].member(b).expect("member");
        (ma.router, mb.router)
    };
    let (fa, fb) = (
        g.routers[ra].location.facility(),
        g.routers[rb].location.facility(),
    );
    let (Some(fa), Some(fb)) = (fa, fb) else {
        return Ok(None);
    };
    let m = materialize(g, a, b, PeeringKind::PrivateTethering, fa, fb, Some(ixp))?;
    Ok(Some(m))
}

fn public_peering(g: &mut Gen) -> Result<()> {
    let ixp_ids: Vec<IxpId> = g
        .ixps
        .iter()
        .filter(|(_, x)| x.active)
        .map(|(id, _)| id)
        .collect();
    for ixp in ixp_ids {
        let members: Vec<(Asn, bool)> = g.ixps[ixp]
            .members
            .iter()
            .map(|m| (m.asn, m.uses_route_server))
            .collect();
        for (i, (a, a_rs)) in members.iter().enumerate() {
            for (b, b_rs) in &members[i + 1..] {
                if a == b || g.has_adjacency(*a, *b) {
                    continue;
                }
                let multilateral = *a_rs && *b_rs;
                let bilateral = if multilateral {
                    true
                } else {
                    let p = bilateral_prob(g.ases[a].class, g.ases[b].class);
                    g.rng.random_bool(p)
                };
                if bilateral {
                    g.add_adjacency(*a, *b, Rel::PeerToPeer, Medium::PublicIxp { ixp });
                }
            }
        }
    }
    Ok(())
}

/// Probability that two IXP members establish a bilateral public peering
/// session when at least one avoids the route server.
fn bilateral_prob(a: AsClass, b: AsClass) -> f64 {
    use AsClass::*;
    match (a, b) {
        (Cdn, _) | (_, Cdn) => 0.7,
        (Tier1, _) | (_, Tier1) => 0.15,
        (Transit, Transit) => 0.5,
        (Transit, Access) | (Access, Transit) => 0.45,
        (Access, Access) => 0.15,
        _ => 0.1,
    }
}

#[cfg(test)]
mod tests {
    use crate::config::TopologyConfig;
    use crate::model::Medium;
    use crate::topology::Topology;
    use cfs_types::{AsClass, PeeringKind, Rel};

    fn topo() -> Topology {
        Topology::generate(TopologyConfig::default()).unwrap()
    }

    #[test]
    fn every_stub_as_has_a_provider() {
        let t = topo();
        for node in t.ases.values() {
            if matches!(
                node.class,
                AsClass::Access | AsClass::Enterprise | AsClass::Content
            ) {
                let has_provider = t
                    .adjacencies_of(node.asn)
                    .any(|adj| adj.rel == Rel::CustomerToProvider && adj.a == node.asn);
                assert!(has_provider, "{} has no provider", node.asn);
            }
        }
    }

    #[test]
    fn tier1s_form_a_peering_mesh() {
        let t = topo();
        let tier1s: Vec<_> = t
            .ases
            .values()
            .filter(|n| n.class == AsClass::Tier1)
            .map(|n| n.asn)
            .collect();
        for (i, a) in tier1s.iter().enumerate() {
            for b in &tier1s[i + 1..] {
                let adj = t.adjacency(*a, *b).expect("tier1 pair not connected");
                assert_eq!(adj.rel, Rel::PeerToPeer);
            }
        }
    }

    #[test]
    fn cross_connect_endpoints_share_a_facility_cluster() {
        let t = topo();
        let mut seen = 0;
        for link in t.links.values() {
            if link.kind == PeeringKind::PrivateCrossConnect {
                seen += 1;
                let fa = t.router_facility(link.a.router).unwrap();
                let fb = t.router_facility(link.b.router).unwrap();
                if fa != fb {
                    // Campus cross-connect: same metro-interconnected
                    // operator, same metro (§2).
                    let (fac_a, fac_b) = (&t.facilities[fa], &t.facilities[fb]);
                    assert_eq!(fac_a.operator, fac_b.operator, "cross-operator x-connect");
                    assert_eq!(fac_a.metro, fac_b.metro, "cross-metro x-connect");
                    assert!(t.operators[fac_a.operator].metro_interconnected);
                }
            }
        }
        assert!(seen > 10, "too few cross-connects: {seen}");
    }

    #[test]
    fn tethering_links_reference_their_ixp() {
        let t = topo();
        let mut seen = 0;
        for link in t.links.values() {
            if link.kind == PeeringKind::PrivateTethering {
                seen += 1;
                let ixp = link.ixp.expect("tethering without ixp");
                assert!(t.ixps.get(ixp).is_some());
            } else if link.kind != PeeringKind::PrivateTethering {
                // Non-tethering links never reference a fabric.
                if link.kind != PeeringKind::PrivateTethering {
                    assert!(link.ixp.is_none() || link.kind == PeeringKind::PrivateTethering);
                }
            }
        }
        assert!(seen > 0, "no tethering links generated");
    }

    #[test]
    fn ptp_subnets_come_from_side_a() {
        let t = topo();
        for link in t.links.values() {
            let a_block = t.ases[&link.a.asn].prefixes[0];
            assert!(
                a_block.covers(link.subnet),
                "link subnet {} outside {}'s block",
                link.subnet,
                link.a.asn
            );
            // Which means side b's interface resolves to AS a in BGP — the
            // §4.1 contamination.
            let db = t.build_ipasn_db();
            let b_ip = t.ifaces[link.b.iface].ip;
            assert_eq!(db.origin(b_ip), Some(link.a.asn));
        }
    }

    #[test]
    fn public_adjacencies_exist_via_ixps() {
        let t = topo();
        let public = t
            .adjacencies
            .iter()
            .filter(|adj| {
                adj.mediums
                    .iter()
                    .any(|m| matches!(m, Medium::PublicIxp { .. }))
            })
            .count();
        assert!(public > 50, "too few public adjacencies: {public}");
    }

    #[test]
    fn no_peer_adjacency_duplicates_transit() {
        let t = topo();
        for adj in &t.adjacencies {
            let reverse = t.adjacencies.iter().any(|o| o.a == adj.b && o.b == adj.a);
            assert!(
                !reverse,
                "both orientations present for {}-{}",
                adj.a, adj.b
            );
        }
    }
}
