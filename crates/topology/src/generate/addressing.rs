//! Per-AS address plans.
//!
//! Every AS receives a /16 from the synthetic global table. Its tail is
//! reserved for infrastructure: backbone/loopback interface addresses from
//! the top /22, and point-to-point /31 subnets (private interconnects,
//! transit handoffs) from a /21 below it. The head of the block is
//! "customer" space — traceroute targets live there.
//!
//! Point-to-point subnets are always allocated from *one* side's plan, so
//! the far end of a private interconnect naturally maps to the wrong AS in
//! the IP-to-ASN database — the §4.1 pitfall the alias majority vote
//! corrects.

use std::net::Ipv4Addr;

use cfs_net::{HostAllocator, Ipv4Prefix, SubnetAllocator};
use cfs_types::{Error, Result};

/// Address plan of one AS.
#[derive(Clone, Debug)]
pub struct AsAddressPlan {
    /// The announced /16.
    pub primary: Ipv4Prefix,
    backbone: HostAllocator,
    ptp: SubnetAllocator,
}

impl AsAddressPlan {
    /// Builds the plan for a /16 block.
    pub fn new(primary: Ipv4Prefix) -> Result<Self> {
        if primary.len() != 16 {
            return Err(Error::invalid(format!(
                "AS block must be a /16, got {primary}"
            )));
        }
        let base = u32::from(primary.network());
        // x.y.252.0/22 — backbone & loopback host addresses (1022 usable).
        let backbone_net = Ipv4Prefix::new(Ipv4Addr::from(base | (252 << 8)), 22)?;
        // x.y.240.0/21 — point-to-point /31 pool (1024 subnets).
        let ptp_net = Ipv4Prefix::new(Ipv4Addr::from(base | (240 << 8)), 21)?;
        Ok(Self {
            primary,
            backbone: HostAllocator::new(backbone_net),
            ptp: SubnetAllocator::new(ptp_net, 31)?,
        })
    }

    /// Next backbone/loopback interface address.
    pub fn alloc_backbone(&mut self) -> Result<Ipv4Addr> {
        self.backbone.alloc()
    }

    /// Next point-to-point /31.
    pub fn alloc_ptp(&mut self) -> Result<Ipv4Prefix> {
        self.ptp.alloc()
    }

    /// A stable "customer" address inside the block, used as a traceroute
    /// target for this AS (one active host per announced prefix, as the
    /// paper selects one active IP per prefix).
    #[cfg(test)]
    pub fn target_ip(&self) -> Ipv4Addr {
        self.primary
            .nth(10)
            .expect("/16 has an address at offset 10")
    }

    /// Remaining point-to-point subnets (used by tests to check headroom).
    #[cfg(test)]
    pub fn ptp_remaining(&self) -> u64 {
        self.ptp.remaining()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan() -> AsAddressPlan {
        AsAddressPlan::new("20.7.0.0/16".parse().unwrap()).unwrap()
    }

    #[test]
    fn rejects_non_slash16() {
        assert!(AsAddressPlan::new("10.0.0.0/8".parse().unwrap()).is_err());
        assert!(AsAddressPlan::new("10.0.0.0/24".parse().unwrap()).is_err());
    }

    #[test]
    fn backbone_addresses_come_from_top_slash22() {
        let mut p = plan();
        let ip = p.alloc_backbone().unwrap();
        assert_eq!(ip.to_string(), "20.7.252.1");
        assert!(p.primary.contains(ip));
    }

    #[test]
    fn ptp_subnets_come_from_the_slash21() {
        let mut p = plan();
        let s = p.alloc_ptp().unwrap();
        assert_eq!(s.to_string(), "20.7.240.0/31");
        let s2 = p.alloc_ptp().unwrap();
        assert_eq!(s2.to_string(), "20.7.240.2/31");
        assert!(!s.overlaps(s2));
        assert_eq!(p.ptp_remaining(), 1022);
    }

    #[test]
    fn pools_do_not_overlap() {
        let mut p = plan();
        let bb = p.alloc_backbone().unwrap();
        for _ in 0..1024 {
            if let Ok(s) = p.alloc_ptp() {
                assert!(!s.contains(bb));
            }
        }
    }

    #[test]
    fn target_ip_is_in_customer_space() {
        let p = plan();
        assert_eq!(p.target_ip().to_string(), "20.7.0.10");
    }
}
