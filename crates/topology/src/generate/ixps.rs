//! Phase 2: Internet exchange points and their switch hierarchies.
//!
//! IXPs are apportioned to metros in proportion to facility count (the
//! paper observes ~3 facilities per IXP in a metro, §3.1.2). Each IXP
//! partners with a subset of its metro's facilities: the core switch sits
//! at the primary facility, access switches at every partner facility,
//! and — for exchanges spanning more than four buildings — backhaul
//! switches aggregate access switches as in Figure 6.

use rand::seq::SliceRandom;
use rand::Rng;

use cfs_net::HostAllocator;
use cfs_types::{FacilityId, MetroId, Result, SwitchId};

use crate::model::{Ixp, Switch, SwitchRole};
use crate::names::ixp_name;

use super::{apportion, Gen};

pub(super) fn build(g: &mut Gen) -> Result<()> {
    // Metro weights = facility counts; metros without facilities get none.
    let metros: Vec<MetroId> = g.facs_by_metro.keys().copied().collect();
    let weights: Vec<f64> = metros
        .iter()
        .map(|m| g.facs_by_metro[m].len() as f64)
        .collect();
    let mut counts = apportion(g.cfg.ixp_budget, &weights);

    // No metro hosts more IXPs than facilities; redistribute overflow to
    // the largest metros.
    let mut overflow = 0usize;
    for (i, m) in metros.iter().enumerate() {
        let cap = g.facs_by_metro[m].len();
        if counts[i] > cap {
            overflow += counts[i] - cap;
            counts[i] = cap;
        }
    }
    if overflow > 0 {
        let mut order: Vec<usize> = (0..metros.len()).collect();
        order.sort_by_key(|&i| std::cmp::Reverse(g.facs_by_metro[&metros[i]].len()));
        'outer: loop {
            for &i in &order {
                if overflow == 0 {
                    break 'outer;
                }
                if counts[i] < g.facs_by_metro[&metros[i]].len() {
                    counts[i] += 1;
                    overflow -= 1;
                }
            }
            if overflow > 0
                && order
                    .iter()
                    .all(|&i| counts[i] >= g.facs_by_metro[&metros[i]].len())
            {
                break; // every metro saturated; drop the remainder
            }
        }
    }

    for (metro, count) in metros.into_iter().zip(counts) {
        for ordinal in 0..count {
            build_ixp(g, metro, ordinal)?;
        }
    }
    Ok(())
}

fn build_ixp(g: &mut Gen, metro: MetroId, ordinal: usize) -> Result<()> {
    let metro_name = g.world.metro(metro).name.clone();
    let region = g.world.metro(metro).region;
    let all_facs = g.facs_by_metro[&metro].clone();

    // Partner facility count: the metro's first IXP is the big one and
    // takes most of the market; later IXPs are smaller. DE-CIX-like
    // exchanges span up to 18 facilities.
    let max_span = all_facs.len().min(18);
    let span = if ordinal == 0 {
        // Biased high: the incumbent exchange covers 40-100% of the metro.
        let lo = (max_span as f64 * 0.4).ceil() as usize;
        g.rng.random_range(lo.clamp(1, max_span)..=max_span)
    } else {
        g.rng.random_range(1..=max_span.min(4))
    };

    // Exchanges deploy where interconnection already happens: partner
    // facilities are drawn with weight 1 + (access switches already
    // there), concentrating fabrics in the same key buildings — the
    // precondition for the paper's multi-IXP routers (§5: 11.9% of
    // public-peering routers span several exchanges through one
    // cross-IXP facility).
    let mut pool = all_facs;
    pool.shuffle(&mut g.rng);
    let switch_load = |g: &Gen, f: FacilityId| -> usize {
        g.switches
            .values()
            .filter(|s| s.facility == f && s.role == SwitchRole::Access)
            .count()
    };
    let mut partners: Vec<FacilityId> = Vec::with_capacity(span);
    for _ in 0..span {
        let weights: Vec<f64> = pool
            .iter()
            .map(|f| 1.0 + 2.0 * switch_load(g, *f) as f64)
            .collect();
        let idx = super::weighted_index(&mut g.rng, &weights);
        partners.push(pool.swap_remove(idx));
    }
    partners.sort();

    let ixp_id = g.ixps.next_id();
    // Core switch at the primary (first) facility.
    let primary = partners[0];
    let core = g.switches.push(Switch {
        ixp: ixp_id,
        role: SwitchRole::Core,
        facility: primary,
        parent: None,
    });
    let mut switches = vec![core];

    // Backhaul layer only for large exchanges (Figure 6).
    let use_backhaul = partners.len() > 4;
    let mut backhauls: Vec<SwitchId> = Vec::new();
    if use_backhaul {
        let n_backhaul = partners.len().div_ceil(3).min(4);
        for i in 0..n_backhaul {
            let bh_fac = partners[(i * partners.len()) / n_backhaul];
            let bh = g.switches.push(Switch {
                ixp: ixp_id,
                role: SwitchRole::Backhaul,
                facility: bh_fac,
                parent: Some(core),
            });
            backhauls.push(bh);
            switches.push(bh);
        }
    }

    // One access switch per partner facility.
    for (i, fac) in partners.iter().enumerate() {
        let parent = if use_backhaul {
            backhauls[i % backhauls.len()]
        } else {
            core
        };
        let sw = g.switches.push(Switch {
            ixp: ixp_id,
            role: SwitchRole::Access,
            facility: *fac,
            parent: Some(parent),
        });
        switches.push(sw);
    }

    let peering_lan = g.ixp_pool.alloc()?;
    let active = !g.rng.random_bool(g.cfg.inactive_ixp_fraction);
    let has_route_server = g.rng.random_bool(0.8);

    let id = g.ixps.push(Ixp {
        name: ixp_name(&metro_name, ordinal),
        metro,
        region,
        peering_lan,
        facilities: partners,
        switches,
        core,
        active,
        has_route_server,
        members: Vec::new(),
    });
    debug_assert_eq!(id, ixp_id);
    g.fabric.insert(id, HostAllocator::new(peering_lan));
    g.ixps_by_metro.entry(metro).or_default().push(id);
    Ok(())
}

#[cfg(test)]
mod tests {
    use crate::config::TopologyConfig;
    use crate::model::SwitchRole;
    use crate::topology::Topology;

    #[test]
    fn ixp_budget_met() {
        let t = Topology::generate(TopologyConfig::tiny()).unwrap();
        assert_eq!(t.ixps.len(), t.config.ixp_budget);
    }

    #[test]
    fn every_partner_facility_has_one_access_switch() {
        let t = Topology::generate(TopologyConfig::default()).unwrap();
        for (iid, ixp) in t.ixps.iter() {
            for fac in &ixp.facilities {
                let access: Vec<_> = ixp
                    .switches
                    .iter()
                    .filter(|s| {
                        let sw = &t.switches[**s];
                        sw.role == SwitchRole::Access && sw.facility == *fac
                    })
                    .collect();
                assert_eq!(access.len(), 1, "{iid} facility {fac} has {}", access.len());
            }
        }
    }

    #[test]
    fn switch_hierarchy_reaches_core() {
        let t = Topology::generate(TopologyConfig::default()).unwrap();
        for (_, ixp) in t.ixps.iter() {
            for sid in &ixp.switches {
                // Walk parents; must terminate at the core within 3 hops.
                let mut cur = *sid;
                let mut hops = 0;
                while let Some(p) = t.switches[cur].parent {
                    cur = p;
                    hops += 1;
                    assert!(hops <= 3, "switch chain too deep");
                }
                assert_eq!(cur, ixp.core);
            }
        }
    }

    #[test]
    fn large_ixps_use_backhaul_layer() {
        let t = Topology::generate(TopologyConfig::paper()).unwrap();
        let large = t
            .ixps
            .values()
            .find(|x| x.facilities.len() > 4)
            .expect("a large ixp exists");
        assert!(large
            .switches
            .iter()
            .any(|s| t.switches[*s].role == SwitchRole::Backhaul));
    }

    #[test]
    fn peering_lans_are_disjoint() {
        let t = Topology::generate(TopologyConfig::default()).unwrap();
        let lans: Vec<_> = t.ixps.values().map(|x| x.peering_lan).collect();
        for (i, a) in lans.iter().enumerate() {
            for b in &lans[i + 1..] {
                assert!(!a.overlaps(*b), "{a} overlaps {b}");
            }
        }
    }

    #[test]
    fn facility_to_ixp_ratio_is_about_three() {
        let t = Topology::generate(TopologyConfig::paper()).unwrap();
        let ratio = t.facilities.len() as f64 / t.ixps.len() as f64;
        assert!((2.0..8.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn some_ixps_inactive() {
        let t = Topology::generate(TopologyConfig::paper()).unwrap();
        let inactive = t.ixps.values().filter(|x| !x.active).count();
        assert!(inactive > 0);
        assert!(inactive < t.ixps.len() / 5);
    }
}
