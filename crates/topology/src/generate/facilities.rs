//! Phase 1: facilities and their operators.
//!
//! The facility budget is split across regions by the configured shares
//! (§3.1.2's 503/860/143/84/73/31 mix at paper scale) and, within each
//! region, across metros by hub tier, yielding the heavy-tailed metro
//! distribution of Figure 3.

use rand::Rng;

use cfs_geo::GeoPoint;
use cfs_types::{MetroId, OperatorId, Result};

use crate::model::{Facility, FacilityOperator};
use crate::names::{facility_dns_code, facility_name, CHAIN_OPERATORS};

use super::{apportion, Gen};

/// Relative facility weight of a metro by hub tier: a tier-0 hub draws
/// roughly 25× the facilities of a small city, giving the Figure 3 skew.
fn tier_weight(tier: u8) -> f64 {
    match tier {
        0 => 26.0,
        1 => 9.0,
        2 => 2.6,
        _ => 1.0,
    }
}

pub(super) fn build(g: &mut Gen) -> Result<()> {
    // Chain operators first; their ids are stable across seeds.
    let chain_ids: Vec<OperatorId> = CHAIN_OPERATORS
        .iter()
        .map(|(name, _)| {
            g.operators.push(FacilityOperator {
                name: (*name).to_string(),
                facilities: Vec::new(),
                metro_interconnected: true,
            })
        })
        .collect();

    // Region budgets, then metro budgets within each region.
    let region_budgets = apportion(g.cfg.facility_budget, &g.cfg.region_shares);

    for (region, budget) in cfs_types::Region::ALL.iter().zip(region_budgets) {
        let metros: Vec<MetroId> = g
            .world
            .metros()
            .iter()
            .filter(|(_, m)| m.region == *region)
            .map(|(id, _)| id)
            .collect();
        if metros.is_empty() {
            continue;
        }
        // ±30% per-metro jitter: real markets differ even within a tier
        // (Figure 3's ladder is ragged, not stepped).
        let weights: Vec<f64> = metros
            .iter()
            .map(|m| {
                let base = tier_weight(g.world.metro(*m).hub_tier);
                base * (0.7 + 0.6 * g.rng.random::<f64>())
            })
            .collect();
        let counts = apportion(budget, &weights);

        for (metro, count) in metros.into_iter().zip(counts) {
            build_metro(g, metro, count, &chain_ids)?;
        }
    }

    Ok(())
}

fn build_metro(g: &mut Gen, metro: MetroId, count: usize, chain_ids: &[OperatorId]) -> Result<()> {
    if count == 0 {
        return Ok(());
    }
    let m = g.world.metro(metro).clone();

    // One local operator per metro with facilities; smaller markets are
    // often served only by locals.
    let local_op = g.operators.push(FacilityOperator {
        name: format!("{}-colo", m.name.replace(' ', "")),
        facilities: Vec::new(),
        metro_interconnected: g.rng.random_bool(0.5),
    });

    let mut per_op_city_ordinal: std::collections::BTreeMap<(OperatorId, String), usize> =
        std::collections::BTreeMap::new();

    for _ in 0..count {
        // Chains dominate big markets; locals dominate small ones.
        let chain_share = match m.hub_tier {
            0 => 0.75,
            1 => 0.6,
            2 => 0.4,
            _ => 0.2,
        };
        let operator = if g.rng.random_bool(chain_share) {
            chain_ids[g.rng.random_range(0..chain_ids.len())]
        } else {
            local_op
        };

        // Place the building near a random member city of the metro.
        let city = m.cities[g.rng.random_range(0..m.cities.len())];
        let c = g.world.city(city);
        let jitter = |rng: &mut rand_chacha::ChaCha20Rng| (rng.random::<f64>() - 0.5) * 0.12;
        let location = GeoPoint::new(
            c.location.lat + jitter(&mut g.rng),
            c.location.lon + jitter(&mut g.rng),
        );

        let (op_name, op_prefix) = {
            let op = &g.operators[operator];
            let prefix = CHAIN_OPERATORS
                .iter()
                .find(|(n, _)| *n == op.name)
                .map(|(_, p)| (*p).to_string())
                .unwrap_or_else(|| "lc".to_string());
            (op.name.clone(), prefix)
        };
        let iata = c.iata.clone();
        let ordinal = per_op_city_ordinal
            .entry((operator, iata.clone()))
            .and_modify(|o| *o += 1)
            .or_insert(1);
        let ordinal = *ordinal;

        let facility = Facility {
            name: facility_name(&op_name, &iata, ordinal),
            operator,
            city,
            metro,
            region: c.region,
            location,
            carrier_neutral: g.rng.random_bool(0.85),
            dns_code: facility_dns_code(&op_prefix, &iata, ordinal),
        };
        let fid = g.facilities.push(facility);
        g.operators[operator].facilities.push(fid);
        g.facs_by_metro.entry(metro).or_default().push(fid);
    }

    Ok(())
}

#[cfg(test)]
mod tests {
    use crate::config::TopologyConfig;
    use crate::topology::Topology;
    use cfs_types::Region;

    #[test]
    fn budget_is_met_exactly() {
        let t = Topology::generate(TopologyConfig::tiny()).unwrap();
        assert_eq!(t.facilities.len(), t.config.facility_budget);
    }

    #[test]
    fn region_mix_follows_shares() {
        let t = Topology::generate(TopologyConfig::default()).unwrap();
        let count = |r: Region| t.facilities.values().filter(|f| f.region == r).count();
        assert!(count(Region::Europe) > count(Region::NorthAmerica));
        assert!(count(Region::NorthAmerica) > count(Region::Asia));
        assert!(count(Region::Africa) >= 1);
    }

    #[test]
    fn hubs_dominate() {
        let t = Topology::generate(TopologyConfig::default()).unwrap();
        let mut per_metro = std::collections::BTreeMap::new();
        for f in t.facilities.values() {
            *per_metro.entry(f.metro).or_insert(0usize) += 1;
        }
        let max = per_metro.values().max().copied().unwrap();
        let median = {
            let mut v: Vec<usize> = per_metro.values().copied().collect();
            v.sort_unstable();
            v[v.len() / 2]
        };
        assert!(
            max >= 5 * median,
            "max {max} median {median} — distribution not heavy-tailed"
        );
    }

    #[test]
    fn operators_list_their_facilities() {
        let t = Topology::generate(TopologyConfig::tiny()).unwrap();
        for (fid, f) in t.facilities.iter() {
            assert!(t.operators[f.operator].facilities.contains(&fid));
        }
    }

    #[test]
    fn facility_names_unique() {
        let t = Topology::generate(TopologyConfig::default()).unwrap();
        let names: std::collections::BTreeSet<&str> =
            t.facilities.values().map(|f| f.name.as_str()).collect();
        assert_eq!(names.len(), t.facilities.len());
    }
}
