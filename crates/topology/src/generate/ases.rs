//! Phase 3: autonomous systems — skeletons, sibling pairs, facility
//! footprints, routers, and IXP memberships.

use std::collections::BTreeMap;

use rand::seq::SliceRandom;
use rand::Rng;

use cfs_types::{AsClass, Asn, Error, FacilityId, IxpId, Region, Result};

use crate::model::{AsNode, DnsStyle, IfaceKind, IxpMembership, RouterLocation};
use crate::names::{as_name, asn_base, PAPER_TARGETS};

use super::addressing::AsAddressPlan;
use super::{weighted_index, Gen};

/// Home-region draw weights (Atlas-era Internet: Europe/NA heavy).
const HOME_REGION_WEIGHTS: [f64; 6] = [0.28, 0.36, 0.15, 0.07, 0.08, 0.06];

/// Class creation order: resellers first so remote peering can ride on
/// their memberships.
const CLASS_ORDER: [AsClass; 7] = [
    AsClass::Reseller,
    AsClass::Tier1,
    AsClass::Transit,
    AsClass::Cdn,
    AsClass::Content,
    AsClass::Access,
    AsClass::Enterprise,
];

pub(super) fn build(g: &mut Gen) -> Result<()> {
    create_skeletons(g)?;
    assign_siblings(g);
    assign_footprints_and_routers(g)?;
    assign_memberships(g)?;
    // Canonical member order inside each IXP.
    for (_, ixp) in g.ixps.iter_mut() {
        ixp.members.sort_by_key(|m| m.asn);
    }
    Ok(())
}

fn class_count(g: &Gen, class: AsClass) -> usize {
    match class {
        AsClass::Tier1 => g.cfg.tier1_count,
        AsClass::Transit => g.cfg.transit_count,
        AsClass::Cdn => g.cfg.cdn_count,
        AsClass::Content => g.cfg.content_count,
        AsClass::Access => g.cfg.access_count,
        AsClass::Enterprise => g.cfg.enterprise_count,
        AsClass::Reseller => g.cfg.reseller_count,
    }
}

fn create_skeletons(g: &mut Gen) -> Result<()> {
    for class in CLASS_ORDER {
        let count = class_count(g, class);
        // Paper-target identities take the first slots of their class.
        let targets: Vec<(u32, &str)> = if g.cfg.named_targets {
            PAPER_TARGETS
                .iter()
                .filter(|(_, _, c)| *c == class)
                .map(|(a, n, _)| (*a, *n))
                .collect()
        } else {
            Vec::new()
        };

        for i in 0..count {
            let (asn, name) = match targets.get(i) {
                Some((a, n)) => (Asn(*a), (*n).to_string()),
                None => (Asn(asn_base(class) + i as u32), as_name(class, i)),
            };
            let home_region = sample_home_region(g, class);
            let plan = AsAddressPlan::new(g.as_pool.alloc()?)?;
            let primary = plan.primary;
            let dns_style = sample_dns_style(g, class, asn);
            g.plans.insert(asn, plan);
            // Large networks announce several blocks (the paper tracks
            // "a list of their IP prefixes … in some cases a content
            // provider uses more than one ASN/prefix").
            let mut prefixes = vec![primary];
            let extra = match class {
                AsClass::Cdn => g.rng.random_range(1..=3),
                AsClass::Tier1 => g.rng.random_range(1..=2),
                AsClass::Transit => usize::from(g.rng.random_bool(0.3)),
                _ => 0,
            };
            for _ in 0..extra {
                prefixes.push(g.as_pool.alloc()?);
            }
            g.ases.insert(
                asn,
                AsNode {
                    asn,
                    name,
                    class,
                    home_region,
                    prefixes,
                    facilities: Vec::new(),
                    ixps: Vec::new(),
                    routers: Vec::new(),
                    dns_style,
                    sibling: None,
                },
            );
        }
    }
    Ok(())
}

fn sample_home_region(g: &mut Gen, class: AsClass) -> Region {
    // Globals skew toward the big interconnection markets.
    let weights = match class {
        AsClass::Tier1 | AsClass::Cdn => [0.45, 0.40, 0.10, 0.02, 0.02, 0.01],
        _ => HOME_REGION_WEIGHTS,
    };
    Region::ALL[weighted_index(&mut g.rng, &weights)]
}

fn sample_dns_style(g: &mut Gen, class: AsClass, asn: Asn) -> DnsStyle {
    // The Google-like CDN famously has no PTR records on peering
    // interfaces (§7: "DNS entries are not available for many IP
    // addresses involved in interconnections, including Google's").
    if asn == Asn(15169) {
        return DnsStyle::None;
    }
    let x: f64 = g.rng.random();
    match class {
        AsClass::Cdn => {
            if x < 0.6 {
                DnsStyle::None
            } else {
                DnsStyle::Opaque
            }
        }
        AsClass::Tier1 => {
            if x < 0.30 {
                DnsStyle::FacilityCoded
            } else if x < 0.70 {
                DnsStyle::CityCoded
            } else {
                DnsStyle::Opaque
            }
        }
        AsClass::Transit => {
            if x < 0.25 {
                DnsStyle::FacilityCoded
            } else if x < 0.60 {
                DnsStyle::CityCoded
            } else if x < 0.90 {
                DnsStyle::Opaque
            } else {
                DnsStyle::None
            }
        }
        AsClass::Content => {
            if x < 0.5 {
                DnsStyle::Opaque
            } else if x < 0.8 {
                DnsStyle::None
            } else {
                DnsStyle::CityCoded
            }
        }
        AsClass::Access => {
            if x < 0.40 {
                DnsStyle::Opaque
            } else if x < 0.65 {
                DnsStyle::CityCoded
            } else {
                DnsStyle::None
            }
        }
        AsClass::Enterprise => {
            if x < 0.6 {
                DnsStyle::None
            } else {
                DnsStyle::Opaque
            }
        }
        AsClass::Reseller => DnsStyle::Opaque,
    }
}

fn assign_siblings(g: &mut Gen) {
    // Pair up a fraction of transit/access ASes as siblings sharing
    // infrastructure address space (§4.1 IP-to-ASN conflicts).
    let candidates: Vec<Asn> = g
        .ases
        .values()
        .filter(|n| matches!(n.class, AsClass::Transit | AsClass::Access))
        .map(|n| n.asn)
        .collect();
    let n_pairs = ((candidates.len() as f64 * g.cfg.sibling_fraction) / 2.0).round() as usize;
    let mut pool = candidates;
    pool.shuffle(&mut g.rng);
    for pair in pool.chunks(2).take(n_pairs) {
        if let [a, b] = pair {
            g.ases.get_mut(a).expect("exists").sibling = Some(*b);
            g.ases.get_mut(b).expect("exists").sibling = Some(*a);
            // `b` draws backbone addresses from `a`'s plan.
            g.infra_source.insert(*b, *a);
        }
    }
}

/// Scale factor relating this config's facility budget to the paper's
/// dataset; AS footprints shrink proportionally at smaller scales.
fn footprint_scale(g: &Gen) -> f64 {
    (g.cfg.facility_budget as f64 / 1694.0).clamp(0.05, 2.0)
}

fn assign_footprints_and_routers(g: &mut Gen) -> Result<()> {
    let asns: Vec<Asn> = g.ases.keys().copied().collect();
    let s = footprint_scale(g);

    for asn in asns {
        let (class, home) = {
            let n = &g.ases[&asn];
            (n.class, n.home_region)
        };
        let facilities = match class {
            AsClass::Tier1 => {
                let n = (40.0 * s) as usize + g.rng.random_range(4..12);
                sample_global(g, n)
            }
            AsClass::Cdn => {
                let n = (34.0 * s) as usize + g.rng.random_range(3..10);
                sample_global(g, n)
            }
            AsClass::Transit => {
                let n = ((8.0 * s) as usize + g.rng.random_range(2..6)).max(2);
                sample_regional(g, home, n, 0.8)
            }
            AsClass::Content => {
                let n = g.rng.random_range(1..=4);
                sample_regional(g, home, n, 0.9)
            }
            AsClass::Access => {
                let n = g.rng.random_range(1..=3);
                sample_regional(g, home, n, 1.0)
            }
            AsClass::Enterprise => {
                let n = g.rng.random_range(1..=2);
                sample_regional(g, home, n, 1.0)
            }
            AsClass::Reseller => sample_big_ixp_facilities(g, 4 + (8.0 * s) as usize),
        };

        let mut facilities = facilities;
        facilities.sort();
        facilities.dedup();

        // One border router per facility of presence.
        for fac in &facilities {
            let coords = g.facilities[*fac].location;
            let ipid = g.sample_ipid(class);
            g.new_router(asn, RouterLocation::Facility(*fac), coords, ipid)?;
        }
        g.ases.get_mut(&asn).expect("exists").facilities = facilities;

        // Access networks also run aggregation PoPs outside any listed
        // facility (where home-probe vantage points attach).
        if class == AsClass::Access {
            let n_pops = g.rng.random_range(1..=2);
            let cities = g.world.cities_in_region(home);
            for _ in 0..n_pops {
                let city = cities[g.rng.random_range(0..cities.len())];
                let coords = g.world.city(city).location;
                let ipid = g.sample_ipid(class);
                g.new_router(asn, RouterLocation::PopCity(city), coords, ipid)?;
            }
        }
    }
    Ok(())
}

/// Samples `n` facilities world-wide, uniformly (hub metros naturally
/// dominate because they contain more facilities). Carrier-operated
/// (non-neutral) facilities are retried once, biasing toward neutral ones.
fn sample_global(g: &mut Gen, n: usize) -> Vec<FacilityId> {
    let total = g.facilities.len();
    let mut out = Vec::with_capacity(n);
    for _ in 0..n.max(1) {
        let mut pick = FacilityId::new(g.rng.random_range(0..total) as u32);
        if !g.facilities[pick].carrier_neutral {
            pick = FacilityId::new(g.rng.random_range(0..total) as u32);
        }
        out.push(pick);
    }
    out
}

/// Samples `n` facilities, a fraction `home_bias` of them from the home
/// region.
fn sample_regional(g: &mut Gen, home: Region, n: usize, home_bias: f64) -> Vec<FacilityId> {
    let home_facs: Vec<FacilityId> = g
        .facilities
        .iter()
        .filter(|(_, f)| f.region == home)
        .map(|(id, _)| id)
        .collect();
    let mut out = Vec::with_capacity(n);
    for _ in 0..n.max(1) {
        if !home_facs.is_empty() && g.rng.random_bool(home_bias) {
            out.push(home_facs[g.rng.random_range(0..home_facs.len())]);
        } else {
            out.push(FacilityId::new(
                g.rng.random_range(0..g.facilities.len()) as u32
            ));
        }
    }
    out
}

/// Resellers colocate at the primary facilities of the largest exchanges.
fn sample_big_ixp_facilities(g: &mut Gen, n: usize) -> Vec<FacilityId> {
    let mut ixps: Vec<IxpId> = g
        .ixps
        .iter()
        .filter(|(_, x)| x.active)
        .map(|(id, _)| id)
        .collect();
    ixps.sort_by_key(|id| std::cmp::Reverse(g.ixps[*id].facilities.len()));
    ixps.into_iter()
        .take(n.max(1))
        .map(|id| g.ixps[id].facilities[0])
        .collect()
}

// ---------------------------------------------------------------------
// IXP memberships
// ---------------------------------------------------------------------

fn assign_memberships(g: &mut Gen) -> Result<()> {
    // Facility → active IXPs partnering with it.
    let mut partner_index: BTreeMap<FacilityId, Vec<IxpId>> = BTreeMap::new();
    for (id, ixp) in g.ixps.iter() {
        if !ixp.active {
            continue;
        }
        for f in &ixp.facilities {
            partner_index.entry(*f).or_default().push(id);
        }
    }

    // Resellers first (remote members need them), then everyone else.
    let mut roster: Vec<Asn> = g.ases.keys().copied().collect();
    roster.sort_by_key(|asn| {
        let class = g.ases[asn].class;
        (
            CLASS_ORDER
                .iter()
                .position(|c| *c == class)
                .expect("class listed"),
            *asn,
        )
    });

    let s_ixp = (g.cfg.ixp_budget as f64 / 368.0).clamp(0.05, 2.0);

    for asn in roster {
        let class = g.ases[&asn].class;
        let target = match class {
            AsClass::Reseller => usize::MAX, // join everywhere they colocated
            AsClass::Cdn => ((24.0 * s_ixp) as usize + g.rng.random_range(2..8)).max(3),
            AsClass::Tier1 => g.rng.random_range(4..=10),
            AsClass::Transit => g.rng.random_range(3..=(3 + (9.0 * s_ixp) as usize).max(4)),
            AsClass::Content => g.rng.random_range(1..=3),
            AsClass::Access => g.rng.random_range(1..=3),
            AsClass::Enterprise => {
                if g.rng.random_bool(0.3) {
                    1
                } else {
                    0
                }
            }
        };
        if target == 0 {
            continue;
        }

        // Local candidates: active IXPs partnered with a presence
        // facility. Each exchange is joined at the AS's presence facility
        // shared with the *most* of its other candidate exchanges —
        // networks consolidate ports onto one router where they can,
        // which is what makes 11.9% of the paper's public-peering routers
        // span several exchanges.
        let mut options: BTreeMap<IxpId, Vec<FacilityId>> = BTreeMap::new();
        for fac in &g.ases[&asn].facilities {
            if let Some(ixps) = partner_index.get(fac) {
                for i in ixps {
                    options.entry(*i).or_default().push(*fac);
                }
            }
        }
        let mut fac_popularity: BTreeMap<FacilityId, usize> = BTreeMap::new();
        for facs in options.values() {
            for f in facs {
                *fac_popularity.entry(*f).or_default() += 1;
            }
        }
        let mut locals: Vec<(IxpId, FacilityId)> = options
            .iter()
            .map(|(ixp, facs)| {
                let best = facs
                    .iter()
                    .copied()
                    .max_by_key(|f| (fac_popularity[f], std::cmp::Reverse(f.raw())))
                    .expect("non-empty facility list");
                (*ixp, best)
            })
            .collect();
        // Large exchanges first — where the peers are.
        locals.sort_by_key(|(i, _)| std::cmp::Reverse(g.ixps[*i].facilities.len()));

        let mut joined = 0usize;
        for (ixp, fac) in locals {
            if joined >= target {
                break;
            }
            join_local(g, asn, ixp, fac, true)?;
            joined += 1;
            // Second port at another partner facility (the Figure 6 toy:
            // one member reachable at two buildings of the same fabric) —
            // infrastructure-heavy members dual-home their IXP presence
            // for redundancy, buying into a second building if needed.
            let dual_homes = matches!(class, AsClass::Cdn | AsClass::Transit | AsClass::Tier1)
                && g.rng.random_bool(0.35);
            if dual_homes {
                let second = g.ases[&asn]
                    .facilities
                    .iter()
                    .copied()
                    .find(|f| *f != fac && g.ixps[ixp].facilities.contains(f))
                    .or_else(|| {
                        // Extend presence into another partner building.
                        g.ixps[ixp].facilities.iter().copied().find(|f| *f != fac)
                    });
                if let Some(f2) = second {
                    if !g.routers_at.contains_key(&(asn, f2)) {
                        let coords = g.facilities[f2].location;
                        let ipid = g.sample_ipid(class);
                        let _ = g.new_router(asn, RouterLocation::Facility(f2), coords, ipid)?;
                        let node = g.ases.get_mut(&asn).expect("exists");
                        node.facilities.push(f2);
                        node.facilities.sort();
                        node.facilities.dedup();
                    }
                    join_local(g, asn, ixp, f2, false)?;
                }
            }
        }

        // Remote peering: reach a distant exchange through a reseller.
        let wants_remote = match class {
            AsClass::Access | AsClass::Content => g.rng.random_bool(g.cfg.remote_peering_fraction),
            AsClass::Transit => g.rng.random_bool(g.cfg.remote_peering_fraction / 2.0),
            AsClass::Cdn => g.rng.random_bool(0.1),
            _ => false,
        };
        if wants_remote || (joined == 0 && target > 0 && class == AsClass::Access) {
            let _ = join_remote(g, asn);
        }
    }
    Ok(())
}

fn join_local(g: &mut Gen, asn: Asn, ixp: IxpId, fac: FacilityId, primary: bool) -> Result<()> {
    if primary && g.ixps[ixp].member(asn).is_some() {
        return Ok(());
    }
    let router = *g
        .routers_at
        .get(&(asn, fac))
        .ok_or_else(|| Error::invalid(format!("{asn} has no router at {fac}")))?;
    let fabric_ip = g
        .fabric
        .get_mut(&ixp)
        .ok_or_else(|| Error::not_found("fabric alloc", ixp))?
        .alloc()?;
    let iface = g.add_iface(router, asn, fabric_ip, IfaceKind::IxpFabric(ixp));
    let access_switch = access_switch_at(g, ixp, fac)?;
    let uses_route_server = match g.ixps[ixp].member(asn) {
        // Secondary ports inherit the member's session setup.
        Some(existing) => existing.uses_route_server,
        None => g.ixps[ixp].has_route_server && sample_rs(g, asn),
    };
    g.ixps[ixp].members.push(IxpMembership {
        asn,
        fabric_ip,
        router,
        iface,
        access_switch,
        remote_via: None,
        uses_route_server,
    });
    if primary {
        g.ases.get_mut(&asn).expect("exists").ixps.push(ixp);
    }
    Ok(())
}

fn join_remote(g: &mut Gen, asn: Asn) -> Result<()> {
    let home = g.ases[&asn].home_region;
    // Candidate exchanges: active, has at least one reseller member, and
    // far from home (that is the point of remote peering — and what the
    // RTT test of §4.2 can detect).
    let candidates: Vec<(IxpId, Asn)> = g
        .ixps
        .iter()
        .filter(|(_, x)| x.active && x.region != home)
        .filter_map(|(id, x)| {
            x.members
                .iter()
                .find(|m| g.ases[&m.asn].class == AsClass::Reseller && m.remote_via.is_none())
                .map(|m| (id, m.asn))
        })
        .filter(|(id, _)| !g.ases[&asn].ixps.contains(id))
        .collect();
    let Some(&(ixp, reseller)) = candidates.get(g.rng.random_range(0..candidates.len().max(1)))
    else {
        return Ok(()); // no reseller reachable; skip silently
    };

    // The member's router stays wherever the AS already is: its first
    // router (facility or PoP) — far from the IXP.
    let router = *g.ases[&asn]
        .routers
        .first()
        .ok_or_else(|| Error::invalid(format!("{asn} has no router for remote peering")))?;
    let fabric_ip = g
        .fabric
        .get_mut(&ixp)
        .ok_or_else(|| Error::not_found("fabric alloc", ixp))?
        .alloc()?;
    let iface = g.add_iface(router, asn, fabric_ip, IfaceKind::IxpFabric(ixp));
    let reseller_switch = g.ixps[ixp]
        .member(reseller)
        .expect("reseller is a member")
        .access_switch;
    let uses_route_server = g.ixps[ixp].has_route_server && sample_rs(g, asn);
    g.ixps[ixp].members.push(IxpMembership {
        asn,
        fabric_ip,
        router,
        iface,
        access_switch: reseller_switch,
        remote_via: Some(reseller),
        uses_route_server,
    });
    g.ases.get_mut(&asn).expect("exists").ixps.push(ixp);
    Ok(())
}

fn sample_rs(g: &mut Gen, asn: Asn) -> bool {
    let p = match g.ases[&asn].class {
        AsClass::Cdn | AsClass::Access | AsClass::Content => 0.9,
        AsClass::Transit => 0.6,
        AsClass::Tier1 => 0.25,
        AsClass::Enterprise => 0.8,
        AsClass::Reseller => 0.5,
    };
    g.rng.random_bool(p)
}

/// The access switch of `ixp` at `fac`.
fn access_switch_at(g: &Gen, ixp: IxpId, fac: FacilityId) -> Result<cfs_types::SwitchId> {
    g.ixps[ixp]
        .switches
        .iter()
        .copied()
        .find(|s| {
            let sw = &g.switches[*s];
            sw.role == crate::model::SwitchRole::Access && sw.facility == fac
        })
        .ok_or_else(|| Error::invalid(format!("{ixp} has no access switch at {fac}")))
}

#[cfg(test)]
mod tests {
    use crate::config::TopologyConfig;
    use crate::topology::Topology;
    use cfs_types::{AsClass, Asn};

    fn topo() -> Topology {
        Topology::generate(TopologyConfig::default()).unwrap()
    }

    #[test]
    fn paper_targets_exist_with_identities() {
        let t = topo();
        let google = t.as_node(Asn(15169)).unwrap();
        assert_eq!(google.class, AsClass::Cdn);
        assert_eq!(google.dns_style, crate::model::DnsStyle::None);
        let level3 = t.as_node(Asn(3356)).unwrap();
        assert_eq!(level3.class, AsClass::Tier1);
        assert!(level3.facilities.len() > 5, "tier1 footprint too small");
    }

    #[test]
    fn class_counts_match_config() {
        let t = topo();
        for class in AsClass::ALL {
            let want = match class {
                AsClass::Tier1 => t.config.tier1_count,
                AsClass::Transit => t.config.transit_count,
                AsClass::Cdn => t.config.cdn_count,
                AsClass::Content => t.config.content_count,
                AsClass::Access => t.config.access_count,
                AsClass::Enterprise => t.config.enterprise_count,
                AsClass::Reseller => t.config.reseller_count,
            };
            let got = t.ases.values().filter(|n| n.class == class).count();
            assert_eq!(got, want, "{class}");
        }
    }

    #[test]
    fn every_as_has_presence_and_routers() {
        let t = topo();
        for node in t.ases.values() {
            assert!(
                !node.facilities.is_empty(),
                "{} has no facilities",
                node.asn
            );
            assert!(!node.routers.is_empty(), "{} has no routers", node.asn);
            // One router per facility of presence.
            for fac in &node.facilities {
                assert!(
                    node.routers
                        .iter()
                        .any(|r| t.router_facility(*r) == Some(*fac)),
                    "{} missing router at {fac}",
                    node.asn
                );
            }
        }
    }

    #[test]
    fn membership_shapes_match_paper() {
        let t = topo();
        // 54% of ASes at >1 IXP, 66% at >1 facility (§3.1.2) — we accept
        // broad agreement.
        let total = t.ases.len() as f64;
        let multi_fac = t.ases.values().filter(|n| n.facilities.len() > 1).count() as f64 / total;
        assert!(multi_fac > 0.35, "multi-facility share {multi_fac}");
        let member_counts: usize = t.ixps.values().map(|x| x.members.len()).sum();
        assert!(
            member_counts > t.ases.len() / 2,
            "too few memberships: {member_counts}"
        );
    }

    #[test]
    fn remote_members_exist_and_sit_far_from_ixp() {
        let t = topo();
        let mut remote = 0;
        for ixp in t.ixps.values() {
            for m in &ixp.members {
                if let Some(reseller) = m.remote_via {
                    remote += 1;
                    assert_eq!(t.ases[&reseller].class, AsClass::Reseller);
                    // The member's router is not at any partner facility.
                    let rf = t.router_facility(m.router);
                    assert!(
                        rf.is_none() || !ixp.facilities.contains(&rf.unwrap()),
                        "remote member router colocated with the ixp"
                    );
                }
            }
        }
        assert!(remote > 0, "no remote memberships generated");
    }

    #[test]
    fn fabric_ips_unique_within_ixp() {
        let t = topo();
        for ixp in t.ixps.values() {
            let mut ips: Vec<_> = ixp.members.iter().map(|m| m.fabric_ip).collect();
            let before = ips.len();
            ips.sort();
            ips.dedup();
            assert_eq!(ips.len(), before);
        }
    }

    #[test]
    fn siblings_share_infrastructure_space() {
        let t = topo();
        let pair = t.ases.values().find(|n| n.sibling.is_some());
        let Some(node) = pair else {
            // Small configs may round to zero pairs; tolerate but note.
            return;
        };
        let sib = node.sibling.unwrap();
        assert_eq!(t.ases[&sib].sibling, Some(node.asn));
    }

    #[test]
    fn cdns_join_more_ixps_than_enterprises() {
        let t = topo();
        let avg = |class: AsClass| {
            let v: Vec<usize> = t
                .ases
                .values()
                .filter(|n| n.class == class)
                .map(|n| n.ixps.len())
                .collect();
            v.iter().sum::<usize>() as f64 / v.len().max(1) as f64
        };
        assert!(avg(AsClass::Cdn) > avg(AsClass::Enterprise));
        assert!(avg(AsClass::Cdn) > avg(AsClass::Tier1));
    }

    #[test]
    fn inactive_ixps_have_no_members() {
        let t = topo();
        for ixp in t.ixps.values() {
            if !ixp.active {
                assert!(ixp.members.is_empty());
            }
        }
    }
}
