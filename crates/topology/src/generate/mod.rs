//! The ground-truth generator: orchestration and shared context.
//!
//! Generation proceeds bottom-up through four phases —
//! facilities → IXPs → ASes (with routers and IXP memberships) →
//! interconnections — followed by DNS naming and index construction.
//! Every random draw comes from one ChaCha20 stream, so a config (and its
//! seed) identifies a world exactly.

pub(crate) mod addressing;
mod ases;
mod facilities;
mod ixps;
mod links;

use std::collections::BTreeMap;
use std::net::Ipv4Addr;

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha20Rng;

use cfs_geo::{GeoPoint, World};
use cfs_net::{Announcement, HostAllocator, Ipv4Prefix, PrefixTrie, SubnetAllocator};
use cfs_types::{
    Arena, AsClass, Asn, Error, FacilityId, IfaceId, IxpId, LinkId, MetroId, OperatorId, Rel,
    Result, RouterId, SwitchId,
};

use crate::config::TopologyConfig;
use crate::model::{
    AsNode, Facility, FacilityOperator, Iface, IfaceKind, IpIdBehavior, Ixp, Link, Medium, Router,
    RouterLocation, Switch,
};
use crate::topology::{AsAdjacency, Topology};

use addressing::AsAddressPlan;

/// Runs the whole pipeline.
pub(crate) fn generate(config: TopologyConfig) -> Result<Topology> {
    config.validate()?;
    let mut g = Gen::new(config)?;
    facilities::build(&mut g)?;
    ixps::build(&mut g)?;
    ases::build(&mut g)?;
    links::build(&mut g)?;
    crate::dns::assign_names(&mut g);
    g.finish()
}

/// Mutable state shared by the generation phases.
pub(crate) struct Gen {
    pub cfg: TopologyConfig,
    pub rng: ChaCha20Rng,
    pub world: World,

    pub operators: Arena<OperatorId, FacilityOperator>,
    pub facilities: Arena<FacilityId, Facility>,
    pub ixps: Arena<IxpId, Ixp>,
    pub switches: Arena<SwitchId, Switch>,
    pub routers: Arena<RouterId, Router>,
    pub ifaces: Arena<IfaceId, Iface>,
    pub links: Arena<LinkId, Link>,
    pub ases: BTreeMap<Asn, AsNode>,

    pub plans: BTreeMap<Asn, AsAddressPlan>,
    /// Sibling ASes drawing infrastructure addresses from another AS's
    /// plan (the §4.1 contamination).
    pub infra_source: BTreeMap<Asn, Asn>,
    pub as_pool: SubnetAllocator,
    pub ixp_pool: SubnetAllocator,
    pub fabric: BTreeMap<IxpId, HostAllocator>,

    pub facs_by_metro: BTreeMap<MetroId, Vec<FacilityId>>,
    pub ixps_by_metro: BTreeMap<MetroId, Vec<IxpId>>,
    pub routers_at: BTreeMap<(Asn, FacilityId), RouterId>,

    pub adj: BTreeMap<(Asn, Asn), (Rel, Vec<Medium>)>,
}

impl Gen {
    fn new(cfg: TopologyConfig) -> Result<Self> {
        let rng = ChaCha20Rng::seed_from_u64(cfg.seed);
        Ok(Self {
            rng,
            world: World::builtin(),
            operators: Arena::new(),
            facilities: Arena::new(),
            ixps: Arena::new(),
            switches: Arena::new(),
            routers: Arena::new(),
            ifaces: Arena::new(),
            links: Arena::new(),
            ases: BTreeMap::new(),
            plans: BTreeMap::new(),
            infra_source: BTreeMap::new(),
            as_pool: SubnetAllocator::new(Ipv4Prefix::must([16, 0, 0, 0], 4), 16)?,
            ixp_pool: SubnetAllocator::new(Ipv4Prefix::must([185, 0, 0, 0], 10), 22)?,
            fabric: BTreeMap::new(),
            facs_by_metro: BTreeMap::new(),
            ixps_by_metro: BTreeMap::new(),
            routers_at: BTreeMap::new(),
            adj: BTreeMap::new(),
            cfg,
        })
    }

    /// The plan an AS draws *infrastructure* addresses from — its own, or
    /// its sibling's when the pair shares address space.
    fn infra_plan(&mut self, asn: Asn) -> Result<&mut AsAddressPlan> {
        let source = self.infra_source.get(&asn).copied().unwrap_or(asn);
        self.plans
            .get_mut(&source)
            .ok_or_else(|| Error::not_found("address plan", source))
    }

    /// Allocates a backbone/loopback address for `asn`.
    pub fn alloc_backbone(&mut self, asn: Asn) -> Result<Ipv4Addr> {
        self.infra_plan(asn)?.alloc_backbone()
    }

    /// Allocates a point-to-point /31 from `asn`'s space.
    pub fn alloc_ptp(&mut self, asn: Asn) -> Result<Ipv4Prefix> {
        // Point-to-point subnets always come from the AS's own plan: the
        // address *must* map to the allocating AS for the §4.1 pitfall to
        // be modelled correctly.
        self.plans
            .get_mut(&asn)
            .ok_or_else(|| Error::not_found("address plan", asn))?
            .alloc_ptp()
    }

    /// Adds an interface to a router and to the global table.
    pub fn add_iface(
        &mut self,
        router: RouterId,
        asn: Asn,
        ip: Ipv4Addr,
        kind: IfaceKind,
    ) -> IfaceId {
        let id = self.ifaces.push(Iface {
            router,
            asn,
            ip,
            kind,
            dns_name: None,
        });
        self.routers[router].ifaces.push(id);
        id
    }

    /// Creates a router for `asn` at `location` with a loopback and one
    /// backbone interface.
    pub fn new_router(
        &mut self,
        asn: Asn,
        location: RouterLocation,
        coords: GeoPoint,
        ipid: IpIdBehavior,
    ) -> Result<RouterId> {
        let responds = !self.rng.random_bool(self.cfg.silent_router_fraction);
        let rid = self.routers.push(Router {
            asn,
            location,
            coords,
            ifaces: Vec::new(),
            ipid,
            responds,
        });
        let lo = self.alloc_backbone(asn)?;
        self.add_iface(rid, asn, lo, IfaceKind::Loopback);
        let bb = self.alloc_backbone(asn)?;
        self.add_iface(rid, asn, bb, IfaceKind::Backbone);
        if let Some(node) = self.ases.get_mut(&asn) {
            node.routers.push(rid);
        }
        if let RouterLocation::Facility(f) = location {
            self.routers_at.insert((asn, f), rid);
        }
        Ok(rid)
    }

    /// Samples an IP-ID behaviour for a new router. CDN routers are
    /// usually unresponsive to alias probing (the paper's Google case).
    pub fn sample_ipid(&mut self, class: AsClass) -> IpIdBehavior {
        if class == AsClass::Cdn && self.rng.random_bool(0.6) {
            return IpIdBehavior::Unresponsive;
        }
        let x: f64 = self.rng.random();
        if x < self.cfg.ipid_random_fraction {
            IpIdBehavior::Random
        } else if x < self.cfg.ipid_random_fraction + self.cfg.ipid_constant_fraction {
            IpIdBehavior::Constant
        } else {
            IpIdBehavior::SharedCounter {
                rate_per_ms: self.rng.random_range(1..40),
            }
        }
    }

    /// Registers (or extends) an AS-level adjacency. c2p is canonical as
    /// `(customer, provider)`; p2p as `(min, max)`. A p2p registration on
    /// an existing c2p pair is ignored (providers do not also peer with
    /// their customers).
    pub fn add_adjacency(&mut self, a: Asn, b: Asn, rel: Rel, medium: Medium) {
        debug_assert_ne!(a, b, "self-adjacency");
        let key = match rel {
            Rel::CustomerToProvider => (a, b),
            Rel::PeerToPeer => (a.min(b), a.max(b)),
        };
        // Either orientation of an existing c2p blocks a new p2p.
        if rel == Rel::PeerToPeer
            && (self.adj.contains_key(&(a, b)) || self.adj.contains_key(&(b, a)))
        {
            let existing_key = if self.adj.contains_key(&(a, b)) {
                (a, b)
            } else {
                (b, a)
            };
            if let Some((existing_rel, mediums)) = self.adj.get_mut(&existing_key) {
                if *existing_rel == Rel::PeerToPeer && !mediums.contains(&medium) {
                    mediums.push(medium);
                }
            }
            return;
        }
        let entry = self.adj.entry(key).or_insert_with(|| (rel, Vec::new()));
        if !entry.1.contains(&medium) {
            entry.1.push(medium);
        }
    }

    /// Whether the two ASes already have any adjacency.
    pub fn has_adjacency(&self, a: Asn, b: Asn) -> bool {
        self.adj.contains_key(&(a, b)) || self.adj.contains_key(&(b, a))
    }

    /// Consumes the context: builds announcements, indices, sorts tables,
    /// validates, and returns the immutable topology.
    fn finish(self) -> Result<Topology> {
        let Gen {
            cfg,
            world,
            operators,
            facilities,
            ixps,
            switches,
            routers,
            ifaces,
            links,
            mut ases,
            plans,
            adj,
            ..
        } = self;

        // Announcements: every AS announces its prefixes.
        let mut announcements = Vec::new();
        for (asn, node) in &ases {
            for p in &node.prefixes {
                announcements.push(Announcement {
                    prefix: *p,
                    origin: *asn,
                });
            }
        }
        debug_assert_eq!(plans.len(), ases.len());

        // Canonical sorting inside AS records.
        for node in ases.values_mut() {
            node.facilities.sort();
            node.facilities.dedup();
            node.ixps.sort();
            node.ixps.dedup();
            node.routers.sort();
        }

        // Adjacency table in canonical order.
        let mut adjacencies: Vec<AsAdjacency> = adj
            .into_iter()
            .map(|((a, b), (rel, mediums))| AsAdjacency { a, b, rel, mediums })
            .collect();
        adjacencies.sort_by_key(|adj| (adj.a, adj.b));
        let mut adj_index = BTreeMap::new();
        let mut neighbors: BTreeMap<Asn, Vec<usize>> = BTreeMap::new();
        for (i, adj) in adjacencies.iter().enumerate() {
            adj_index.insert((adj.a, adj.b), i);
            neighbors.entry(adj.a).or_default().push(i);
            neighbors.entry(adj.b).or_default().push(i);
        }

        // IP → interface index (uniqueness enforced).
        let mut iface_by_ip = BTreeMap::new();
        for (id, iface) in ifaces.iter() {
            if iface_by_ip.insert(iface.ip, id).is_some() {
                return Err(Error::invalid(format!(
                    "duplicate interface address {}",
                    iface.ip
                )));
            }
        }

        // IXP peering-LAN trie.
        let mut ixp_prefixes = PrefixTrie::new();
        for (id, ixp) in ixps.iter() {
            ixp_prefixes.insert(ixp.peering_lan, id);
        }

        let topo = Topology {
            config: cfg,
            world,
            operators,
            facilities,
            ixps,
            switches,
            ases,
            routers,
            ifaces,
            links,
            adjacencies,
            announcements,
            iface_by_ip,
            adj_index,
            neighbors,
            ixp_prefixes,
        };
        topo.validate()?;
        Ok(topo)
    }
}

/// Splits `total` into integer parts proportional to `weights` (largest
/// remainder method). Zero weights get zero.
pub(crate) fn apportion(total: usize, weights: &[f64]) -> Vec<usize> {
    let sum: f64 = weights.iter().sum();
    if sum <= 0.0 || total == 0 {
        return vec![0; weights.len()];
    }
    let exact: Vec<f64> = weights.iter().map(|w| w / sum * total as f64).collect();
    let mut parts: Vec<usize> = exact.iter().map(|e| e.floor() as usize).collect();
    let assigned: usize = parts.iter().sum();
    // Distribute the remainder to the largest fractional parts.
    let mut order: Vec<usize> = (0..weights.len()).collect();
    order.sort_by(|&i, &j| {
        let fi = exact[i] - exact[i].floor();
        let fj = exact[j] - exact[j].floor();
        fj.partial_cmp(&fi)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(i.cmp(&j))
    });
    for &i in order.iter().take(total - assigned) {
        parts[i] += 1;
    }
    parts
}

/// Draws an index with probability proportional to `weights`.
pub(crate) fn weighted_index(rng: &mut ChaCha20Rng, weights: &[f64]) -> usize {
    let sum: f64 = weights.iter().sum();
    debug_assert!(sum > 0.0, "weighted_index needs positive weights");
    let mut x: f64 = rng.random::<f64>() * sum;
    for (i, w) in weights.iter().enumerate() {
        x -= w;
        if x <= 0.0 {
            return i;
        }
    }
    weights.len() - 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn apportion_hits_total_exactly() {
        let parts = apportion(10, &[1.0, 1.0, 1.0]);
        assert_eq!(parts.iter().sum::<usize>(), 10);
        assert!(parts.iter().all(|p| *p == 3 || *p == 4));

        let parts = apportion(1694, &[503.0, 860.0, 143.0, 84.0, 73.0, 31.0]);
        assert_eq!(parts.iter().sum::<usize>(), 1694);
        assert_eq!(parts, vec![503, 860, 143, 84, 73, 31]);
    }

    #[test]
    fn apportion_zero_cases() {
        assert_eq!(apportion(0, &[1.0, 2.0]), vec![0, 0]);
        assert_eq!(apportion(5, &[0.0, 0.0]), vec![0, 0]);
        assert_eq!(apportion(5, &[0.0, 1.0]), vec![0, 5]);
    }

    #[test]
    fn weighted_index_respects_zero_weights() {
        let mut rng = ChaCha20Rng::seed_from_u64(1);
        for _ in 0..100 {
            let i = weighted_index(&mut rng, &[0.0, 1.0, 0.0]);
            assert_eq!(i, 1);
        }
    }

    #[test]
    fn weighted_index_covers_support() {
        let mut rng = ChaCha20Rng::seed_from_u64(2);
        let mut seen = [false; 3];
        for _ in 0..500 {
            seen[weighted_index(&mut rng, &[1.0, 1.0, 1.0])] = true;
        }
        assert_eq!(seen, [true; 3]);
    }
}
