//! Generator configuration.
//!
//! Two presets matter: [`TopologyConfig::default`], a laptop-friendly
//! quarter-scale ecosystem used by tests and examples, and
//! [`TopologyConfig::paper`], which reproduces the dataset sizes of §3.1
//! (1,694 facilities, 368 IXPs, region mix) for the experiment harness.

use cfs_types::{Error, Region, Result};

/// All knobs of the ground-truth generator. Every distribution is driven
/// by the single `seed`, so equal configs generate identical topologies.
#[derive(Clone, Debug, PartialEq)]
pub struct TopologyConfig {
    /// RNG seed; everything else being equal, the same seed reproduces
    /// the same world bit-for-bit.
    pub seed: u64,

    /// Total number of interconnection facilities (paper: 1,694).
    pub facility_budget: usize,
    /// Total number of IXPs (paper: 368). The generator keeps roughly a
    /// 3:1 facility:IXP ratio per metro, as observed in §3.1.2.
    pub ixp_budget: usize,
    /// Fraction of facility budget per region, in [`Region::ALL`] order
    /// (paper: 503/860/143/84/73/31 of 1,694).
    pub region_shares: [f64; 6],

    /// Number of Tier-1 backbones (five of them take the paper's
    /// transit-target identities when `named_targets` is set).
    pub tier1_count: usize,
    /// Number of mid-tier transit providers.
    pub transit_count: usize,
    /// Number of CDNs (five take the paper's content-target identities).
    pub cdn_count: usize,
    /// Number of content/hosting networks.
    pub content_count: usize,
    /// Number of access / eyeball networks.
    pub access_count: usize,
    /// Number of enterprise edge networks.
    pub enterprise_count: usize,
    /// Number of IXP port resellers (remote-peering transport partners).
    pub reseller_count: usize,

    /// Give the ten paper targets their real identities (AS15169
    /// Google-like CDN, AS3356 Level3-like Tier-1, …).
    pub named_targets: bool,

    /// Fraction of IXP memberships connected through a reseller rather
    /// than a local port (paper cites ~20% of AMS-IX members in 2013).
    pub remote_peering_fraction: f64,
    /// Fraction of private interconnects realized as tethering VLANs over
    /// an IXP fabric instead of physical cross-connects.
    pub tethering_fraction: f64,
    /// Fraction of generated IXPs that are defunct but still present in
    /// databases (PCH marks them inactive; the KB assembly filters them).
    pub inactive_ixp_fraction: f64,
    /// Fraction of ASes that share address space with a sibling,
    /// producing IP-to-ASN conflicts (§4.1).
    pub sibling_fraction: f64,

    /// Fraction of routers that never send ICMP TTL-exceeded.
    pub silent_router_fraction: f64,
    /// Fraction of routers with random IP-ID (defeats MIDAR).
    pub ipid_random_fraction: f64,
    /// Fraction of routers with constant IP-ID.
    pub ipid_constant_fraction: f64,
}

impl Default for TopologyConfig {
    fn default() -> Self {
        Self {
            seed: 0xCF5_2015,
            facility_budget: 420,
            ixp_budget: 92,
            region_shares: PAPER_REGION_SHARES,
            tier1_count: 6,
            transit_count: 28,
            cdn_count: 6,
            content_count: 22,
            access_count: 120,
            enterprise_count: 40,
            reseller_count: 4,
            named_targets: true,
            remote_peering_fraction: 0.18,
            tethering_fraction: 0.12,
            inactive_ixp_fraction: 0.05,
            sibling_fraction: 0.06,
            silent_router_fraction: 0.03,
            ipid_random_fraction: 0.10,
            ipid_constant_fraction: 0.05,
        }
    }
}

/// Region facility shares measured from the paper's dataset
/// (North America, Europe, Asia, Oceania, South America, Africa).
pub const PAPER_REGION_SHARES: [f64; 6] = [
    503.0 / 1694.0,
    860.0 / 1694.0,
    143.0 / 1694.0,
    84.0 / 1694.0,
    73.0 / 1694.0,
    31.0 / 1694.0,
];

impl TopologyConfig {
    /// Full paper-scale configuration (§3.1: 1,694 facilities, 368 IXPs).
    pub fn paper() -> Self {
        Self {
            facility_budget: 1694,
            ixp_budget: 368,
            tier1_count: 10,
            transit_count: 110,
            cdn_count: 15,
            content_count: 90,
            access_count: 500,
            enterprise_count: 200,
            reseller_count: 8,
            ..Self::default()
        }
    }

    /// A tiny world for fast unit tests (a few dozen facilities).
    pub fn tiny() -> Self {
        Self {
            facility_budget: 60,
            ixp_budget: 14,
            tier1_count: 3,
            transit_count: 8,
            cdn_count: 3,
            content_count: 6,
            access_count: 25,
            enterprise_count: 8,
            reseller_count: 2,
            named_targets: false,
            ..Self::default()
        }
    }

    /// Returns the same config with a different seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Total AS count across all classes.
    pub fn total_ases(&self) -> usize {
        self.tier1_count
            + self.transit_count
            + self.cdn_count
            + self.content_count
            + self.access_count
            + self.enterprise_count
            + self.reseller_count
    }

    /// The facility share of `region`.
    pub fn region_share(&self, region: Region) -> f64 {
        let idx = Region::ALL
            .iter()
            .position(|r| *r == region)
            .expect("region in ALL");
        self.region_shares[idx]
    }

    /// Validates internal consistency; called by the generator before any
    /// randomness is drawn.
    pub fn validate(&self) -> Result<()> {
        if self.facility_budget == 0 {
            return Err(Error::config("facility_budget must be > 0"));
        }
        if self.ixp_budget == 0 {
            return Err(Error::config("ixp_budget must be > 0"));
        }
        if self.ixp_budget > self.facility_budget {
            return Err(Error::config("ixp_budget cannot exceed facility_budget"));
        }
        if self.tier1_count < 2 {
            return Err(Error::config("need at least 2 tier1 networks"));
        }
        if self.named_targets && (self.tier1_count < 5 || self.cdn_count < 5) {
            return Err(Error::config(
                "named_targets requires at least 5 tier1 and 5 cdn networks",
            ));
        }
        if self.total_ases() > 40_000 {
            return Err(Error::config(
                "total AS count exceeds supported scale (40k)",
            ));
        }
        let share_sum: f64 = self.region_shares.iter().sum();
        if (share_sum - 1.0).abs() > 1e-6 {
            return Err(Error::config(format!(
                "region_shares sum to {share_sum}, expected 1.0"
            )));
        }
        for f in [
            self.remote_peering_fraction,
            self.tethering_fraction,
            self.inactive_ixp_fraction,
            self.sibling_fraction,
            self.silent_router_fraction,
            self.ipid_random_fraction,
            self.ipid_constant_fraction,
        ] {
            if !(0.0..=1.0).contains(&f) {
                return Err(Error::config(format!("fraction {f} outside [0, 1]")));
            }
        }
        if self.ipid_random_fraction + self.ipid_constant_fraction > 1.0 {
            return Err(Error::config("ipid fractions exceed 1.0 combined"));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate() {
        TopologyConfig::default().validate().unwrap();
        TopologyConfig::paper().validate().unwrap();
        TopologyConfig::tiny().validate().unwrap();
    }

    #[test]
    fn paper_scale_matches_dataset() {
        let c = TopologyConfig::paper();
        assert_eq!(c.facility_budget, 1694);
        assert_eq!(c.ixp_budget, 368);
        // Europe share is the largest, as in §3.1.2.
        assert!(c.region_share(Region::Europe) > c.region_share(Region::NorthAmerica));
        assert!(c.region_share(Region::Africa) < 0.05);
    }

    #[test]
    fn invalid_configs_rejected() {
        let c = TopologyConfig {
            facility_budget: 0,
            ..TopologyConfig::default()
        };
        assert!(c.validate().is_err());

        let mut c = TopologyConfig::default();
        c.ixp_budget = c.facility_budget + 1;
        assert!(c.validate().is_err());

        let c = TopologyConfig {
            remote_peering_fraction: 1.5,
            ..TopologyConfig::default()
        };
        assert!(c.validate().is_err());

        let c = TopologyConfig {
            region_shares: [0.5, 0.5, 0.5, 0.0, 0.0, 0.0],
            ..TopologyConfig::default()
        };
        assert!(c.validate().is_err());

        let c = TopologyConfig {
            named_targets: true,
            cdn_count: 2,
            ..TopologyConfig::default()
        };
        assert!(c.validate().is_err());
    }

    #[test]
    fn with_seed_changes_only_seed() {
        let a = TopologyConfig::default();
        let b = a.clone().with_seed(99);
        assert_ne!(a.seed, b.seed);
        assert_eq!(a.facility_budget, b.facility_budget);
    }

    #[test]
    fn total_ases_sums_classes() {
        let c = TopologyConfig::tiny();
        assert_eq!(c.total_ases(), 3 + 8 + 3 + 6 + 25 + 8 + 2);
    }
}
