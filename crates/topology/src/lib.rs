//! # cfs-topology
//!
//! The ground-truth Internet model: a generative substitute for the
//! physical peering ecosystem the paper measures.
//!
//! A generated [`Topology`] contains interconnection facilities with
//! operators and coordinates, IXPs with their switch hierarchies
//! (core / backhaul / access, Figure 6 of the paper), autonomous systems
//! with business-class-shaped footprints, routers with addressed
//! interfaces (including IXP fabric addresses and point-to-point
//! private-peering subnets), the AS-level adjacency graph with its
//! physical instantiations, and BGP announcements with the realistic
//! contamination (§4.1) that the alias-resolution majority vote exists to
//! correct.
//!
//! Nothing downstream mutates the topology; inference code is only ever
//! given *views* of it (public knowledge bases from `cfs-kb`, probe
//! responses from `cfs-traceroute`), never the ground truth itself.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod config;
pub mod dns;
mod generate;
pub mod model;
pub mod names;
pub mod schedule;
mod topology;

pub use config::TopologyConfig;
pub use model::{
    AsNode, DnsStyle, EndPoint, Facility, FacilityOperator, Iface, IfaceKind, IpIdBehavior, Ixp,
    IxpMembership, Link, Medium, Router, RouterLocation, Switch, SwitchRole,
};
pub use schedule::{
    Disruption, DisruptionKind, EventSchedule, ScheduleConfig, ScheduleIntensity, EPOCH_MS,
};
pub use topology::{AsAdjacency, Topology};
