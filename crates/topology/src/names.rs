//! Name generation for generated entities, plus the identities of the ten
//! paper target networks.

use cfs_types::{AsClass, Asn};

/// The ten target networks of §5, with their real AS numbers: five content
/// /CDN networks ("responsible for over half the traffic volume in North
/// America and Europe") and five global transit providers.
pub const PAPER_TARGETS: &[(u32, &str, AsClass)] = &[
    (15169, "google-like-cdn", AsClass::Cdn),
    (10310, "yahoo-like-cdn", AsClass::Cdn),
    (20940, "akamai-like-cdn", AsClass::Cdn),
    (22822, "limelight-like-cdn", AsClass::Cdn),
    (13335, "cloudflare-like-cdn", AsClass::Cdn),
    (2914, "ntt-like-tier1", AsClass::Tier1),
    (174, "cogent-like-tier1", AsClass::Tier1),
    (3320, "dtag-like-tier1", AsClass::Tier1),
    (3356, "level3-like-tier1", AsClass::Tier1),
    (1299, "telia-like-tier1", AsClass::Tier1),
];

/// Returns the ASNs of the five CDN targets.
pub fn cdn_target_asns() -> Vec<Asn> {
    PAPER_TARGETS
        .iter()
        .filter(|(_, _, c)| *c == AsClass::Cdn)
        .map(|(a, _, _)| Asn(*a))
        .collect()
}

/// Returns the ASNs of the five transit targets.
pub fn transit_target_asns() -> Vec<Asn> {
    PAPER_TARGETS
        .iter()
        .filter(|(_, _, c)| *c == AsClass::Tier1)
        .map(|(a, _, _)| Asn(*a))
        .collect()
}

/// Multi-metro colocation chains (Equinix/Telehouse/Interxion-like).
/// `(name, dns_prefix)` — the dns prefix seeds facility codes.
pub const CHAIN_OPERATORS: &[(&str, &str)] = &[
    ("equinet", "eq"),
    ("telhaus", "th"),
    ("interxio", "ix"),
    ("coresite-like", "cs"),
    ("digital-realty-like", "dr"),
    ("global-switch-like", "gs"),
];

/// Builds a facility display name: `"equinet fra3"`.
pub fn facility_name(operator: &str, city_iata: &str, ordinal: usize) -> String {
    format!("{} {}{}", operator, city_iata.to_lowercase(), ordinal)
}

/// Builds a facility DNS code: `"eqfra3"`.
pub fn facility_dns_code(op_dns_prefix: &str, city_iata: &str, ordinal: usize) -> String {
    format!("{}{}{}", op_dns_prefix, city_iata.to_lowercase(), ordinal)
}

/// Builds an IXP name from its metro: `"fra-ix"`, `"fra-ix-2"`.
pub fn ixp_name(metro_name: &str, ordinal: usize) -> String {
    let slug: String = metro_name
        .chars()
        .filter(|c| c.is_ascii_alphanumeric())
        .take(8)
        .collect();
    if ordinal == 0 {
        format!("{slug}-ix")
    } else {
        format!("{slug}-ix-{}", ordinal + 1)
    }
}

/// Builds a synthetic AS name: `"transit-007"`.
pub fn as_name(class: AsClass, ordinal: usize) -> String {
    format!("{}-{:03}", class.label(), ordinal)
}

/// Synthetic ASN block per class, far from the paper-target ASNs.
pub fn asn_base(class: AsClass) -> u32 {
    match class {
        AsClass::Tier1 => 5_000,
        AsClass::Transit => 30_000,
        AsClass::Cdn => 45_000,
        AsClass::Content => 50_000,
        AsClass::Access => 60_000,
        AsClass::Enterprise => 100_000,
        AsClass::Reseller => 120_000,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ten_paper_targets() {
        assert_eq!(PAPER_TARGETS.len(), 10);
        assert_eq!(cdn_target_asns().len(), 5);
        assert_eq!(transit_target_asns().len(), 5);
        assert!(cdn_target_asns().contains(&Asn(15169)));
        assert!(transit_target_asns().contains(&Asn(3356)));
    }

    #[test]
    fn target_asns_unique() {
        let mut asns: Vec<u32> = PAPER_TARGETS.iter().map(|(a, _, _)| *a).collect();
        asns.sort_unstable();
        asns.dedup();
        assert_eq!(asns.len(), 10);
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(facility_name("equinet", "FRA", 3), "equinet fra3");
        assert_eq!(facility_dns_code("eq", "FRA", 3), "eqfra3");
        assert_eq!(ixp_name("frankfurt", 0), "frankfur-ix");
        assert_eq!(ixp_name("frankfurt", 1), "frankfur-ix-2");
        assert_eq!(as_name(AsClass::Transit, 7), "transit-007");
    }

    #[test]
    fn ixp_name_strips_spaces() {
        assert_eq!(ixp_name("new york", 0), "newyork-ix");
        assert_eq!(ixp_name("st petersburg", 0), "stpeters-ix");
    }

    #[test]
    fn asn_blocks_do_not_collide_with_targets() {
        for (asn, _, _) in PAPER_TARGETS {
            for class in AsClass::ALL {
                let base = asn_base(class);
                // The transit targets sit below 5000 and the content
                // targets in the 10k-23k gap; neither range intersects a
                // synthetic block.
                assert!(
                    *asn < base || *asn >= base + 5_000,
                    "target AS{asn} collides with {class} block at {base}"
                );
            }
        }
    }
}
