//! Reverse-DNS (PTR) naming of router interfaces.
//!
//! Operators name interfaces according to their [`DnsStyle`]: facility
//! codes and airport codes for the disciplined ones, opaque device names
//! for most, nothing at all for others (Google-like CDNs). A small
//! fraction of names is *stale* — it encodes a location the router moved
//! away from — reproducing the paper's warning that "DNS entries may be
//! misleading" [62, 29].
//!
//! The same conventions feed two consumers downstream: the DNS-hint
//! validation oracle of §6 (which knows the per-operator conventions and
//! confirms them current) and the DRoP-style geolocation baseline of §5
//! (which only knows generic airport/city tokens).

use rand::Rng;

use cfs_types::Asn;

use crate::generate::Gen;
use crate::model::{DnsStyle, IfaceKind, RouterLocation};

/// Fraction of interfaces of a *named* operator that actually carry a PTR
/// record (zone files rot; coverage is never complete).
const NAME_COVERAGE: f64 = 0.9;

/// Fraction of generated names whose location token is stale (points at a
/// previous deployment site).
const STALE_FRACTION: f64 = 0.03;

/// Interface-name prefix by interface kind, mimicking common router
/// configurations.
fn if_prefix(kind: IfaceKind) -> &'static str {
    match kind {
        IfaceKind::Loopback => "lo0",
        IfaceKind::Backbone => "ae",
        IfaceKind::IxpFabric(_) => "ix",
        IfaceKind::PrivatePtp(_) => "xe",
    }
}

/// Builds the hostname for one interface under a convention. Exposed so
/// tests (and the validation oracle) can reconstruct expected names.
pub fn format_hostname(
    style: DnsStyle,
    if_label: &str,
    router_ordinal: usize,
    facility_code: Option<&str>,
    city_iata: Option<&str>,
    asn: Asn,
) -> Option<String> {
    let asn = asn.raw();
    match style {
        DnsStyle::None => None,
        DnsStyle::FacilityCoded => {
            let fac = facility_code?;
            let city = city_iata?;
            Some(format!(
                "{if_label}.r{router_ordinal}.{fac}.{city}.as{asn}.example.net"
            ))
        }
        DnsStyle::CityCoded => {
            let city = city_iata?;
            Some(format!(
                "{if_label}.r{router_ordinal}.{city}.as{asn}.example.net"
            ))
        }
        DnsStyle::Opaque => Some(format!(
            "{if_label}.ccr{router_ordinal:02}.as{asn}.example.net"
        )),
    }
}

/// Assigns PTR names across the whole topology (generation phase 5).
pub(crate) fn assign_names(g: &mut Gen) {
    // Stale names draw a wrong facility from this pool.
    let n_facilities = g.facilities.len();

    let router_ids: Vec<_> = g.routers.ids().collect();
    for rid in router_ids {
        let (asn, location, iface_ids) = {
            let r = &g.routers[rid];
            (r.asn, r.location, r.ifaces.clone())
        };
        let style = g.ases[&asn].dns_style;
        if style == DnsStyle::None {
            continue;
        }
        let router_ordinal = g.ases[&asn]
            .routers
            .iter()
            .position(|r| *r == rid)
            .unwrap_or(0);

        let mut if_counter = 0usize;
        for ifid in iface_ids {
            if !g.rng.random_bool(NAME_COVERAGE) {
                continue;
            }
            let kind = g.ifaces[ifid].kind;
            let if_label = if kind == IfaceKind::Loopback {
                "lo0".to_string()
            } else {
                if_counter += 1;
                format!("{}{}", if_prefix(kind), if_counter)
            };

            // Location tokens: normally the router's true site; stale
            // names pick a random other facility.
            let stale = g.rng.random_bool(STALE_FRACTION);
            let (fac_code, iata) = if stale && n_facilities > 1 {
                let wrong = cfs_types::FacilityId::new(g.rng.random_range(0..n_facilities) as u32);
                let f = &g.facilities[wrong];
                (
                    Some(f.dns_code.clone()),
                    Some(g.world.city(f.city).iata.to_lowercase()),
                )
            } else {
                match location {
                    RouterLocation::Facility(f) => {
                        let f = &g.facilities[f];
                        (
                            Some(f.dns_code.clone()),
                            Some(g.world.city(f.city).iata.to_lowercase()),
                        )
                    }
                    RouterLocation::PopCity(c) => (None, Some(g.world.city(c).iata.to_lowercase())),
                }
            };

            // A PoP router under a FacilityCoded convention falls back to
            // city coding (there is no facility to encode).
            let effective = match (style, &fac_code) {
                (DnsStyle::FacilityCoded, None) => DnsStyle::CityCoded,
                _ => style,
            };
            g.ifaces[ifid].dns_name = format_hostname(
                effective,
                &if_label,
                router_ordinal,
                fac_code.as_deref(),
                iata.as_deref(),
                asn,
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TopologyConfig;
    use crate::topology::Topology;

    #[test]
    fn format_follows_conventions() {
        let h = format_hostname(
            DnsStyle::FacilityCoded,
            "ae1",
            2,
            Some("eqfra3"),
            Some("fra"),
            Asn(3356),
        );
        assert_eq!(h.unwrap(), "ae1.r2.eqfra3.fra.as3356.example.net");

        let h = format_hostname(DnsStyle::CityCoded, "xe1", 0, None, Some("lhr"), Asn(1299));
        assert_eq!(h.unwrap(), "xe1.r0.lhr.as1299.example.net");

        let h = format_hostname(DnsStyle::Opaque, "be9", 3, None, None, Asn(174));
        assert_eq!(h.unwrap(), "be9.ccr03.as174.example.net");

        assert!(format_hostname(DnsStyle::None, "ae1", 0, None, None, Asn(1)).is_none());
        // FacilityCoded without a facility code cannot produce a name.
        assert!(
            format_hostname(DnsStyle::FacilityCoded, "ae1", 0, None, Some("fra"), Asn(1)).is_none()
        );
    }

    #[test]
    fn google_like_cdn_has_no_ptr_records() {
        let t = Topology::generate(TopologyConfig::default()).unwrap();
        let google = &t.ases[&Asn(15169)];
        for rid in &google.routers {
            for ifid in &t.routers[*rid].ifaces {
                assert!(t.ifaces[*ifid].dns_name.is_none());
            }
        }
    }

    #[test]
    fn named_operators_have_mostly_named_interfaces() {
        let t = Topology::generate(TopologyConfig::default()).unwrap();
        let coded = t
            .ases
            .values()
            .find(|n| n.dns_style == DnsStyle::FacilityCoded)
            .expect("a facility-coded AS exists");
        let (named, total) = coded
            .routers
            .iter()
            .flat_map(|r| &t.routers[*r].ifaces)
            .fold((0usize, 0usize), |(n, t_), ifid| {
                (n + usize::from(t.ifaces[*ifid].dns_name.is_some()), t_ + 1)
            });
        assert!(total > 0);
        assert!(named as f64 / total as f64 > 0.6, "{named}/{total}");
    }

    #[test]
    fn some_interfaces_are_nameless_overall() {
        let t = Topology::generate(TopologyConfig::default()).unwrap();
        let nameless = t.ifaces.values().filter(|i| i.dns_name.is_none()).count();
        let frac = nameless as f64 / t.ifaces.len() as f64;
        // Paper: 29% of peering interfaces had no record; over *all*
        // interfaces we only require a nontrivial share.
        assert!(frac > 0.1, "nameless fraction {frac}");
    }

    #[test]
    fn hostnames_unique_enough_to_identify_interfaces() {
        let t = Topology::generate(TopologyConfig::tiny()).unwrap();
        let mut names: Vec<&str> = t
            .ifaces
            .values()
            .filter_map(|i| i.dns_name.as_deref())
            .collect();
        let before = names.len();
        names.sort_unstable();
        names.dedup();
        // Name collisions are possible (two ifaces, same router, same
        // prefix) but must be rare.
        assert!(names.len() as f64 > before as f64 * 0.95);
    }
}
