//! Time-evolving disruptions: a seeded [`EventSchedule`] of typed
//! facility-level events that the measurement plane replays epoch by
//! epoch.
//!
//! The schedule is ground truth in the same sense the rest of the
//! topology is: the probe plane (`ScheduledEngine` in `cfs-traceroute`)
//! consults it to decide which interfaces answer during an epoch, but
//! nothing downstream of the measurement plane ever sees it. The
//! detection stack (`cfs-detect`) must re-discover the events from
//! divergence in what the probes observe — precision/recall against the
//! withheld schedule is the evaluation (`disruption_eval` in
//! EXPERIMENTS.md).
//!
//! Epochs are coarse campaign slots: campaign `k` of a resident session
//! probes at virtual time `k * EPOCH_MS`, so "epoch" and "campaign
//! index" are the same coordinate.

use std::collections::BTreeSet;
use std::net::Ipv4Addr;

use cfs_types::{AsClass, FacilityId, Idx, IxpId, SwitchId};

use crate::model::{IxpMembership, SwitchRole};
use crate::Topology;

/// Virtual milliseconds per disruption epoch. Campaign `k` probes at
/// `k * EPOCH_MS`; an event active in epoch `e` darkens its interfaces
/// for every probe with `at_ms / EPOCH_MS == e`.
pub const EPOCH_MS: u64 = 7_200_000;

/// The kind of a scheduled disruption.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum DisruptionKind {
    /// Total power loss at one facility: every interface of every router
    /// in the building stops answering, and fabric ports patched into
    /// the building's IXP access switches go dark with it.
    FacilityPower,
    /// A patch-panel failure at one facility: every private
    /// point-to-point link terminating there loses both of its subnet
    /// endpoints (the cross-connect is a physical pair — cutting it
    /// silences both sides).
    CrossConnectCut,
    /// One IXP access switch flaps: the fabric addresses of every member
    /// port patched into that switch stop answering. Localizes to the
    /// facility hosting the switch.
    IxpPortFlap,
}

impl DisruptionKind {
    /// Stable lowercase label used in reports and alert scoring.
    pub fn label(self) -> &'static str {
        match self {
            DisruptionKind::FacilityPower => "facility-power",
            DisruptionKind::CrossConnectCut => "cross-connect-cut",
            DisruptionKind::IxpPortFlap => "ixp-port-flap",
        }
    }
}

/// One scheduled disruption: a typed event pinned to a facility (and,
/// for port flaps, an exchange + access switch) over a closed epoch
/// window.
#[derive(Clone, Debug)]
pub struct Disruption {
    /// What broke.
    pub kind: DisruptionKind,
    /// The facility the event localizes to (ground truth for scoring).
    pub facility: FacilityId,
    /// The affected exchange, for [`DisruptionKind::IxpPortFlap`].
    pub ixp: Option<IxpId>,
    /// The flapping access switch, for [`DisruptionKind::IxpPortFlap`].
    pub switch: Option<SwitchId>,
    /// First epoch the event is active in.
    pub start_epoch: u64,
    /// Number of consecutive active epochs (≥ 1).
    pub duration_epochs: u64,
}

impl Disruption {
    /// Whether the event is active during `epoch`.
    pub fn active(&self, epoch: u64) -> bool {
        epoch >= self.start_epoch && epoch < self.start_epoch + self.duration_epochs
    }

    /// Last active epoch (inclusive).
    pub fn end_epoch(&self) -> u64 {
        self.start_epoch + self.duration_epochs - 1
    }

    /// The set of interface addresses this event silences, derived from
    /// the topology's ground truth.
    pub fn dark_ips(&self, topo: &Topology) -> BTreeSet<Ipv4Addr> {
        let mut dark = BTreeSet::new();
        match self.kind {
            DisruptionKind::FacilityPower => {
                for (rid, router) in topo.routers.iter() {
                    if topo.router_facility(rid) != Some(self.facility) {
                        continue;
                    }
                    for iface in &router.ifaces {
                        dark.insert(topo.ifaces[*iface].ip);
                    }
                }
                // Access switches in the building lose power too: member
                // ports patched into them stop answering even when the
                // member's router sits elsewhere.
                for (_, ixp) in topo.ixps.iter() {
                    for m in &ixp.members {
                        if topo.switches[m.access_switch].facility == self.facility {
                            dark.insert(m.fabric_ip);
                        }
                    }
                }
            }
            DisruptionKind::CrossConnectCut => {
                for (_, link) in topo.links.iter() {
                    let a_fac = topo.router_facility(link.a.router);
                    let b_fac = topo.router_facility(link.b.router);
                    if a_fac == Some(self.facility) || b_fac == Some(self.facility) {
                        dark.insert(topo.ifaces[link.a.iface].ip);
                        dark.insert(topo.ifaces[link.b.iface].ip);
                    }
                }
            }
            DisruptionKind::IxpPortFlap => {
                let (Some(ixp), Some(switch)) = (self.ixp, self.switch) else {
                    return dark;
                };
                for m in &topo.ixps[ixp].members {
                    if m.access_switch == switch {
                        dark.insert(m.fabric_ip);
                    }
                }
            }
        }
        dark
    }
}

/// Named fault intensities for schedule generation: how many events the
/// horizon carries.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ScheduleIntensity {
    /// A couple of isolated events.
    Light,
    /// The evaluation default.
    Default,
    /// A busy horizon with overlapping windows.
    Heavy,
}

impl ScheduleIntensity {
    /// Number of events generated at this intensity.
    pub fn events(self) -> usize {
        match self {
            ScheduleIntensity::Light => 2,
            ScheduleIntensity::Default => 4,
            ScheduleIntensity::Heavy => 7,
        }
    }

    /// Stable lowercase label.
    pub fn label(self) -> &'static str {
        match self {
            ScheduleIntensity::Light => "light",
            ScheduleIntensity::Default => "default",
            ScheduleIntensity::Heavy => "heavy",
        }
    }

    /// Parses a label back into an intensity.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "light" => Some(ScheduleIntensity::Light),
            "default" => Some(ScheduleIntensity::Default),
            "heavy" => Some(ScheduleIntensity::Heavy),
            _ => None,
        }
    }
}

/// Parameters for schedule generation.
#[derive(Clone, Copy, Debug)]
pub struct ScheduleConfig {
    /// Generation seed (independent of the topology seed).
    pub seed: u64,
    /// Epochs kept event-free at the start of the horizon so detectors
    /// can form a baseline.
    pub warmup_epochs: u64,
    /// Total epochs in the horizon (bootstrap epoch 0 included).
    pub horizon_epochs: u64,
    /// How many events to place.
    pub events: usize,
}

impl ScheduleConfig {
    /// The evaluation shape at a named intensity: 16 epochs, 4 of
    /// warmup, `intensity.events()` events.
    pub fn at_intensity(seed: u64, intensity: ScheduleIntensity) -> Self {
        Self {
            seed,
            warmup_epochs: 4,
            horizon_epochs: 16,
            events: intensity.events(),
        }
    }
}

/// A generated, seeded disruption schedule over one topology.
#[derive(Clone, Debug)]
pub struct EventSchedule {
    /// The generation parameters.
    pub config: ScheduleConfig,
    /// Events sorted by `(start_epoch, facility)`.
    pub events: Vec<Disruption>,
}

impl EventSchedule {
    /// Generates a schedule for `topo`. Deterministic in
    /// `(config.seed, topology)`; events target facilities with enough
    /// ground-truth presence (routers, private links, member ports) for
    /// their loss to be observable in a campaign.
    pub fn generate(topo: &Topology, config: ScheduleConfig) -> Self {
        let fac_pool = facility_pool(topo);
        let cut_pool = cross_connect_pool(topo);
        let flap_pool = port_flap_pool(topo);
        let mut events: Vec<Disruption> = Vec::new();
        let mut used: BTreeSet<(u8, FacilityId)> = BTreeSet::new();

        let active_span = config.horizon_epochs.saturating_sub(config.warmup_epochs);
        for i in 0..config.events {
            let h = splitmix64(config.seed ^ ((i as u64 + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15)));
            let kind = match h % 3 {
                0 => DisruptionKind::FacilityPower,
                1 => DisruptionKind::CrossConnectCut,
                _ => DisruptionKind::IxpPortFlap,
            };
            let duration = 2 + ((h >> 8) % 2); // 2–3 epochs
            let start = if active_span > duration {
                config.warmup_epochs + (h >> 16) % (active_span - duration)
            } else {
                config.warmup_epochs
            };
            let event = match kind {
                DisruptionKind::IxpPortFlap => pick_flap(&flap_pool, &mut used, h, start, duration),
                DisruptionKind::FacilityPower => {
                    pick_facility(&fac_pool, &mut used, kind, h, start, duration)
                }
                DisruptionKind::CrossConnectCut => {
                    pick_facility(&cut_pool, &mut used, kind, h, start, duration)
                }
            };
            if let Some(e) = event {
                events.push(e);
            }
        }
        events.sort_by_key(|e| (e.start_epoch, e.facility, e.kind));
        Self { config, events }
    }

    /// Events active during `epoch`, in schedule order.
    pub fn active(&self, epoch: u64) -> impl Iterator<Item = &Disruption> {
        self.events.iter().filter(move |e| e.active(epoch))
    }
}

/// Trims a prominence-ranked pool to its leading tier — the top quarter,
/// but never fewer than four entries (or the whole pool when smaller).
/// Events drawn from the tail of a big pool hit loci so peripheral that
/// campaigns rarely traverse them; a fault nothing can observe makes a
/// useless evaluation target.
fn shortlist<T>(mut pool: Vec<T>, len: usize) -> Vec<T> {
    pool.truncate((len / 4).max(4).min(len));
    pool
}

/// Facilities ranked by ground-truth router presence (count descending,
/// id ascending), restricted to those hosting at least two routers so a
/// power event is observable.
fn facility_pool(topo: &Topology) -> Vec<FacilityId> {
    let mut counts: Vec<usize> = vec![0; topo.facilities.len()];
    for (rid, _) in topo.routers.iter() {
        if let Some(fac) = topo.router_facility(rid) {
            counts[fac.index()] += 1;
        }
    }
    let mut pool: Vec<FacilityId> = topo
        .facilities
        .ids()
        .filter(|f| counts[f.index()] >= 2)
        .collect();
    pool.sort_by_key(|f| (usize::MAX - counts[f.index()], *f));
    let len = pool.len();
    shortlist(pool, len)
}

/// Facilities ranked by how many private point-to-point links terminate
/// there (count descending, id ascending), restricted to at least one so
/// a patch-panel cut is observable.
fn cross_connect_pool(topo: &Topology) -> Vec<FacilityId> {
    let mut counts: Vec<usize> = vec![0; topo.facilities.len()];
    for (_, link) in topo.links.iter() {
        for router in [link.a.router, link.b.router] {
            if let Some(fac) = topo.router_facility(router) {
                counts[fac.index()] += 1;
            }
        }
    }
    let mut pool: Vec<FacilityId> = topo
        .facilities
        .ids()
        .filter(|f| counts[f.index()] >= 1)
        .collect();
    pool.sort_by_key(|f| (usize::MAX - counts[f.index()], *f));
    let len = pool.len();
    shortlist(pool, len)
}

/// `(ixp, access switch, hosting facility)` triples with at least three
/// *forwarding-relevant* member ports, ranked by that count descending.
///
/// A fabric address only shows up as a traceroute hop when a path
/// crosses the exchange at that member's port, which in practice means
/// the member forwards other networks' traffic: tier-1s, transit
/// providers, and CDNs. A switch dense with on-site stub/enterprise
/// ports has a high raw port count but near-zero campaign visibility —
/// flapping it is a fault nothing can observe. Remote-peering ports are
/// excluded for the same reason the §2 discussion flags them: the
/// member's router is elsewhere, so the port is rarely on-path.
///
/// The rank is fabric size first, per-switch relevant ports second:
/// whether campaigns traverse an exchange *at all* is decided by the
/// whole fabric's prominence — paths concentrate on the largest
/// exchanges — while a regional fabric can host a transit-heavy switch
/// no campaign ever crosses. The floor of three is the detector's
/// support floor (a two-port flap can never clear `min_support`), and
/// the pool is cut to the four most prominent switches rather than the
/// usual quartile: flap picks rotate over the whole pool, so every
/// entry must sit on a fabric campaigns demonstrably cross.
fn port_flap_pool(topo: &Topology) -> Vec<(IxpId, SwitchId, FacilityId, usize)> {
    let relevant = |m: &IxpMembership| {
        m.remote_via.is_none()
            && topo.ases.get(&m.asn).is_some_and(|a| {
                matches!(a.class, AsClass::Tier1 | AsClass::Transit | AsClass::Cdn)
            })
    };
    let mut pool: Vec<(IxpId, SwitchId, FacilityId, usize)> = Vec::new();
    let mut fabric_size: Vec<usize> = Vec::new();
    for (ixp_id, ixp) in topo.ixps.iter() {
        if !ixp.active {
            continue;
        }
        for sw in &ixp.switches {
            if topo.switches[*sw].role != SwitchRole::Access {
                continue;
            }
            let ports = ixp
                .members
                .iter()
                .filter(|m| m.access_switch == *sw && relevant(m))
                .count();
            if ports >= 3 {
                pool.push((ixp_id, *sw, topo.switches[*sw].facility, ports));
                fabric_size.push(ixp.members.len());
            }
        }
    }
    let mut order: Vec<usize> = (0..pool.len()).collect();
    order.sort_by_key(|&i| {
        let (ixp, sw, _, ports) = pool[i];
        (usize::MAX - fabric_size[i], usize::MAX - ports, ixp, sw)
    });
    let mut pool: Vec<_> = order.into_iter().map(|i| pool[i]).collect();
    pool.truncate(4);
    pool
}

fn pick_facility(
    pool: &[FacilityId],
    used: &mut BTreeSet<(u8, FacilityId)>,
    kind: DisruptionKind,
    h: u64,
    start: u64,
    duration: u64,
) -> Option<Disruption> {
    if pool.is_empty() {
        return None;
    }
    let tag = kind as u8;
    let offset = ((h >> 32) as usize) % pool.len();
    (0..pool.len())
        .map(|k| pool[(offset + k) % pool.len()])
        .find(|f| used.insert((tag, *f)))
        .map(|facility| Disruption {
            kind,
            facility,
            ixp: None,
            switch: None,
            start_epoch: start,
            duration_epochs: duration,
        })
}

fn pick_flap(
    pool: &[(IxpId, SwitchId, FacilityId, usize)],
    used: &mut BTreeSet<(u8, FacilityId)>,
    h: u64,
    start: u64,
    duration: u64,
) -> Option<Disruption> {
    if pool.is_empty() {
        return None;
    }
    let tag = DisruptionKind::IxpPortFlap as u8;
    let offset = ((h >> 32) as usize) % pool.len();
    (0..pool.len())
        .map(|k| &pool[(offset + k) % pool.len()])
        .find(|(_, _, fac, _)| used.insert((tag, *fac)))
        .map(|(ixp, sw, facility, _)| Disruption {
            kind: DisruptionKind::IxpPortFlap,
            facility: *facility,
            ixp: Some(*ixp),
            switch: Some(*sw),
            start_epoch: start,
            duration_epochs: duration,
        })
}

/// The splitmix64 mix — the same seeded pure-function discipline the
/// probe and chaos planes use; no ambient RNG.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TopologyConfig;

    fn topo() -> Topology {
        Topology::generate(TopologyConfig::tiny()).expect("tiny topology")
    }

    fn default_schedule(topo: &Topology) -> EventSchedule {
        EventSchedule::generate(
            topo,
            ScheduleConfig::at_intensity(11, ScheduleIntensity::Default),
        )
    }

    #[test]
    fn generation_is_deterministic() {
        let t = topo();
        let a = default_schedule(&t);
        let b = default_schedule(&t);
        assert_eq!(a.events.len(), b.events.len());
        for (x, y) in a.events.iter().zip(&b.events) {
            assert_eq!(x.kind, y.kind);
            assert_eq!(x.facility, y.facility);
            assert_eq!(x.start_epoch, y.start_epoch);
            assert_eq!(x.duration_epochs, y.duration_epochs);
            assert_eq!(x.dark_ips(&t), y.dark_ips(&t));
        }
    }

    #[test]
    fn events_respect_warmup_and_horizon() {
        let t = topo();
        let s = default_schedule(&t);
        assert_eq!(s.events.len(), ScheduleIntensity::Default.events());
        for e in &s.events {
            assert!(e.start_epoch >= s.config.warmup_epochs, "{e:?} in warmup");
            assert!(
                e.end_epoch() < s.config.horizon_epochs,
                "{e:?} past horizon"
            );
            assert!(e.duration_epochs >= 2);
        }
    }

    #[test]
    fn every_event_darkens_something() {
        let t = topo();
        for intensity in [
            ScheduleIntensity::Light,
            ScheduleIntensity::Default,
            ScheduleIntensity::Heavy,
        ] {
            let s = EventSchedule::generate(&t, ScheduleConfig::at_intensity(7, intensity));
            assert!(!s.events.is_empty());
            for e in &s.events {
                let dark = e.dark_ips(&t);
                assert!(dark.len() >= 2, "{e:?} darkens {} ips", dark.len());
                if e.kind == DisruptionKind::IxpPortFlap {
                    assert!(e.ixp.is_some() && e.switch.is_some());
                }
            }
        }
    }

    #[test]
    fn active_window_is_closed_open() {
        let e = Disruption {
            kind: DisruptionKind::FacilityPower,
            facility: FacilityId(0),
            ixp: None,
            switch: None,
            start_epoch: 5,
            duration_epochs: 2,
        };
        assert!(!e.active(4));
        assert!(e.active(5));
        assert!(e.active(6));
        assert!(!e.active(7));
        assert_eq!(e.end_epoch(), 6);
    }
}
