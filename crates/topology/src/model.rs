//! The entity structs of the ground-truth model.

use std::net::Ipv4Addr;

use cfs_geo::GeoPoint;
use cfs_net::Ipv4Prefix;
use cfs_types::{
    AsClass, Asn, CityId, FacilityId, IfaceId, IxpId, LinkId, MetroId, OperatorId, PeeringKind,
    Region, RouterId, SwitchId,
};

/// A colocation / interconnection facility (§2): a building that hosts
/// network equipment and supports interconnection.
#[derive(Clone, Debug)]
pub struct Facility {
    /// Display name, e.g. `"equinix fra3"`.
    pub name: String,
    /// The company operating the facility.
    pub operator: OperatorId,
    /// City the building is in.
    pub city: CityId,
    /// Metro area (5-mile clustering of cities).
    pub metro: MetroId,
    /// World region (city's region).
    pub region: Region,
    /// Building coordinates (jittered around the city centre).
    pub location: GeoPoint,
    /// Carrier-neutral facilities accept any network; carrier-operated
    /// ones mostly host the carrier and its customers.
    pub carrier_neutral: bool,
    /// Short code used in facility-coded DNS hostnames (e.g. `"eqfra3"`).
    pub dns_code: String,
}

/// A facility operator — an Equinix/Telehouse/Interxion-like company, or a
/// single-site local operator.
#[derive(Clone, Debug)]
pub struct FacilityOperator {
    /// Company name.
    pub name: String,
    /// Facilities run by this operator (filled during generation).
    pub facilities: Vec<FacilityId>,
    /// Whether facilities of this operator within one metro are wired
    /// together, so cross-connects can span them (§2: "Cross-connects can
    /// be established between members that host their network equipment in
    /// different facilities of the same interconnection facility
    /// operator").
    pub metro_interconnected: bool,
}

/// Role of an IXP switch in the hierarchy of Figure 6.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SwitchRole {
    /// Core switch at the IXP's primary facility.
    Core,
    /// Back-haul aggregation switch between access switches and the core.
    Backhaul,
    /// Access switch at a partner facility; members plug in here.
    Access,
}

/// One switch in an IXP's topology.
#[derive(Clone, Debug)]
pub struct Switch {
    /// The IXP owning the switch.
    pub ixp: IxpId,
    /// Role in the hierarchy.
    pub role: SwitchRole,
    /// The facility hosting the switch.
    pub facility: FacilityId,
    /// Upstream switch (access → backhaul or core; backhaul → core;
    /// `None` for the core itself).
    pub parent: Option<SwitchId>,
}

/// An Internet exchange point.
#[derive(Clone, Debug)]
pub struct Ixp {
    /// Display name, e.g. `"fra-ix"`.
    pub name: String,
    /// Metro where the exchange operates.
    pub metro: MetroId,
    /// Region of that metro.
    pub region: Region,
    /// The peering-LAN prefix; member fabric addresses come from here.
    pub peering_lan: Ipv4Prefix,
    /// Partner facilities (those hosting an access switch), sorted.
    pub facilities: Vec<FacilityId>,
    /// All switches, core first.
    pub switches: Vec<SwitchId>,
    /// The core switch.
    pub core: SwitchId,
    /// Whether the IXP is operational (PCH-style inactive exchanges stay
    /// in databases; the knowledge-base assembly must filter them).
    pub active: bool,
    /// Whether the IXP operates a route server for multilateral peering.
    pub has_route_server: bool,
    /// Member records, sorted by ASN.
    pub members: Vec<IxpMembership>,
}

impl Ixp {
    /// Finds the first membership record of `asn`, if the AS is a member.
    pub fn member(&self, asn: Asn) -> Option<&IxpMembership> {
        self.members.iter().find(|m| m.asn == asn)
    }

    /// All ports of `asn` at this exchange. Larger members connect at
    /// several partner facilities (the Figure 6 toy: AS B at facilities
    /// 3 *and* 4) — which port answers a traceroute depends on switch
    /// locality, the signal behind the §4.4 proximity heuristic.
    pub fn members_of(&self, asn: Asn) -> impl Iterator<Item = &IxpMembership> {
        self.members.iter().filter(move |m| m.asn == asn)
    }
}

/// An AS's connection to one IXP.
#[derive(Clone, Debug)]
pub struct IxpMembership {
    /// The member AS.
    pub asn: Asn,
    /// Address assigned from the IXP peering LAN, configured on the
    /// member's fabric-facing interface.
    pub fabric_ip: Ipv4Addr,
    /// The member's router carrying the fabric interface.
    pub router: RouterId,
    /// The fabric interface itself.
    pub iface: IfaceId,
    /// Access switch the member's port is patched into. For remote
    /// members this is the *reseller's* port — the member's router is
    /// elsewhere.
    pub access_switch: SwitchId,
    /// `Some(reseller ASN)` when the member peers remotely via a
    /// transport partner (§2 "Remote Peering"); the member's router then
    /// sits at a distant PoP, not at an IXP facility.
    pub remote_via: Option<Asn>,
    /// Whether the member peers multilaterally through the route server.
    pub uses_route_server: bool,
}

/// DNS (PTR) naming convention an operator applies to its router
/// interfaces. Drives both the validation-by-DNS oracle (§6) and the
/// DRoP-style geolocation baseline (§5, §7).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DnsStyle {
    /// No PTR records at all (the paper's Google case; 29% of peering
    /// interfaces had no DNS record).
    None,
    /// Hostnames embed a facility code and a city code
    /// (`ae1.rtr2.eqfra3.fra.asNNN.net`) — precise enough for §6
    /// validation.
    FacilityCoded,
    /// Hostnames embed only a city airport code
    /// (`xe0.rtr2.fra.asNNN.net`) — geolocatable to a city, not a
    /// building.
    CityCoded,
    /// Hostnames exist but carry no location tokens
    /// (`be12.ccr03.asNNN.net`) — the 55% of named interfaces DRoP cannot
    /// geolocate.
    Opaque,
}

/// An autonomous system.
#[derive(Clone, Debug)]
pub struct AsNode {
    /// The AS number.
    pub asn: Asn,
    /// Operator name, e.g. `"tier1-03"` or `"cdn-google-like"`.
    pub name: String,
    /// Business class; shapes footprint and peering policy.
    pub class: AsClass,
    /// Region where the network is headquartered.
    pub home_region: Region,
    /// Announced address space (first prefix is the primary block;
    /// infrastructure addresses come from its tail).
    pub prefixes: Vec<Ipv4Prefix>,
    /// Ground-truth facility presence, sorted.
    pub facilities: Vec<FacilityId>,
    /// IXP memberships (ids into the IXP table), sorted.
    pub ixps: Vec<IxpId>,
    /// All routers, sorted.
    pub routers: Vec<RouterId>,
    /// PTR naming convention.
    pub dns_style: DnsStyle,
    /// `Some(other)` when this AS shares address space with a sibling
    /// organisation, producing the IP-to-ASN conflicts of §4.1.
    pub sibling: Option<Asn>,
}

/// Where a router physically sits.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RouterLocation {
    /// Inside a colocation facility (the interesting case for CFS).
    Facility(FacilityId),
    /// At an operator PoP in some city, outside any facility in the
    /// dataset — access-network aggregation routers, or the distant
    /// router of a remote peer.
    PopCity(CityId),
}

impl RouterLocation {
    /// The facility, when the router is colocated.
    pub fn facility(self) -> Option<FacilityId> {
        match self {
            Self::Facility(f) => Some(f),
            Self::PopCity(_) => None,
        }
    }
}

/// How a router fills the IP-ID field of responses — the signal MIDAR's
/// monotonic-bounds test keys on (§4.1).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IpIdBehavior {
    /// One shared, monotonically increasing counter across all interfaces
    /// (the behaviour alias resolution relies on). `rate` is the mean
    /// counter increment per millisecond from cross-traffic.
    SharedCounter {
        /// Mean counter increments per millisecond.
        rate_per_ms: u16,
    },
    /// Pseudo-random IP-ID per response (defeats the bounds test).
    Random,
    /// Constant zero (common on some platforms; defeats the test).
    Constant,
    /// Does not answer alias-resolution probes at all (the paper's
    /// "unresponsive to alias resolution probes (e.g., Google)").
    Unresponsive,
}

/// Interface flavour.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IfaceKind {
    /// Router loopback (not seen in traceroute, used as LG router id).
    Loopback,
    /// Intra-AS backbone interface (the usual traceroute reply source for
    /// transit hops).
    Backbone,
    /// Interface on an IXP peering LAN; its address belongs to the IXP
    /// prefix, not to the member AS.
    IxpFabric(IxpId),
    /// One end of a private point-to-point interconnection (cross-connect
    /// or tethering VLAN); the subnet is allocated from *one* of the two
    /// peers' address space.
    PrivatePtp(LinkId),
}

/// A router interface.
#[derive(Clone, Debug)]
pub struct Iface {
    /// Owning router.
    pub router: RouterId,
    /// Operating AS (the router's AS — may differ from what IP-to-ASN
    /// claims for point-to-point and fabric addresses).
    pub asn: Asn,
    /// The configured address.
    pub ip: Ipv4Addr,
    /// Interface flavour.
    pub kind: IfaceKind,
    /// PTR record, if the operator publishes one.
    pub dns_name: Option<String>,
}

/// A router.
#[derive(Clone, Debug)]
pub struct Router {
    /// Operating AS.
    pub asn: Asn,
    /// Physical location.
    pub location: RouterLocation,
    /// Coordinates (facility location or PoP city centre).
    pub coords: GeoPoint,
    /// Interfaces, sorted by id.
    pub ifaces: Vec<IfaceId>,
    /// IP-ID behaviour for alias-resolution probes.
    pub ipid: IpIdBehavior,
    /// Whether the router sends ICMP TTL-exceeded at all (a small number
    /// of routers are silent, producing `*` hops).
    pub responds: bool,
}

/// One endpoint of a physical interconnection.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EndPoint {
    /// The AS operating this side.
    pub asn: Asn,
    /// The router.
    pub router: RouterId,
    /// The interface used for the interconnection (fabric or ptp iface).
    pub iface: IfaceId,
}

/// A materialized private interconnection (cross-connect, tethering VLAN,
/// or remote private line) or transit link between two routers.
#[derive(Clone, Debug)]
pub struct Link {
    /// Engineering method.
    pub kind: PeeringKind,
    /// The side whose address space provided the point-to-point subnet.
    pub a: EndPoint,
    /// The other side.
    pub b: EndPoint,
    /// The IXP whose fabric transports the link, for tethering.
    pub ixp: Option<IxpId>,
    /// The point-to-point subnet (from `a`'s space).
    pub subnet: Ipv4Prefix,
}

/// How an AS-level adjacency is physically realized (one adjacency can
/// have several instantiations in different places).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Medium {
    /// A materialized [`Link`] (private peering or transit PNI).
    Private(LinkId),
    /// Public peering across an IXP fabric between the two members'
    /// fabric interfaces.
    PublicIxp {
        /// The exchange.
        ixp: IxpId,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn router_location_facility_accessor() {
        assert_eq!(
            RouterLocation::Facility(FacilityId(3)).facility(),
            Some(FacilityId(3))
        );
        assert_eq!(RouterLocation::PopCity(CityId(1)).facility(), None);
    }

    #[test]
    fn ixp_member_lookup() {
        let ixp = Ixp {
            name: "test-ix".into(),
            metro: MetroId(0),
            region: Region::Europe,
            peering_lan: "185.0.0.0/22".parse().unwrap(),
            facilities: vec![],
            switches: vec![],
            core: SwitchId(0),
            active: true,
            has_route_server: true,
            members: vec![IxpMembership {
                asn: Asn(65001),
                fabric_ip: "185.0.0.1".parse().unwrap(),
                router: RouterId(0),
                iface: IfaceId(0),
                access_switch: SwitchId(0),
                remote_via: None,
                uses_route_server: true,
            }],
        };
        assert!(ixp.member(Asn(65001)).is_some());
        assert!(ixp.member(Asn(65002)).is_none());
    }

    #[test]
    fn switch_roles_ordering() {
        // Core < Backhaul < Access — used when sorting switch lists so the
        // core comes first.
        assert!(SwitchRole::Core < SwitchRole::Backhaul);
        assert!(SwitchRole::Backhaul < SwitchRole::Access);
    }
}
