//! # cfs-bgp
//!
//! The interdomain routing substrate: Gao–Rexford valley-free route
//! computation over the ground-truth AS graph, a thread-safe route cache,
//! and the BGP communities machinery (ingress-point tagging) that the
//! paper uses as a validation source (§6).
//!
//! Traceroute paths in `cfs-traceroute` follow the AS paths computed here,
//! so the adjacencies CFS observes are economically plausible rather than
//! arbitrary graph walks.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod communities;
mod lg;
mod routing;

pub use communities::{CommunityDictionary, CommunityValue, IngressTag};
pub use lg::{BgpRecord, BgpSession, LookingGlassBgp};
pub use routing::{compute_routes, RouteCache, RouteMap, RouteType};
