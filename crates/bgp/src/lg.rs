//! BGP-capable looking glasses (§3.2).
//!
//! "An increasing number of networks run public looking glass servers
//! capable of issuing BGP queries [32], e.g. *show ip bgp summary*,
//! *prefix info*, *neighbor info*. We identified 168 that support such
//! queries and we used them to augment our measurements. These types of
//! looking glasses allow us to list the BGP sessions established with the
//! router running the looking glass, and indicate the ASN and IP address
//! of the peering router, as well as showing metainformation about the
//! interconnection, e.g., via BGP communities."
//!
//! [`LookingGlassBgp`] exposes exactly that: per-router session listings
//! (own address, neighbor address, neighbor ASN) and route queries with
//! the ingress communities attached.

use std::net::Ipv4Addr;

use cfs_net::IpAsnDb;
use cfs_topology::{IfaceKind, Topology};
use cfs_types::{Asn, IxpId, RouterId};

use crate::communities::{CommunityDictionary, CommunityValue};
use crate::routing::RouteCache;

/// One BGP session as a looking glass reports it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BgpSession {
    /// The local interface address the session is bound to.
    pub local_ip: Ipv4Addr,
    /// The neighbor's interface address.
    pub neighbor_ip: Ipv4Addr,
    /// The neighbor's AS number.
    pub neighbor_asn: Asn,
    /// Whether the session runs over an IXP fabric (route server or
    /// bilateral) rather than a private point-to-point circuit.
    pub over_ixp: Option<IxpId>,
}

/// A *show ip bgp `<prefix>`* style answer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BgpRecord {
    /// The AS path of the best route.
    pub as_path: Vec<Asn>,
    /// Communities attached to the route (ingress tagging).
    pub communities: Vec<CommunityValue>,
}

/// The BGP query surface of looking-glass routers.
pub struct LookingGlassBgp<'t> {
    topo: &'t Topology,
    routes: RouteCache,
    db: IpAsnDb,
}

impl<'t> LookingGlassBgp<'t> {
    /// Creates the query interface over a topology.
    pub fn new(topo: &'t Topology) -> Self {
        Self {
            topo,
            routes: RouteCache::new(),
            db: topo.build_ipasn_db(),
        }
    }

    /// Lists the BGP sessions of a router: its private point-to-point
    /// peers (far-end address from the shared /31) and its public
    /// sessions (the fabric neighbors it exchanges routes with).
    pub fn sessions(&self, router: RouterId) -> Vec<BgpSession> {
        let mut out = Vec::new();
        let asn = self.topo.routers[router].asn;
        for ifid in &self.topo.routers[router].ifaces {
            let iface = &self.topo.ifaces[*ifid];
            match iface.kind {
                IfaceKind::PrivatePtp(lid) => {
                    let link = &self.topo.links[lid];
                    let (my, other) = if link.a.iface == *ifid {
                        (&link.a, &link.b)
                    } else {
                        (&link.b, &link.a)
                    };
                    debug_assert_eq!(my.iface, *ifid);
                    out.push(BgpSession {
                        local_ip: iface.ip,
                        neighbor_ip: self.topo.ifaces[other.iface].ip,
                        neighbor_asn: other.asn,
                        over_ixp: None,
                    });
                }
                IfaceKind::IxpFabric(ixp) => {
                    // Sessions across the fabric: all members this AS has
                    // a public adjacency with at this exchange.
                    let exchange = &self.topo.ixps[ixp];
                    for m in &exchange.members {
                        if m.asn == asn {
                            continue;
                        }
                        let adjacent = self
                            .topo
                            .adjacency(asn, m.asn)
                            .is_some_and(|adj| {
                                adj.mediums.iter().any(|med| {
                                    matches!(med, cfs_topology::Medium::PublicIxp { ixp: i } if *i == ixp)
                                })
                            });
                        if adjacent {
                            out.push(BgpSession {
                                local_ip: iface.ip,
                                neighbor_ip: m.fabric_ip,
                                neighbor_asn: m.asn,
                                over_ixp: Some(ixp),
                            });
                        }
                    }
                }
                IfaceKind::Loopback | IfaceKind::Backbone => {}
            }
        }
        out.sort_by_key(|s| (s.neighbor_asn, s.neighbor_ip));
        out
    }

    /// Answers a route query from a router: the best AS path toward the
    /// destination and the ingress communities the local AS attached
    /// (when the operator's dictionary covers the entry facility).
    pub fn route(
        &self,
        router: RouterId,
        dest: Ipv4Addr,
        dict: &CommunityDictionary,
    ) -> Option<BgpRecord> {
        let asn = self.topo.routers[router].asn;
        let origin = self.db.origin(dest)?;
        let routes = self.routes.routes(self.topo, origin);
        let as_path = routes.path(asn)?;

        // The route entered this AS at the border router facing the next
        // hop; hot-potato from the LG router's position selects which
        // physical handoff that is (mirroring the traceroute engine).
        let mut communities = Vec::new();
        if as_path.len() >= 2 {
            let next = as_path[1];
            if let Some(adj) = self.topo.adjacency(asn, next) {
                let here = self.topo.routers[router].coords;
                let mut best: Option<(f64, RouterId)> = None;
                for medium in &adj.mediums {
                    let egress = match medium {
                        cfs_topology::Medium::Private(lid) => {
                            let link = &self.topo.links[*lid];
                            if link.a.asn == asn {
                                link.a.router
                            } else {
                                link.b.router
                            }
                        }
                        cfs_topology::Medium::PublicIxp { ixp } => {
                            match self.topo.ixps[*ixp].member(asn) {
                                Some(m) => m.router,
                                None => continue,
                            }
                        }
                    };
                    let d = here.distance_km(self.topo.routers[egress].coords);
                    if best.is_none_or(|(bd, _)| d < bd) {
                        best = Some((d, egress));
                    }
                }
                if let Some((_, border)) = best {
                    if let Some(facility) = self.topo.routers[border].location.facility() {
                        communities = dict.tags_for_ingress(self.topo, asn, facility);
                    }
                }
            }
        }
        Some(BgpRecord {
            as_path,
            communities,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfs_topology::TopologyConfig;
    use cfs_types::AsClass;

    fn setup() -> Topology {
        Topology::generate(TopologyConfig::tiny()).unwrap()
    }

    #[test]
    fn private_sessions_report_both_ends() {
        let topo = setup();
        let lg = LookingGlassBgp::new(&topo);
        let link = topo.links.values().next().expect("some link");
        let sessions = lg.sessions(link.a.router);
        let found = sessions
            .iter()
            .find(|s| s.neighbor_ip == topo.ifaces[link.b.iface].ip)
            .expect("session for the link");
        assert_eq!(found.neighbor_asn, link.b.asn);
        assert_eq!(found.local_ip, topo.ifaces[link.a.iface].ip);
        assert_eq!(found.over_ixp, None);
    }

    #[test]
    fn fabric_sessions_only_list_actual_peers() {
        let topo = setup();
        let lg = LookingGlassBgp::new(&topo);
        for ixp in topo.ixps.values().filter(|x| x.active) {
            for m in &ixp.members {
                let sessions = lg.sessions(m.router);
                for s in sessions.iter().filter(|s| s.over_ixp.is_some()) {
                    // Every reported fabric session corresponds to a
                    // public adjacency in ground truth.
                    let adj = topo.adjacency(m.asn, s.neighbor_asn);
                    assert!(adj.is_some(), "ghost session {s:?}");
                }
            }
        }
    }

    #[test]
    fn route_query_returns_valley_free_path_from_lg() {
        let topo = setup();
        let lg = LookingGlassBgp::new(&topo);
        let dict = CommunityDictionary::build(
            &topo,
            &topo
                .ases
                .values()
                .filter(|n| n.class == AsClass::Tier1)
                .map(|n| n.asn)
                .collect::<Vec<_>>(),
            20,
        );
        let tier1 = topo
            .ases
            .values()
            .find(|n| n.class == AsClass::Tier1)
            .unwrap();
        let router = tier1.routers[0];
        let dest_as = topo
            .ases
            .values()
            .find(|n| n.class == AsClass::Access)
            .unwrap();
        let dest = topo.target_ip(dest_as.asn).unwrap();
        let record = lg.route(router, dest, &dict).expect("route exists");
        assert_eq!(record.as_path.first(), Some(&tier1.asn));
        assert_eq!(record.as_path.last(), Some(&dest_as.asn));
    }

    #[test]
    fn communities_decode_to_a_real_ingress() {
        let topo = setup();
        let lg = LookingGlassBgp::new(&topo);
        let providers: Vec<Asn> = topo
            .ases
            .values()
            .filter(|n| n.class == AsClass::Tier1)
            .map(|n| n.asn)
            .collect();
        let dict = CommunityDictionary::build(&topo, &providers, 30);

        let mut tagged = 0;
        for p in &providers {
            let node = &topo.ases[p];
            for dest_node in topo.ases.values().take(20) {
                if dest_node.asn == *p {
                    continue;
                }
                let dest = topo.target_ip(dest_node.asn).unwrap();
                if let Some(rec) = lg.route(node.routers[0], dest, &dict) {
                    for cv in &rec.communities {
                        assert!(dict.decode(*cv).is_some(), "undecodable community {cv}");
                        tagged += 1;
                    }
                }
            }
        }
        assert!(tagged > 0, "no route ever carried an ingress tag");
    }

    #[test]
    fn unrouted_destination_yields_none() {
        let topo = setup();
        let lg = LookingGlassBgp::new(&topo);
        let dict = CommunityDictionary::default();
        let router = topo.routers.ids().next().unwrap();
        assert!(lg
            .route(router, "203.0.113.9".parse().unwrap(), &dict)
            .is_none());
    }
}
