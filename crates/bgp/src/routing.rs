//! Valley-free route computation (Gao–Rexford export rules).
//!
//! For a destination AS `d`, every other AS selects at most one best route
//! whose AS path climbs customer→provider links, crosses at most one peer
//! link, then descends provider→customer links. Preference at each AS is
//! customer routes > peer routes > provider routes, then shortest AS path,
//! then lowest next-hop ASN (determinism).
//!
//! The computation is the classic three-stage BFS over the adjacency list
//! — O(V + E) per destination — with explicit next-hop recording so paths
//! can be reconstructed without re-running anything.

use std::collections::{BTreeMap, VecDeque};
use std::sync::Arc;

use parking_lot::Mutex;

use cfs_topology::Topology;
use cfs_types::{Asn, Rel};

/// How a route was learned, in decreasing preference order.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RouteType {
    /// Learned from a customer (or the destination itself).
    Customer,
    /// Learned from a settlement-free peer.
    Peer,
    /// Learned from a transit provider.
    Provider,
}

#[derive(Clone, Copy, Debug)]
struct Route {
    kind: RouteType,
    len: u32,
    next_hop: Asn,
}

/// All best routes toward a single destination AS.
#[derive(Clone, Debug)]
pub struct RouteMap {
    dest: Asn,
    routes: BTreeMap<Asn, Route>,
}

impl RouteMap {
    /// The destination AS.
    pub fn dest(&self) -> Asn {
        self.dest
    }

    /// Whether `from` has any route to the destination.
    pub fn reaches(&self, from: Asn) -> bool {
        from == self.dest || self.routes.contains_key(&from)
    }

    /// The next hop `from` forwards to, if it has a route.
    pub fn next_hop(&self, from: Asn) -> Option<Asn> {
        if from == self.dest {
            return None;
        }
        self.routes.get(&from).map(|r| r.next_hop)
    }

    /// The route type at `from` ([`RouteType::Customer`] for the
    /// destination itself, by convention).
    pub fn route_type(&self, from: Asn) -> Option<RouteType> {
        if from == self.dest {
            return Some(RouteType::Customer);
        }
        self.routes.get(&from).map(|r| r.kind)
    }

    /// The full AS path from `from` to the destination, inclusive of both
    /// ends. `None` when unreachable.
    pub fn path(&self, from: Asn) -> Option<Vec<Asn>> {
        if from == self.dest {
            return Some(vec![from]);
        }
        let mut path = vec![from];
        let mut cur = from;
        // Bounded walk: AS paths cannot exceed the AS count.
        for _ in 0..=self.routes.len() {
            match self.next_hop(cur) {
                Some(next) => {
                    path.push(next);
                    if next == self.dest {
                        return Some(path);
                    }
                    cur = next;
                }
                None => return None,
            }
        }
        None // cycle guard; cannot happen with consistent route maps
    }

    /// Number of ASes holding a route.
    pub fn coverage(&self) -> usize {
        self.routes.len()
    }
}

/// Neighbor sets of one AS, split by relationship orientation.
#[derive(Default)]
struct Nbrs {
    customers: Vec<Asn>,
    providers: Vec<Asn>,
    peers: Vec<Asn>,
}

fn adjacency_lists(topo: &Topology) -> BTreeMap<Asn, Nbrs> {
    let mut map: BTreeMap<Asn, Nbrs> = BTreeMap::new();
    for asn in topo.ases.keys() {
        map.insert(*asn, Nbrs::default());
    }
    for adj in &topo.adjacencies {
        match adj.rel {
            Rel::CustomerToProvider => {
                map.get_mut(&adj.a)
                    .expect("as exists")
                    .providers
                    .push(adj.b);
                map.get_mut(&adj.b)
                    .expect("as exists")
                    .customers
                    .push(adj.a);
            }
            Rel::PeerToPeer => {
                map.get_mut(&adj.a).expect("as exists").peers.push(adj.b);
                map.get_mut(&adj.b).expect("as exists").peers.push(adj.a);
            }
        }
    }
    // Deterministic neighbor order.
    for n in map.values_mut() {
        n.customers.sort_unstable();
        n.providers.sort_unstable();
        n.peers.sort_unstable();
    }
    map
}

/// Computes best valley-free routes from every AS toward `dest`.
pub fn compute_routes(topo: &Topology, dest: Asn) -> RouteMap {
    let nbrs = adjacency_lists(topo);
    let mut routes: BTreeMap<Asn, Route> = BTreeMap::new();

    // Stage 1 — customer routes: BFS climbing provider links from dest.
    // An AS x obtains a customer route when some customer of x (or dest)
    // already has one; shorter paths first, lowest next-hop tie-break
    // (guaranteed by sorted neighbor lists + FIFO order).
    let mut queue: VecDeque<Asn> = VecDeque::new();
    queue.push_back(dest);
    while let Some(x) = queue.pop_front() {
        let x_len = if x == dest { 0 } else { routes[&x].len };
        if let Some(n) = nbrs.get(&x) {
            for p in n.providers.clone() {
                if p != dest && !routes.contains_key(&p) {
                    routes.insert(
                        p,
                        Route {
                            kind: RouteType::Customer,
                            len: x_len + 1,
                            next_hop: x,
                        },
                    );
                    queue.push_back(p);
                }
            }
        }
    }

    // Stage 2 — peer routes: one peer edge on top of a customer route.
    // Only customer routes are exported to peers.
    let customer_holders: Vec<(Asn, u32)> = routes
        .iter()
        .map(|(asn, r)| (*asn, r.len))
        .chain(std::iter::once((dest, 0)))
        .collect();
    let mut peer_candidates: BTreeMap<Asn, Route> = BTreeMap::new();
    for (y, y_len) in customer_holders {
        if let Some(n) = nbrs.get(&y) {
            for x in &n.peers {
                if *x == dest || routes.contains_key(x) {
                    continue; // customer route wins at x
                }
                let cand = Route {
                    kind: RouteType::Peer,
                    len: y_len + 1,
                    next_hop: y,
                };
                let better = match peer_candidates.get(x) {
                    None => true,
                    Some(old) => (cand.len, cand.next_hop) < (old.len, old.next_hop),
                };
                if better {
                    peer_candidates.insert(*x, cand);
                }
            }
        }
    }
    routes.extend(peer_candidates);

    // Stage 3 — provider routes: BFS descending customer links from every
    // AS that already holds a route. Ordered exploration by path length
    // keeps provider routes shortest; FIFO with sorted neighbors keeps
    // ties deterministic.
    let mut frontier: Vec<(u32, Asn)> = routes
        .iter()
        .map(|(asn, r)| (r.len, *asn))
        .chain(std::iter::once((0, dest)))
        .collect();
    frontier.sort_unstable();
    let mut queue: VecDeque<Asn> = frontier.into_iter().map(|(_, a)| a).collect();
    while let Some(y) = queue.pop_front() {
        let y_len = if y == dest { 0 } else { routes[&y].len };
        if let Some(n) = nbrs.get(&y) {
            for x in n.customers.clone() {
                if x == dest || routes.contains_key(&x) {
                    continue;
                }
                routes.insert(
                    x,
                    Route {
                        kind: RouteType::Provider,
                        len: y_len + 1,
                        next_hop: y,
                    },
                );
                queue.push_back(x);
            }
        }
    }

    RouteMap { dest, routes }
}

/// A thread-safe per-destination route cache. Experiments issue millions
/// of traceroutes toward a few hundred destinations; routes are computed
/// once per destination.
pub struct RouteCache {
    cache: Mutex<BTreeMap<Asn, Arc<RouteMap>>>,
}

impl RouteCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self {
            cache: Mutex::new(BTreeMap::new()),
        }
    }

    /// Routes toward `dest`, computing them on first use.
    pub fn routes(&self, topo: &Topology, dest: Asn) -> Arc<RouteMap> {
        if let Some(hit) = self.cache.lock().get(&dest) {
            return Arc::clone(hit);
        }
        let computed = Arc::new(compute_routes(topo, dest));
        let mut guard = self.cache.lock();
        Arc::clone(guard.entry(dest).or_insert(computed))
    }

    /// Number of destinations cached.
    pub fn len(&self) -> usize {
        self.cache.lock().len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.cache.lock().is_empty()
    }
}

impl Default for RouteCache {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfs_topology::TopologyConfig;

    fn topo() -> Topology {
        Topology::generate(TopologyConfig::tiny()).unwrap()
    }

    /// Checks the valley-free property of a path given the topology.
    fn assert_valley_free(topo: &Topology, path: &[Asn]) {
        #[derive(PartialEq, PartialOrd)]
        enum Phase {
            Up,
            Peer,
            Down,
        }
        // Walking from source toward dest: up (c2p), one peer, down (p2c).
        let mut phase = Phase::Up;
        for w in path.windows(2) {
            let adj = topo.adjacency(w[0], w[1]).expect("adjacent ASes");
            let step = match adj.rel {
                Rel::CustomerToProvider if adj.a == w[0] => Phase::Up,
                Rel::CustomerToProvider => Phase::Down,
                Rel::PeerToPeer => Phase::Peer,
            };
            match step {
                Phase::Up => assert!(phase == Phase::Up, "uphill after peak"),
                Phase::Peer => {
                    assert!(phase == Phase::Up, "second peak");
                    phase = Phase::Peer;
                }
                Phase::Down => phase = Phase::Down,
            }
        }
    }

    #[test]
    fn everyone_reaches_a_tier1() {
        let t = topo();
        let tier1 = t
            .ases
            .values()
            .find(|n| n.class == cfs_types::AsClass::Tier1)
            .map(|n| n.asn)
            .unwrap();
        let rm = compute_routes(&t, tier1);
        for asn in t.ases.keys() {
            assert!(rm.reaches(*asn), "{asn} cannot reach {tier1}");
        }
    }

    #[test]
    fn stubs_are_reachable_via_providers() {
        let t = topo();
        let stub = t
            .ases
            .values()
            .find(|n| n.class == cfs_types::AsClass::Enterprise)
            .map(|n| n.asn)
            .unwrap();
        let rm = compute_routes(&t, stub);
        // At minimum the stub's providers and the tier1 mesh reach it.
        let reached = t.ases.keys().filter(|a| rm.reaches(**a)).count();
        assert!(reached > t.ases.len() / 2, "only {reached} reach the stub");
    }

    #[test]
    fn paths_are_valley_free() {
        let t = topo();
        for dest_node in t.ases.values().take(12) {
            let rm = compute_routes(&t, dest_node.asn);
            for from in t.ases.keys() {
                if let Some(path) = rm.path(*from) {
                    assert_eq!(*path.last().unwrap(), dest_node.asn);
                    assert_eq!(path[0], *from);
                    assert_valley_free(&t, &path);
                }
            }
        }
    }

    #[test]
    fn paths_have_no_loops() {
        let t = topo();
        let dest = *t.ases.keys().next().unwrap();
        let rm = compute_routes(&t, dest);
        for from in t.ases.keys() {
            if let Some(path) = rm.path(*from) {
                let mut sorted = path.clone();
                sorted.sort_unstable();
                sorted.dedup();
                assert_eq!(sorted.len(), path.len(), "loop in {path:?}");
            }
        }
    }

    #[test]
    fn customer_routes_preferred_over_peer_and_provider() {
        let t = topo();
        // For a destination with customers, its direct providers should
        // hold Customer routes.
        for dest_node in t.ases.values() {
            let rm = compute_routes(&t, dest_node.asn);
            for adj in t.adjacencies_of(dest_node.asn) {
                if adj.rel == Rel::CustomerToProvider && adj.a == dest_node.asn {
                    assert_eq!(
                        rm.route_type(adj.b),
                        Some(RouteType::Customer),
                        "{}'s provider {} should use the customer route",
                        dest_node.asn,
                        adj.b
                    );
                }
            }
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let t = topo();
        let dest = *t.ases.keys().last().unwrap();
        let a = compute_routes(&t, dest);
        let b = compute_routes(&t, dest);
        for from in t.ases.keys() {
            assert_eq!(a.path(*from), b.path(*from));
        }
    }

    #[test]
    fn route_cache_computes_once_and_hits() {
        let t = topo();
        let dest = *t.ases.keys().next().unwrap();
        let cache = RouteCache::new();
        assert!(cache.is_empty());
        let first = cache.routes(&t, dest);
        let second = cache.routes(&t, dest);
        assert!(Arc::ptr_eq(&first, &second));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn dest_itself_has_trivial_path() {
        let t = topo();
        let dest = *t.ases.keys().next().unwrap();
        let rm = compute_routes(&t, dest);
        assert_eq!(rm.path(dest), Some(vec![dest]));
        assert_eq!(rm.next_hop(dest), None);
        assert!(rm.reaches(dest));
    }

    proptest::proptest! {
        /// Any reachable path is simple, valley-free, and ends at dest.
        #[test]
        fn prop_paths_well_formed(seed in 0u64..6, dest_idx in 0usize..40) {
            let t = Topology::generate(TopologyConfig::tiny().with_seed(seed)).unwrap();
            let asns: Vec<Asn> = t.ases.keys().copied().collect();
            let dest = asns[dest_idx % asns.len()];
            let rm = compute_routes(&t, dest);
            for from in &asns {
                if let Some(path) = rm.path(*from) {
                    proptest::prop_assert_eq!(path[0], *from);
                    proptest::prop_assert_eq!(*path.last().unwrap(), dest);
                    let mut s = path.clone();
                    s.sort_unstable();
                    s.dedup();
                    proptest::prop_assert_eq!(s.len(), path.len());
                    assert_valley_free(&t, &path);
                }
            }
        }
    }
}
