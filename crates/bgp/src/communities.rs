//! BGP communities: ingress-point tagging.
//!
//! §6 of the paper: "AS operators often use the BGP communities attribute
//! to tag the entry point of a route in their network … We compiled a
//! dictionary of 109 community values used to annotate ingress points,
//! defined by 4 large transit providers."
//!
//! We model exactly that: each participating transit provider defines
//! `provider_asn:value` communities, one per tagged ingress facility (plus
//! city-granularity values for facilities it never bothered to enumerate).
//! The dictionary is public; which routes carry which tags is computed by
//! the looking-glass oracle in `cfs-validate` from the actual ingress
//! router of the route.

use std::collections::BTreeMap;

use cfs_topology::Topology;
use cfs_types::{Asn, FacilityId, MetroId};

/// A BGP community `asn:value` (RFC 1997 style).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CommunityValue {
    /// The AS defining the community (a transit provider).
    pub asn: Asn,
    /// The operator-assigned value.
    pub value: u32,
}

impl std::fmt::Display for CommunityValue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}", self.asn.raw(), self.value)
    }
}

/// What an ingress community value means.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IngressTag {
    /// Route entered the network at this facility.
    Facility(FacilityId),
    /// Route entered somewhere in this metro (coarser scheme).
    Metro(MetroId),
}

/// The public dictionary of ingress communities.
///
/// Values are assigned per provider: facility tags start at 1000, metro
/// tags at 100, mirroring the ad-hoc numbering real operators publish on
/// their NOC pages.
#[derive(Clone, Debug, Default)]
pub struct CommunityDictionary {
    entries: BTreeMap<CommunityValue, IngressTag>,
    by_facility: BTreeMap<(Asn, FacilityId), CommunityValue>,
    by_metro: BTreeMap<(Asn, MetroId), CommunityValue>,
}

impl CommunityDictionary {
    /// Builds the dictionary for `providers` over the topology: each
    /// provider enumerates facility values for up to `max_facilities` of
    /// its sites (the paper's dictionary covers 109 values across 4
    /// providers — coverage is never complete) and metro values for every
    /// metro it operates in.
    pub fn build(topo: &Topology, providers: &[Asn], max_facilities: usize) -> Self {
        let mut dict = Self::default();
        for provider in providers {
            let Ok(node) = topo.as_node(*provider) else {
                continue;
            };
            for (fac_value, fac) in (1000u32..).zip(node.facilities.iter().take(max_facilities)) {
                let cv = CommunityValue {
                    asn: *provider,
                    value: fac_value,
                };
                dict.entries.insert(cv, IngressTag::Facility(*fac));
                dict.by_facility.insert((*provider, *fac), cv);
            }
            let mut metros: Vec<MetroId> = node
                .facilities
                .iter()
                .map(|f| topo.facilities[*f].metro)
                .collect();
            metros.sort();
            metros.dedup();
            for (metro_value, metro) in (100u32..).zip(metros) {
                let cv = CommunityValue {
                    asn: *provider,
                    value: metro_value,
                };
                dict.entries.insert(cv, IngressTag::Metro(metro));
                dict.by_metro.insert((*provider, metro), cv);
            }
        }
        dict
    }

    /// Decodes a community value, if it is in the dictionary.
    pub fn decode(&self, cv: CommunityValue) -> Option<IngressTag> {
        self.entries.get(&cv).copied()
    }

    /// The communities `provider` attaches to a route entering at
    /// `facility` (facility tag if enumerated, plus the metro tag).
    pub fn tags_for_ingress(
        &self,
        topo: &Topology,
        provider: Asn,
        facility: FacilityId,
    ) -> Vec<CommunityValue> {
        let mut out = Vec::with_capacity(2);
        if let Some(cv) = self.by_facility.get(&(provider, facility)) {
            out.push(*cv);
        }
        let metro = topo.facilities[facility].metro;
        if let Some(cv) = self.by_metro.get(&(provider, metro)) {
            out.push(*cv);
        }
        out
    }

    /// Total number of defined values.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the dictionary is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfs_topology::TopologyConfig;

    fn setup() -> (Topology, CommunityDictionary, Asn) {
        let topo = Topology::generate(TopologyConfig::default()).unwrap();
        let provider = topo
            .ases
            .values()
            .find(|n| n.class == cfs_types::AsClass::Tier1)
            .map(|n| n.asn)
            .unwrap();
        let dict = CommunityDictionary::build(&topo, &[provider], 30);
        (topo, dict, provider)
    }

    #[test]
    fn dictionary_has_entries_for_provider_sites() {
        let (topo, dict, provider) = setup();
        assert!(!dict.is_empty());
        let node = topo.as_node(provider).unwrap();
        let first = node.facilities[0];
        let tags = dict.tags_for_ingress(&topo, provider, first);
        assert!(tags
            .iter()
            .any(|cv| dict.decode(*cv) == Some(IngressTag::Facility(first))));
    }

    #[test]
    fn metro_tag_attached_even_without_facility_tag() {
        let (topo, dict, provider) = setup();
        let node = topo.as_node(provider).unwrap();
        // A facility beyond the enumeration cutoff still gets a metro tag
        // if the provider has any enumerated facility in that metro.
        if let Some(extra) = node.facilities.get(35) {
            let tags = dict.tags_for_ingress(&topo, provider, *extra);
            for cv in tags {
                assert!(matches!(dict.decode(cv), Some(IngressTag::Metro(_))));
            }
        }
    }

    #[test]
    fn unknown_values_do_not_decode() {
        let (_, dict, provider) = setup();
        assert_eq!(
            dict.decode(CommunityValue {
                asn: provider,
                value: 999_999
            }),
            None
        );
        assert_eq!(
            dict.decode(CommunityValue {
                asn: Asn(64_496),
                value: 1000
            }),
            None
        );
    }

    #[test]
    fn facilities_in_foreign_metros_get_no_tags() {
        let (topo, dict, provider) = setup();
        let node = topo.as_node(provider).unwrap();
        let provider_metros: std::collections::BTreeSet<_> = node
            .facilities
            .iter()
            .map(|f| topo.facilities[*f].metro)
            .collect();
        let foreign = topo
            .facilities
            .iter()
            .find(|(_, f)| !provider_metros.contains(&f.metro))
            .map(|(id, _)| id)
            .expect("a metro without the provider");
        assert!(dict.tags_for_ingress(&topo, provider, foreign).is_empty());
    }

    #[test]
    fn display_format() {
        let cv = CommunityValue {
            asn: Asn(3356),
            value: 1002,
        };
        assert_eq!(cv.to_string(), "3356:1002");
    }

    #[test]
    fn paper_scale_dictionary_size() {
        let topo = Topology::generate(TopologyConfig::paper()).unwrap();
        let providers: Vec<Asn> = [2914u32, 174, 3356, 1299].map(Asn).to_vec();
        // ~109 values total in the paper; we cap facility enumeration to
        // get the same order of magnitude.
        let dict = CommunityDictionary::build(&topo, &providers, 15);
        assert!(
            (60..400).contains(&dict.len()),
            "dictionary size {}",
            dict.len()
        );
    }
}
