//! # cfs — Constrained Facility Search
//!
//! A complete, self-contained reproduction of *"Mapping Peering
//! Interconnections to a Facility"* (Giotsas, Smaragdakis, Huffaker,
//! Luckie, claffy — CoNEXT 2015): infer, for every peering
//! interconnection observed in traceroute data, the **physical colocation
//! facility** it lives in and the **engineering method** used (public
//! peering over an IXP, private cross-connect, tethering VLAN, remote
//! peering).
//!
//! Because the paper consumes the live Internet, this workspace ships
//! every substrate it needs as a crate: a generative ground-truth
//! topology ([`topology`]), valley-free interdomain routing ([`bgp`]), a
//! Paris-traceroute measurement simulator ([`traceroute`]), MIDAR-style
//! alias resolution ([`alias`]), the messy public knowledge bases
//! ([`kb`]), the CFS algorithm itself ([`core`]), the geolocation
//! baselines it outperforms ([`baselines`]), the four-channel validation
//! harness ([`validate`]), and the experiment suite that regenerates
//! every table and figure ([`experiments`]).
//!
//! ## Quickstart
//!
//! ```
//! use cfs::prelude::*;
//!
//! // 1. A small synthetic peering ecosystem (facilities, IXPs, ASes).
//! let topo = Topology::generate(TopologyConfig::tiny()).unwrap();
//!
//! // 2. Measurement substrate: vantage points + traceroute engine.
//! let vps = deploy_vantage_points(&topo, &VpConfig::tiny()).unwrap();
//! let engine = Engine::new(&topo);
//!
//! // 3. The public view: PeeringDB-like sources, assembled per §3.1.
//! let sources = PublicSources::derive(&topo, &KbConfig::default());
//! let kb = KnowledgeBase::assemble(&sources, &topo.world);
//! let ipasn = topo.build_ipasn_db();
//!
//! // 4. Bootstrap campaign toward a few targets.
//! let targets: Vec<std::net::Ipv4Addr> =
//!     topo.ases.keys().take(5).map(|a| topo.target_ip(*a).unwrap()).collect();
//! let vp_ids: Vec<_> = vps.ids().collect();
//! let traces = run_campaign(&engine, &vps, &vp_ids, &targets, 0, &CampaignLimits::default());
//!
//! // 5. Run Constrained Facility Search as a resident session: converge
//! //    once, then query the cached report (and later absorb deltas via
//! //    `CfsSession::apply_delta` without re-running the world).
//! let mut session = Cfs::builder(&engine, &kb).vps(&vps).ipasn(&ipasn).build_session().unwrap();
//! session.ingest(traces);
//! let report = session.converge();
//! println!("resolved {}/{} interfaces", report.resolved(), report.total());
//! let probe = *report.interfaces.keys().next().unwrap();
//! let answer = session.query(probe);
//! println!("method {} (confidence {:.2})", answer.method, answer.confidence);
//! ```
//!
//! The same session powers the `cfsd` daemon: `cfs serve --socket
//! /tmp/cfsd.sock` keeps one resident and answers line-delimited
//! `cfs-api/1` requests (see [`svc`] and `cfs query`).

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub use cfs_alias as alias;
pub use cfs_baselines as baselines;
pub use cfs_bgp as bgp;
pub use cfs_chaos as chaos;
pub use cfs_core as core;
pub use cfs_detect as detect;
pub use cfs_experiments as experiments;
pub use cfs_geo as geo;
pub use cfs_kb as kb;
pub use cfs_net as net;
pub use cfs_obs as obs;
pub use cfs_svc as svc;
pub use cfs_topology as topology;
pub use cfs_traceroute as traceroute;
pub use cfs_types as types;
pub use cfs_validate as validate;

/// The names almost every user of the library needs.
pub mod prelude {
    pub use cfs_chaos::{FaultPlan, FaultProfile, RetryPolicy};
    pub use cfs_core::{
        canonical_trace, Cfs, CfsBuilder, CfsConfig, CfsReport, CfsSession, DataQualityReport,
        Delta, DeltaOutcome, InterconnectionAtlas, IterationStats, QueryAnswer, RemoteTester,
        SearchOutcome,
    };
    pub use cfs_kb::{degrade_sources, KbConfig, KnowledgeBase, PublicSources};
    pub use cfs_svc::{Client, Endpoint, Reply, Request, Server};
    pub use cfs_topology::{Topology, TopologyConfig};
    pub use cfs_traceroute::{
        deploy_vantage_points, run_campaign, CampaignLimits, ChaosEngine, Engine, Platform,
        ProbeService, VpConfig,
    };
    pub use cfs_types::{
        AsClass, Asn, FacilityId, FacilitySet, FacilitySetInterner, IxpId, MetroId, PeeringKind,
        Region, UnresolvedReason,
    };
    pub use cfs_validate::{score_report, ValidationOracles};
}
