//! The `cfs` command-line tool: generate worlds, run the full inference
//! pipeline, export the inferred interconnection map, and run the
//! analysis scenarios from the examples as one-shot commands.
//!
//! ```text
//! cfs world    [--scale S] [--seed N]             # ground-truth statistics
//! cfs run      [--scale S] [--seed N] [--out F]   # full pipeline + dataset export
//!              [--trace-json F] [--metrics]       #   + observability export
//!              [--profile-json F]                 #   + duration sidecar export
//!              [--faults P]                       #   + chaos fault injection
//! cfs audit    <asn> [--scale S] [--seed N]       # one network's peering map
//!              [--faults P]                       #   + data-quality section
//! cfs census   [--scale S] [--seed N]             # remote-peering census
//! cfs validate [--scale S] [--seed N]             # §6 validation scorecard
//! cfs trace-validate <file>                       # check a --trace-json export
//! cfs profile  <file> [--top N]                   # render a --profile-json export
//! cfs trace-diff <a> <b> [--json]                 # compare two exports
//!              [--tolerance-pct N]                #   (trace or profile pairs)
//! cfs serve    --socket PATH | --tcp ADDR         # resident cfsd daemon
//!              [--scale S] [--seed N]             #   speaking cfs-api/1
//!              [--campaigns N]                    #   + pre-ingested campaigns
//! cfs query    --socket PATH | --tcp ADDR         # one cfs-api/1 roundtrip
//!              <ip>|status|trace|shutdown         #   against a daemon
//!              [--raw JSON] [--out FILE]
//! ```

use std::collections::BTreeMap;
use std::net::Ipv4Addr;
use std::sync::Arc;

use cfs::obs::{Monotonic, TraceRecorder};
use cfs::prelude::*;
use cfs::svc::{ApiError, Outcome};
use cfs::traceroute::{ProbeService, Trace};
use cfs_experiments::{Lab, Scale};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let command = args.get(1).map(String::as_str).unwrap_or("help");
    let (scale, seed) = parse_flags(&args[2.min(args.len())..]);

    let code = match command {
        "world" => world(scale, seed),
        "snapshot" => snapshot(scale, seed, flag_value(&args, "--out")),
        "run" => run_cmd(
            scale,
            seed,
            flag_value(&args, "--out"),
            flag_value(&args, "--sources"),
            flag_value(&args, "--trace-json"),
            flag_value(&args, "--profile-json"),
            args.iter().any(|a| a == "--metrics"),
            flag_value(&args, "--faults"),
        ),
        "audit" => audit(
            scale,
            seed,
            args.get(2).and_then(|s| s.parse().ok()),
            flag_value(&args, "--faults"),
        ),
        "census" => census(scale, seed),
        "validate" => validate(scale, seed),
        "trace-validate" => trace_validate(args.get(2).map(String::as_str)),
        "profile" => profile_cmd(args.get(2).map(String::as_str), flag_value(&args, "--top")),
        "trace-diff" => trace_diff(
            args.get(2).map(String::as_str),
            args.get(3).map(String::as_str),
            args.iter().any(|a| a == "--json"),
            flag_value(&args, "--tolerance-pct"),
        ),
        "serve" => serve_cmd(
            scale,
            seed,
            flag_value(&args, "--socket"),
            flag_value(&args, "--tcp"),
            flag_value(&args, "--campaigns"),
        ),
        "query" => query_cmd(&args),
        "help" | "--help" | "-h" => {
            print_help();
            0
        }
        other => {
            eprintln!("unknown command {other:?}\n");
            print_help();
            2
        }
    };
    std::process::exit(code);
}

fn print_help() {
    eprintln!(
        "cfs — Constrained Facility Search (CoNEXT'15 reproduction)\n\n\
         usage: cfs <command> [--scale tiny|default|paper] [--seed N]\n\n\
         commands:\n\
         \x20 world      ground-truth statistics of a generated world\n\
         \x20 snapshot   export the public sources as editable JSON (--out FILE)\n\
         \x20 run        full pipeline; --out FILE exports the inferred map;\n\
         \x20            --sources FILE drives it from a saved/edited snapshot;\n\
         \x20            --trace-json FILE exports deterministic telemetry;\n\
         \x20            --profile-json FILE exports the wall-clock duration\n\
         \x20            sidecar (cfs-profile/1; never part of the trace digest);\n\
         \x20            --metrics prints a human timing/counter summary;\n\
         \x20            --faults P injects a deterministic fault profile\n\
         \x20            (off|default|flaky|blackout|stale-kb|mid-kb-refresh,\n\
         \x20            composable as a+b)\n\
         \x20 audit ASN  one network's inferred peering map; --faults P audits\n\
         \x20            a faulted run and prints its data-quality section\n\
         \x20 census     remote-peering census over the exchanges\n\
         \x20 validate   §6 validation scorecard\n\
         \x20 trace-validate FILE  check a --trace-json export (schema + digest)\n\
         \x20 profile FILE [--top N]  stage tree + bottlenecks of a profile export\n\
         \x20 trace-diff A B  compare two trace or profile exports\n\
         \x20            (--json for machine output; --tolerance-pct N for\n\
         \x20            profile durations, default 25; exit 0 same, 1 drift,\n\
         \x20            2 malformed)\n\
         \x20 serve      resident cfsd daemon speaking line-delimited cfs-api/1\n\
         \x20            over --socket PATH or --tcp ADDR; --campaigns N\n\
         \x20            pre-ingests the deterministic follow-on campaigns 1..N\n\
         \x20 query      one cfs-api/1 roundtrip against a daemon: an IPv4\n\
         \x20            address, status, trace, or shutdown (or --raw JSON);\n\
         \x20            --out FILE saves the payload; exit 0 ok, 3 transport\n\
         \x20            error, 4 daemon error response\n\
         \x20 help       this message\n\n\
         paper tables/figures: cargo run -p cfs-experiments --bin all -- --scale paper"
    );
}

fn parse_flags(args: &[String]) -> (Scale, Option<u64>) {
    let mut scale = Scale::Default;
    let mut seed = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                scale = match args.get(i + 1).map(String::as_str) {
                    Some("tiny") => Scale::Tiny,
                    Some("paper") => Scale::Paper,
                    _ => Scale::Default,
                };
                i += 1;
            }
            "--seed" => {
                seed = args.get(i + 1).and_then(|v| v.parse().ok());
                i += 1;
            }
            _ => {}
        }
        i += 1;
    }
    (scale, seed)
}

fn flag_value(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn provision(scale: Scale, seed: Option<u64>) -> Lab {
    Lab::provision(scale, seed).expect("world generation failed")
}

fn world(scale: Scale, seed: Option<u64>) -> i32 {
    let lab = provision(scale, seed);
    let t = &lab.topo;
    println!("scale: {} (seed {})", scale.label(), t.config.seed);
    println!("facilities:     {}", t.facilities.len());
    println!("ixps:           {}", t.ixps.len());
    println!("ases:           {}", t.ases.len());
    println!("routers:        {}", t.routers.len());
    println!("interfaces:     {}", t.ifaces.len());
    println!("private links:  {}", t.links.len());
    println!("as adjacencies: {}", t.adjacencies.len());
    for region in Region::ALL {
        let n = t.facilities.values().filter(|f| f.region == region).count();
        println!("  {region:<14} {n:>5} facilities");
    }
    0
}

fn snapshot(scale: Scale, seed: Option<u64>, out: Option<String>) -> i32 {
    let Some(path) = out else {
        eprintln!("usage: cfs snapshot --out FILE [--scale S] [--seed N]");
        return 2;
    };
    let lab = provision(scale, seed);
    match lab.sources.save(&path) {
        Ok(()) => {
            println!(
                "wrote public sources to {path} (world: scale {}, seed {})",
                scale.label(),
                lab.topo.config.seed
            );
            0
        }
        Err(e) => {
            eprintln!("failed to write {path}: {e}");
            1
        }
    }
}

#[allow(clippy::too_many_arguments)] // one flag per CLI switch, parsed in main
fn run_cmd(
    scale: Scale,
    seed: Option<u64>,
    out: Option<String>,
    sources_path: Option<String>,
    trace_json: Option<String>,
    profile_json: Option<String>,
    metrics: bool,
    faults: Option<String>,
) -> i32 {
    let sources = match sources_path {
        Some(p) => match cfs::kb::PublicSources::load(&p) {
            Ok(s) => Some(s),
            Err(e) => {
                eprintln!("failed to load sources from {p}: {e}");
                return 1;
            }
        },
        None => None,
    };
    let lab = Lab::provision_with_sources(scale, seed, sources).expect("world generation failed");
    let plan = match &faults {
        Some(spec) => match FaultPlan::named(spec, lab.topo.config.seed) {
            Some(p) => Some(p),
            None => {
                eprintln!(
                    "unknown fault profile {spec:?} (named: off, default, flaky, \
                     blackout, stale-kb, mid-kb-refresh; compose with `+`)"
                );
                return 2;
            }
        },
        None => None,
    };
    // Attach a recorder only when somebody will read it; otherwise the
    // pipeline keeps its free no-op instrumentation.
    let recorder = (trace_json.is_some() || profile_json.is_some() || metrics)
        .then(|| Arc::new(TraceRecorder::new(Arc::new(Monotonic::new()))));
    let report = match (plan, &recorder) {
        (Some(plan), Some(rec)) => {
            lab.run_cfs_chaos_observed(plan, CfsConfig::default(), rec.clone())
        }
        (Some(plan), None) => lab.run_cfs_chaos(plan, CfsConfig::default()),
        (None, Some(rec)) => lab.run_cfs_observed(CfsConfig::default(), rec.clone()),
        (None, None) => lab.run_cfs(None, None, CfsConfig::default()),
    };
    println!(
        "resolved {}/{} interfaces ({:.1}%) over {} iterations; {} follow-up traceroutes",
        report.resolved(),
        report.total(),
        report.resolved_fraction() * 100.0,
        report.iterations.len(),
        report.traces_issued,
    );
    if let Some(spec) = &faults {
        let dq = &report.data_quality;
        println!(
            "fault profile {spec}: {} failed probes, {} retried ({} denied), \
             {} VP breaker trips, {} interfaces metro-widened",
            dq.failed_probes,
            dq.probes_retried,
            dq.retries_denied,
            dq.vp_breaker_trips,
            dq.widened_interfaces,
        );
    }

    if let Some(path) = out {
        // The public dataset the paper publishes: every inferred
        // interface and interconnection, in machine-readable form.
        let interfaces: Vec<serde_json::Value> = report
            .interfaces
            .values()
            .map(|i| {
                serde_json::json!({
                    "ip": i.ip.to_string(),
                    "owner_asn": i.owner.map(|a| a.raw()),
                    "facility": i.facility.map(|f| lab.topo.facilities[f].name.clone()),
                    "metro": i.metro.map(|m| lab.topo.world.metro(m).name.clone()),
                    "outcome": format!("{:?}", i.outcome),
                    "remote_peer": i.remote,
                    "candidates": i.candidates.len(),
                    "resolved_at_iteration": i.resolved_at,
                    "via_proximity_heuristic": i.via_proximity,
                })
            })
            .collect();
        let links: Vec<serde_json::Value> = report
            .links
            .iter()
            .map(|l| {
                serde_json::json!({
                    "near_asn": l.near_asn.raw(),
                    "near_ip": l.near_ip.to_string(),
                    "far_asn": l.far_asn.map(|a| a.raw()),
                    "far_ip": l.far_ip.map(|ip| ip.to_string()),
                    "type": l.kind.label(),
                    "ixp": l.ixp.map(|x| lab.topo.ixps[x].name.clone()),
                    "near_facility": l.near_facility.map(|f| lab.topo.facilities[f].name.clone()),
                    "far_facility": l.far_facility.map(|f| lab.topo.facilities[f].name.clone()),
                })
            })
            .collect();
        let doc = serde_json::json!({
            "generator": "cfs (constrained facility search reproduction)",
            "scale": scale.label(),
            "interfaces": interfaces,
            "interconnections": links,
        });
        match serde_json::to_string_pretty(&doc)
            .map_err(|e| e.to_string())
            .and_then(|s| std::fs::write(&path, s).map_err(|e| e.to_string()))
        {
            Ok(()) => println!("wrote inferred map to {path}"),
            Err(e) => {
                eprintln!("failed to write {path}: {e}");
                return 1;
            }
        }
    }

    if let Some(rec) = &recorder {
        let snap = rec.snapshot();
        if let Some(path) = &trace_json {
            let doc = cfs::core::render_trace_json(&report, &snap);
            if let Err(e) = std::fs::write(path, &doc) {
                eprintln!("failed to write {path}: {e}");
                return 1;
            }
            println!("wrote trace telemetry to {path}");
        }
        if let Some(path) = &profile_json {
            let doc = cfs::core::render_profile_json(&snap);
            if let Err(e) = std::fs::write(path, &doc) {
                eprintln!("failed to write {path}: {e}");
                return 1;
            }
            println!("wrote duration profile to {path}");
        }
        if metrics {
            print!("{}", cfs::obs::export::render_metrics(&snap));
        }
    }
    0
}

/// Renders a `cfs-profile/1` export as a stage tree with self/child
/// time and a top-N bottleneck table.
fn profile_cmd(path: Option<&str>, top: Option<String>) -> i32 {
    let Some(path) = path else {
        eprintln!("usage: cfs profile FILE [--top N]");
        return 2;
    };
    let top_n = match top {
        None => 5,
        Some(raw) => match raw.parse() {
            Ok(n) => n,
            Err(_) => {
                eprintln!("--top wants a number, got {raw:?}");
                return 2;
            }
        },
    };
    let raw = match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("failed to read {path}: {e}");
            return 1;
        }
    };
    match cfs::obs::ProfileDoc::parse(&raw) {
        Ok(doc) => {
            print!("{}", cfs::obs::render_profile_report(&doc, top_n));
            0
        }
        Err(e) => {
            eprintln!("invalid profile {path}: {e}");
            1
        }
    }
}

/// Structurally compares two trace or profile exports. Exit 0 when
/// identical within tolerance, 1 on drift, 2 on malformed input.
fn trace_diff(a: Option<&str>, b: Option<&str>, json: bool, tolerance: Option<String>) -> i32 {
    let (Some(a_path), Some(b_path)) = (a, b) else {
        eprintln!("usage: cfs trace-diff A B [--json] [--tolerance-pct N]");
        return 2;
    };
    let tolerance_pct = match tolerance {
        None => 25,
        Some(raw) => match raw.parse() {
            Ok(n) => n,
            Err(_) => {
                eprintln!("--tolerance-pct wants a number, got {raw:?}");
                return 2;
            }
        },
    };
    let read = |path: &str| match std::fs::read_to_string(path) {
        Ok(s) => Some(s),
        Err(e) => {
            eprintln!("failed to read {path}: {e}");
            None
        }
    };
    let (Some(a_raw), Some(b_raw)) = (read(a_path), read(b_path)) else {
        return 2;
    };
    match cfs::obs::diff_docs(&a_raw, &b_raw, tolerance_pct) {
        Ok(diff) => {
            if json {
                println!("{}", diff.render_json());
            } else {
                print!("{}", diff.render_text());
            }
            i32::from(diff.is_drift())
        }
        Err(e) => {
            eprintln!("{e}");
            2
        }
    }
}

/// Checks a `--trace-json` export: schema marker, digest integrity, and
/// the structural invariants the document promises (monotone resolution
/// curve, shrinking trajectories, aligned histogram buckets).
fn trace_validate(path: Option<&str>) -> i32 {
    let Some(path) = path else {
        eprintln!("usage: cfs trace-validate FILE");
        return 2;
    };
    let raw = match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("failed to read {path}: {e}");
            return 1;
        }
    };
    // Problems are tagged with the document section that failed, so a
    // red CI run says *where* to look, not just that something is off.
    let mut problems: Vec<(&'static str, String)> = Vec::new();

    // Digest check on the raw bytes: everything after the digest member
    // is the digested body (see cfs_core::render_trace_json).
    let prefix = format!("{{\"schema\":\"{}\",\"digest\":\"", cfs::core::TRACE_SCHEMA);
    if let Some(rest) = raw.strip_prefix(prefix.as_str()) {
        match (rest.get(..16), rest.get(18..rest.len().saturating_sub(1))) {
            (Some(digest_hex), Some(body)) if rest[16..].starts_with("\",") => {
                let computed = format!("{:016x}", cfs::obs::export::fnv1a64(body));
                if computed != digest_hex {
                    problems.push((
                        "digest",
                        format!("digest mismatch: header {digest_hex}, body {computed}"),
                    ));
                }
            }
            _ => problems.push(("digest", "malformed digest member".into())),
        }
    } else {
        problems.push((
            "digest",
            format!("missing {} schema header", cfs::core::TRACE_SCHEMA),
        ));
    }

    let doc: serde_json::Value = match serde_json::from_str(&raw) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("invalid [json]: {path} is not JSON: {e}");
            return 1;
        }
    };
    for key in [
        "schema",
        "digest",
        "counters",
        "histogram_le",
        "histograms",
        "spans",
        "convergence",
        "resolution_curve",
    ] {
        if doc.get(key).is_none() {
            problems.push(("structure", format!("missing top-level member {key:?}")));
        }
    }
    if let Some(bounds) = doc.get("histogram_le").and_then(|v| v.as_array()) {
        let want = bounds.len() + 1;
        for (name, h) in doc
            .get("histograms")
            .and_then(|v| v.as_object())
            .map(|m| m.iter())
            .into_iter()
            .flatten()
        {
            let got = h.get("buckets").and_then(|b| b.as_array()).map(Vec::len);
            if got != Some(want) {
                problems.push((
                    "histograms",
                    format!("histogram {name:?}: {got:?} buckets, want {want}"),
                ));
            }
        }
    }
    if let Some(conv) = doc.get("convergence") {
        let le_len = conv
            .get("candidate_bucket_le")
            .and_then(|v| v.as_array())
            .map(Vec::len)
            .unwrap_or(0);
        for h in conv
            .get("per_iteration")
            .and_then(|v| v.as_array())
            .into_iter()
            .flatten()
        {
            let got = h.get("buckets").and_then(|b| b.as_array()).map(Vec::len);
            if got != Some(le_len + 1) {
                problems.push((
                    "convergence",
                    format!("per_iteration buckets: {got:?}, want {}", le_len + 1),
                ));
                break;
            }
        }
        for (ip, points) in conv
            .get("trajectories")
            .and_then(|v| v.as_object())
            .map(|m| m.iter())
            .into_iter()
            .flatten()
        {
            let sizes: Vec<u64> = points
                .as_array()
                .into_iter()
                .flatten()
                .filter_map(|p| p.as_array().and_then(|pair| pair.get(1)?.as_u64()))
                .collect();
            if sizes.windows(2).any(|w| w[1] > w[0]) {
                problems.push(("convergence", format!("trajectory {ip} grows: {sizes:?}")));
            }
        }
    }
    if let Some(curve) = doc.get("resolution_curve").and_then(|v| v.as_array()) {
        let vals: Vec<f64> = curve.iter().filter_map(|v| v.as_f64()).collect();
        if vals.windows(2).any(|w| w[1] < w[0]) || vals.iter().any(|v| !(0.0..=1.0).contains(v)) {
            problems.push((
                "resolution_curve",
                format!("resolution_curve not monotone in [0,1]: {vals:?}"),
            ));
        }
    }

    if problems.is_empty() {
        println!("{path}: valid {} document", cfs::core::TRACE_SCHEMA);
        0
    } else {
        for (section, p) in &problems {
            eprintln!("invalid [{section}]: {p}");
        }
        1
    }
}

fn audit(scale: Scale, seed: Option<u64>, asn: Option<u32>, faults: Option<String>) -> i32 {
    let Some(asn) = asn else {
        eprintln!("usage: cfs audit <asn> [--scale S] [--seed N] [--faults P]");
        return 2;
    };
    let target = Asn(asn);
    let lab = provision(scale, seed);
    if lab.topo.as_node(target).is_err() {
        eprintln!("{target} does not exist in this world");
        return 1;
    }
    let plan = match &faults {
        Some(spec) => match FaultPlan::named(spec, lab.topo.config.seed) {
            Some(p) => Some(p),
            None => {
                eprintln!(
                    "unknown fault profile {spec:?} (named: off, default, flaky, \
                     blackout, stale-kb, mid-kb-refresh; compose with `+`)"
                );
                return 2;
            }
        },
        None => None,
    };
    let report = match plan {
        Some(plan) => lab.run_cfs_chaos(plan, CfsConfig::default()),
        None => lab.run_cfs(None, None, CfsConfig::default()),
    };
    let node = lab.topo.as_node(target).expect("checked");
    println!("{target} ({}, {})", node.name, node.class);
    let by_kind = report.interfaces_by_kind(target);
    for kind in PeeringKind::ALL {
        if let Some(n) = by_kind.get(&kind) {
            println!("  {:<18} {n}", kind.label());
        }
    }
    let mut metros: BTreeMap<String, usize> = BTreeMap::new();
    for (ip, _) in report.interfaces_of_owner(target) {
        if let Some(f) = report.interfaces.get(&ip).and_then(|i| i.facility) {
            *metros
                .entry(
                    lab.topo
                        .world
                        .metro(lab.topo.facilities[f].metro)
                        .name
                        .clone(),
                )
                .or_default() += 1;
        }
    }
    println!("inferred interconnection metros:");
    for (m, n) in metros {
        println!("  {m:<16} {n}");
    }

    // What the run had to absorb to produce these verdicts — the
    // DataQualityReport ledger, plus this network's own share of the
    // unresolved-reason taxonomy.
    let dq = &report.data_quality;
    println!("data quality:");
    if let Some(spec) = &faults {
        println!("  fault profile     {spec}");
    }
    println!("  probes retried    {}", dq.probes_retried);
    println!("  retries denied    {}", dq.retries_denied);
    println!("  failed probes     {}", dq.failed_probes);
    println!("  vp breaker trips  {}", dq.vp_breaker_trips);
    println!("  widened ifaces    {}", dq.widened_interfaces);
    let mut asn_reasons: BTreeMap<&'static str, u64> = BTreeMap::new();
    for ip in report.interfaces_of_owner(target).keys() {
        if let Some(reason) = report.interfaces.get(ip).and_then(|i| i.unresolved_reason) {
            *asn_reasons.entry(reason.code()).or_default() += 1;
        }
    }
    if !dq.unresolved_reasons.is_empty() {
        println!("  unresolved reasons (run-wide / {target}):");
        for (code, n) in &dq.unresolved_reasons {
            let own = asn_reasons.get(code.as_str()).copied().unwrap_or(0);
            println!("    {code:<22} {n:>5} / {own}");
        }
    }
    0
}

fn census(scale: Scale, seed: Option<u64>) -> i32 {
    let lab = provision(scale, seed);
    let engine = cfs::traceroute::Engine::new(&lab.topo);
    let vps = &lab.vps;
    let tester = cfs::core::RemoteTester::new(&engine, vps);
    let mut total = 0usize;
    let mut remote = 0usize;
    for ixp_id in lab.kb.active_ixps().iter().copied() {
        for m in &lab.topo.ixps[ixp_id].members {
            if let Some(verdict) = tester.is_remote(ixp_id, m.fabric_ip) {
                total += 1;
                remote += usize::from(verdict);
            }
        }
    }
    println!(
        "remote-peering census: {remote}/{total} memberships inferred remote ({:.1}%)",
        100.0 * remote as f64 / total.max(1) as f64
    );
    0
}

fn validate(scale: Scale, seed: Option<u64>) -> i32 {
    let lab = provision(scale, seed);
    let report = lab.run_cfs(None, None, CfsConfig::default());
    let oracles = ValidationOracles::standard(&lab.topo, &lab.sources);
    let scored = score_report(&report, &oracles, &lab.topo);
    let overall = scored.overall();
    match overall.accuracy() {
        Some(acc) => {
            println!(
                "validated accuracy: {:.1}% ({}/{} facility-level checks)",
                acc * 100.0,
                overall.matched,
                overall.checked
            );
            0
        }
        None => {
            eprintln!("no validation coverage at this scale");
            1
        }
    }
}

/// Follow-up-less configuration for resident sessions: `apply_delta`
/// requires measurement-complete inputs (see `CfsSession::apply_delta`).
fn service_config() -> CfsConfig {
    CfsConfig {
        followup_interfaces: 0,
        ..CfsConfig::default()
    }
}

/// Deterministic follow-on campaign *k*: every vantage point probes the
/// standard targets at `k * 2h`. A pure function of `(world, k)`, so a
/// daemon that pre-ingested `--campaigns N` at boot and one that absorbed
/// the same numbers as `delta` requests hold identical inputs — and,
/// by the session determinism contract, identical reports.
fn serve_campaign(lab: &Lab, engine: &dyn ProbeService, k: u64) -> Vec<Trace> {
    let targets: Vec<Ipv4Addr> = lab
        .targets()
        .iter()
        .filter_map(|a| lab.topo.target_ip(*a).ok())
        .collect();
    let vp_ids: Vec<_> = lab.vps.ids().collect();
    run_campaign(
        engine,
        &lab.vps,
        &vp_ids,
        &targets,
        k * 7_200_000,
        &CampaignLimits::default(),
    )
}

/// `cfs serve`: provision a world, converge a resident session, and
/// answer `cfs-api/1` requests until a `shutdown` arrives.
fn serve_cmd(
    scale: Scale,
    seed: Option<u64>,
    socket: Option<String>,
    tcp: Option<String>,
    campaigns: Option<String>,
) -> i32 {
    let campaigns: u64 = match campaigns.map(|c| c.parse::<u64>()) {
        None => 0,
        Some(Ok(n)) => n,
        Some(Err(_)) => {
            eprintln!("--campaigns wants a number");
            return 2;
        }
    };
    // Bind before the (slow) world provisioning: early clients connect
    // immediately and their requests queue until the loop starts.
    let bound = match (&socket, &tcp) {
        (Some(path), None) => Server::bind_unix(std::path::Path::new(path)),
        (None, Some(addr)) => Server::bind_tcp(addr),
        _ => {
            eprintln!(
                "usage: cfs serve --socket PATH | --tcp ADDR \
                 [--scale S] [--seed N] [--campaigns N]"
            );
            return 2;
        }
    };
    let server = match bound {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cfsd: failed to bind: {e}");
            return 1;
        }
    };
    match server.tcp_addr() {
        Some(addr) => println!("cfsd: listening on {addr}"),
        None => println!("cfsd: listening on {}", socket.as_deref().unwrap_or("?")),
    }

    let lab = provision(scale, seed);
    let engine = Engine::new(&lab.topo);
    let mut session = Cfs::builder(&engine, &lab.kb)
        .vps(&lab.vps)
        .ipasn(&lab.ipasn)
        .config(service_config())
        .build_session()
        .expect("serve: CFS dependencies are always set");
    session.ingest(lab.bootstrap_traces(&engine, None));
    for k in 1..=campaigns {
        session.ingest(serve_campaign(&lab, &engine, k));
    }
    lab.feed_bgp_sessions(&mut session, None);
    session.converge();
    // The daemon's view of the public sources: kb-flip deltas mutate it
    // in place so consecutive flips compose.
    let mut sources = lab.sources.clone();
    {
        let report = session.report().expect("converged above");
        println!(
            "cfsd: serving {} interfaces ({} resolved) at epoch {}",
            report.total(),
            report.resolved(),
            session.epoch(),
        );
    }

    match server.serve(|req| dispatch(req, &mut session, &lab, &engine, &mut sources)) {
        Ok(()) => {
            println!("cfsd: shutdown");
            0
        }
        Err(e) => {
            eprintln!("cfsd: {e}");
            1
        }
    }
}

/// Answers one well-formed request against the resident session.
fn dispatch(
    req: Request,
    session: &mut CfsSession<'_>,
    lab: &Lab,
    engine: &dyn ProbeService,
    sources: &mut PublicSources,
) -> Outcome {
    match req {
        Request::Status => {
            let Some(report) = session.report() else {
                return Outcome::reply(
                    ApiError::new("internal", "session has not converged a report yet")
                        .to_response(),
                );
            };
            Outcome::reply(
                Reply::ok()
                    .str("state", "serving")
                    .u64("epoch", session.epoch())
                    .u64("interfaces", report.total() as u64)
                    .u64("resolved", report.resolved() as u64)
                    .u64("links", report.links.len() as u64)
                    .finish(),
            )
        }
        Request::Query { iface } => Outcome::reply(answer_query(&iface, session, lab)),
        Request::Trace => Outcome::reply(Reply::ok().raw("trace", &session.trace_json()).finish()),
        Request::Shutdown => Outcome::last(
            Reply::ok()
                .str("state", "stopping")
                .u64("epoch", session.epoch())
                .finish(),
        ),
        Request::DeltaCampaign { campaign } => {
            if campaign == 0 {
                return Outcome::reply(
                    ApiError::new(
                        "bad_delta",
                        "campaign numbers start at 1 (0 is the bootstrap campaign)",
                    )
                    .to_response(),
                );
            }
            let traces = serve_campaign(lab, engine, campaign);
            delta_reply(session.apply_delta(Delta::TracerouteBatch(traces)))
        }
        Request::DeltaKbFlip {
            asn,
            facility,
            present,
        } => {
            let target = Asn(asn);
            let facility = FacilityId::new(facility);
            if facility.raw() as usize >= lab.topo.facilities.len() {
                return Outcome::reply(
                    ApiError::new("bad_delta", format!("no such facility: {facility}"))
                        .to_response(),
                );
            }
            let Some(rec) = sources.pdb_networks.get_mut(&target) else {
                return Outcome::reply(
                    ApiError::new(
                        "bad_delta",
                        format!("{target} has no PeeringDB record in this world"),
                    )
                    .to_response(),
                );
            };
            // The assembled AS footprint is pdb ∪ NOC, so a flip must
            // touch both sources or the merged footprint never changes.
            rec.facilities.retain(|f| *f != facility);
            if present {
                rec.facilities.push(facility);
                rec.facilities.sort_unstable();
            }
            if let Some(page) = sources.noc_pages.get_mut(&target) {
                page.facilities.retain(|f| *f != facility);
                if present {
                    page.facilities.push(facility);
                    page.facilities.sort_unstable();
                }
            }
            let kb2 = KnowledgeBase::assemble(sources, &lab.topo.world);
            delta_reply(session.apply_delta(Delta::KbEpochFlip(Arc::new(kb2))))
        }
        Request::DeltaVpStatus { vp, up } => {
            let vp = cfs::types::VantagePointId::new(vp);
            if !lab.vps.ids().any(|i| i == vp) {
                return Outcome::reply(
                    ApiError::new("bad_delta", format!("no such vantage point: {vp}"))
                        .to_response(),
                );
            }
            delta_reply(session.apply_delta(Delta::VpStatusChange { vp, up }))
        }
    }
}

/// Renders a `DeltaOutcome` (or the engine's refusal) as a response.
fn delta_reply(result: cfs::types::Result<DeltaOutcome>) -> Outcome {
    match result {
        Ok(o) => Outcome::reply(
            Reply::ok()
                .u64("epoch", o.epoch)
                .u64("dirty", o.dirty as u64)
                .u64("reconverged", o.reconverged as u64)
                .u64("total", o.total as u64)
                .finish(),
        ),
        Err(e) => Outcome::reply(ApiError::new("internal", e.to_string()).to_response()),
    }
}

/// Answers a `query` op: `bad_iface` when the address does not parse,
/// `unknown_iface` when the session never observed it, otherwise the
/// facility/method/confidence verdict from the cached report.
fn answer_query(iface: &str, session: &CfsSession<'_>, lab: &Lab) -> String {
    let Ok(ip) = iface.parse::<Ipv4Addr>() else {
        return ApiError::new("bad_iface", format!("not an IPv4 address: {iface:?}")).to_response();
    };
    let tracked = session
        .report()
        .is_some_and(|r| r.interfaces.contains_key(&ip));
    if !tracked {
        return ApiError::new(
            "unknown_iface",
            format!("{ip} was never observed by this session"),
        )
        .to_response();
    }
    let a = session.query(ip);
    Reply::ok()
        .str("iface", &ip.to_string())
        .opt_u64("owner", a.owner.map(|x| u64::from(x.raw())))
        .opt_str(
            "facility",
            a.facility
                .and_then(|f| lab.topo.facilities.get(f))
                .map(|fac| fac.name.as_str()),
        )
        .opt_str(
            "metro",
            a.metro.map(|m| lab.topo.world.metro(m).name.as_str()),
        )
        .u64("candidates", a.candidates as u64)
        .str("outcome", &format!("{:?}", a.outcome))
        .str("method", a.method)
        .f64("confidence", a.confidence)
        .u64("epoch", a.epoch)
        .finish()
}

/// `cfs query`: one request/response roundtrip against a running daemon.
/// Exit 0 on an `ok:true` response, 2 on usage errors, 3 on transport
/// failures, 4 when the daemon answers with a typed error.
fn query_cmd(args: &[String]) -> i32 {
    let socket = flag_value(args, "--socket");
    let tcp = flag_value(args, "--tcp");
    let usage = "usage: cfs query --socket PATH | --tcp ADDR \
                 <ip>|status|trace|shutdown [--raw JSON] [--out FILE]";
    let endpoint = match (&socket, &tcp) {
        (Some(p), None) => Endpoint::Unix(std::path::PathBuf::from(p)),
        (None, Some(a)) => Endpoint::Tcp(a.clone()),
        _ => {
            eprintln!("{usage}");
            return 2;
        }
    };
    let request = match flag_value(args, "--raw") {
        Some(line) => line,
        None => {
            // First non-flag token after the command is the subject.
            let mut subject = None;
            let mut i = 2;
            while i < args.len() {
                if args[i].starts_with("--") {
                    i += 2; // every query flag takes a value
                } else {
                    subject = Some(args[i].as_str());
                    break;
                }
            }
            match subject {
                Some("status") => {
                    format!("{{\"schema\":\"{}\",\"op\":\"status\"}}", cfs::svc::SCHEMA)
                }
                Some("trace") => {
                    format!("{{\"schema\":\"{}\",\"op\":\"trace\"}}", cfs::svc::SCHEMA)
                }
                Some("shutdown") => {
                    format!(
                        "{{\"schema\":\"{}\",\"op\":\"shutdown\"}}",
                        cfs::svc::SCHEMA
                    )
                }
                Some(ip) => format!(
                    "{{\"schema\":\"{}\",\"op\":\"query\",\"iface\":\"{ip}\"}}",
                    cfs::svc::SCHEMA
                ),
                None => {
                    eprintln!("{usage}");
                    return 2;
                }
            }
        }
    };

    let mut client = match Client::connect(&endpoint) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("failed to connect: {e}");
            return 3;
        }
    };
    let response = match client.roundtrip(&request) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("transport error: {e}");
            return 3;
        }
    };
    let ok = serde_json::from_str::<serde_json::Value>(&response)
        .ok()
        .and_then(|v| v.get("ok")?.as_bool())
        == Some(true);
    // A trace reply wraps a complete cfs-trace/1 document; peel the
    // envelope so --out writes something trace-validate/trace-diff accept
    // byte-for-byte (the inner digest must not shift).
    let trace_prefix = format!(
        "{{\"schema\":\"{}\",\"ok\":true,\"trace\":",
        cfs::svc::SCHEMA
    );
    let payload = if ok {
        response
            .strip_prefix(trace_prefix.as_str())
            .and_then(|r| r.strip_suffix('}'))
            .unwrap_or(&response)
            .to_string()
    } else {
        response.clone()
    };
    match flag_value(args, "--out") {
        Some(path) => {
            if let Err(e) = std::fs::write(&path, &payload) {
                eprintln!("failed to write {path}: {e}");
                return 1;
            }
            println!("wrote response payload to {path}");
        }
        None => println!("{payload}"),
    }
    if ok {
        0
    } else {
        4
    }
}
