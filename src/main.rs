//! The `cfs` command-line tool: generate worlds, run the full inference
//! pipeline, export the inferred interconnection map, and run the
//! analysis scenarios from the examples as one-shot commands.
//!
//! ```text
//! cfs world    [--scale S] [--seed N]             # ground-truth statistics
//! cfs run      [--scale S] [--seed N] [--out F]   # full pipeline + dataset export
//!              [--trace-json F] [--metrics]       #   + observability export
//!              [--profile-json F]                 #   + duration sidecar export
//!              [--faults P]                       #   + chaos fault injection
//! cfs audit    <asn> [--scale S] [--seed N]       # one network's peering map
//!              [--faults P]                       #   + data-quality section
//!                                                 #   + KB reconciliation table
//! cfs kb-diff  <a> <b> [--scale S] [--seed N]     # pairwise source disagreement
//! cfs census   [--scale S] [--seed N]             # remote-peering census
//! cfs validate [--scale S] [--seed N]             # §6 validation scorecard
//! cfs trace-validate <file>                       # check a --trace-json export
//! cfs profile  <file> [--top N] [--folded]        # render a --profile-json export
//! cfs trace-diff <a> <b> [--json]                 # compare two exports
//!              [--tolerance-pct N]                #   (trace or profile pairs)
//!              [--baseline-dir DIR]               #   golden picked by run shape
//! cfs metrics-validate <file>                     # check a cfs-metrics/1 snapshot
//! cfs serve    --socket PATH | --tcp ADDR         # resident cfsd daemon
//!              [--scale S] [--seed N]             #   speaking cfs-api/1
//!              [--campaigns N] [--faults P]       #   + pre-ingested campaigns / chaos
//!              [--log FILE] [--window-ms N]       #   + event sink / metrics windows
//!              [--metrics-interval N]             #   + cadence cfs-metrics/1 snapshots
//!              [--metrics-out FILE]               #     (default cfs-metrics.json)
//!              [--detect] [--disrupt P]           #   + divergence detector / scheduled
//!              [--disrupt-seed N]                 #     disruption epochs (withheld)
//!              [--read-deadline-ms N]             #   + stalled-connection deadline
//! cfs query    --socket PATH | --tcp ADDR         # one cfs-api/1 roundtrip
//!              <ip>|status|trace|shutdown         #   against a daemon
//!              [--raw JSON] [--out FILE]
//! cfs metrics  --socket PATH | --tcp ADDR         # live cfs-metrics/1 snapshot
//!              [--json] [--out FILE]
//! cfs watch    --socket PATH | --tcp ADDR         # drain cfs-alerts/1 from a daemon
//!              [--json] [--out FILE] [--follow]   #   (cursor drain: nothing twice)
//!              [--min-severity S] [--polls N]
//! cfs alerts-validate <file>                      # check a cfs-alerts/1 export
//! cfs top      --socket PATH | --tcp ADDR         # polling terminal dashboard
//!              [--interval-ms N] [--polls N]
//! ```

use std::collections::BTreeMap;
use std::net::Ipv4Addr;
use std::sync::Arc;
use std::time::Duration;

use cfs::detect::{Detector, DetectorConfig, EpochObservation, LocusNames};
use cfs::obs::{
    pace, Clock, EventKind, EventLog, MetricsDoc, Monotonic, Recorder, TraceRecorder,
    WindowedRecorder,
};
use cfs::prelude::*;
use cfs::svc::{ApiError, Outcome};
use cfs::topology::{EventSchedule, ScheduleConfig, ScheduleIntensity};
use cfs::traceroute::{ProbeService, ScheduledEngine, Trace};
use cfs_experiments::{Lab, Scale};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let command = args.get(1).map(String::as_str).unwrap_or("help");
    let (scale, seed) = parse_flags(&args[2.min(args.len())..]);

    let code = match command {
        "world" => world(scale, seed),
        "snapshot" => snapshot(scale, seed, flag_value(&args, "--out")),
        "run" => run_cmd(
            scale,
            seed,
            flag_value(&args, "--out"),
            flag_value(&args, "--sources"),
            flag_value(&args, "--trace-json"),
            flag_value(&args, "--profile-json"),
            args.iter().any(|a| a == "--metrics"),
            flag_value(&args, "--faults"),
        ),
        "audit" => audit(
            scale,
            seed,
            args.get(2).and_then(|s| s.parse().ok()),
            flag_value(&args, "--faults"),
        ),
        "census" => census(scale, seed),
        "validate" => validate(scale, seed),
        "trace-validate" => trace_validate(args.get(2).map(String::as_str)),
        "metrics-validate" => metrics_validate(args.get(2).map(String::as_str)),
        "profile" => profile_cmd(
            args.get(2).map(String::as_str),
            flag_value(&args, "--top"),
            args.iter().any(|a| a == "--folded"),
        ),
        "trace-diff" => {
            let pos = positionals(&args, &["--json"]);
            trace_diff(
                pos.first().copied(),
                pos.get(1).copied(),
                args.iter().any(|a| a == "--json"),
                flag_value(&args, "--tolerance-pct"),
                flag_value(&args, "--baseline-dir"),
            )
        }
        "serve" => serve_cmd(scale, seed, &args),
        "kb-diff" => kb_diff(
            scale,
            seed,
            positionals(&args, &[]).first().copied().map(String::from),
            positionals(&args, &[]).get(1).copied().map(String::from),
        ),
        "query" => query_cmd(&args),
        "metrics" => metrics_cmd(&args),
        "watch" => watch_cmd(&args),
        "alerts-validate" => alerts_validate_cmd(args.get(2).map(String::as_str)),
        "top" => top_cmd(&args),
        "help" | "--help" | "-h" => {
            print_help();
            0
        }
        other => {
            eprintln!("unknown command {other:?}\n");
            print_help();
            2
        }
    };
    std::process::exit(code);
}

fn print_help() {
    eprintln!(
        "cfs — Constrained Facility Search (CoNEXT'15 reproduction)\n\n\
         usage: cfs <command> [--scale tiny|default|paper] [--seed N]\n\n\
         commands:\n\
         \x20 world      ground-truth statistics of a generated world\n\
         \x20 snapshot   export the public sources as editable JSON (--out FILE)\n\
         \x20 run        full pipeline; --out FILE exports the inferred map;\n\
         \x20            --sources FILE drives it from a saved/edited snapshot;\n\
         \x20            --trace-json FILE exports deterministic telemetry;\n\
         \x20            --profile-json FILE exports the wall-clock duration\n\
         \x20            sidecar (cfs-profile/1; never part of the trace digest);\n\
         \x20            --metrics prints a human timing/counter summary;\n\
         \x20            --faults P injects a deterministic fault profile\n\
         \x20            (off|default|flaky|blackout|stale-kb|mid-kb-refresh|\n\
         \x20            conflict, composable as a+b)\n\
         \x20 audit ASN  one network's inferred peering map; --faults P audits\n\
         \x20            a faulted run and prints its data-quality section;\n\
         \x20            always ends with the KB reconciliation table (per-source\n\
         \x20            trust priors vs observed agreement)\n\
         \x20 kb-diff A B  pairwise disagreement between two public sources\n\
         \x20            (noc, ixp-site, pch, pdb-fac, consortium, pdb-ixp,\n\
         \x20            pdb-net): shared/only-A/only-B claims + Jaccard\n\
         \x20 census     remote-peering census over the exchanges\n\
         \x20 validate   §6 validation scorecard\n\
         \x20 trace-validate FILE  check a --trace-json export (schema + digest)\n\
         \x20 metrics-validate FILE  check a cfs-metrics/1 snapshot (schema +\n\
         \x20            window/totals integrity)\n\
         \x20 profile FILE [--top N]  stage tree + bottlenecks of a profile export\n\
         \x20            (--folded emits flamegraph-compatible folded stacks)\n\
         \x20 trace-diff A B  compare two trace or profile exports\n\
         \x20            (--json for machine output; --tolerance-pct N for\n\
         \x20            profile durations, default 25; exit 0 same, 1 drift,\n\
         \x20            2 malformed); --baseline-dir DIR B picks the golden\n\
         \x20            from DIR by the candidate's run shape\n\
         \x20 serve      resident cfsd daemon speaking line-delimited cfs-api/1\n\
         \x20            over --socket PATH or --tcp ADDR; --campaigns N\n\
         \x20            pre-ingests the deterministic follow-on campaigns 1..N;\n\
         \x20            --faults P serves a chaos-degraded world; --log FILE\n\
         \x20            streams cfs-log/1 events; --window-ms N sets the\n\
         \x20            metrics window width (default 1000);\n\
         \x20            --metrics-interval N snapshots cfs-metrics/1 to\n\
         \x20            --metrics-out FILE (default cfs-metrics.json) at most\n\
         \x20            every N ms; --detect runs the rolling-baseline\n\
         \x20            divergence detector over campaign deltas (alerts op,\n\
         \x20            cfs watch); --disrupt P replays a seeded disruption\n\
         \x20            schedule (light|default|heavy) against the measurement\n\
         \x20            plane, --disrupt-seed N re-keys it (default: world\n\
         \x20            seed); --read-deadline-ms N drops connections that\n\
         \x20            stall mid-request-line\n\
         \x20 query      one cfs-api/1 roundtrip against a daemon: an IPv4\n\
         \x20            address, status, trace, or shutdown (or --raw JSON);\n\
         \x20            --out FILE saves the payload; exit 0 ok, 3 transport\n\
         \x20            error, 4 daemon error response\n\
         \x20 metrics    fetch a live daemon's cfs-metrics/1 snapshot\n\
         \x20            (--json for the raw document; --out FILE saves it)\n\
         \x20 watch      drain cfs-alerts/1 from a live daemon by cursor\n\
         \x20            (--json for JSON lines; --out FILE appends them;\n\
         \x20            --follow polls every --interval-ms N until --polls N;\n\
         \x20            --min-severity warn|error filters at the daemon)\n\
         \x20 alerts-validate FILE  check a cfs-alerts/1 export (schema,\n\
         \x20            vocabulary, cursor monotonicity)\n\
         \x20 top        polling dashboard over a live daemon: request rates,\n\
         \x20            per-op latency, delta churn, recent events\n\
         \x20            (--interval-ms N, default 1000; --polls N to stop)\n\
         \x20 help       this message\n\n\
         paper tables/figures: cargo run -p cfs-experiments --bin all -- --scale paper"
    );
}

fn parse_flags(args: &[String]) -> (Scale, Option<u64>) {
    let mut scale = Scale::Default;
    let mut seed = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                scale = match args.get(i + 1).map(String::as_str) {
                    Some("tiny") => Scale::Tiny,
                    Some("paper") => Scale::Paper,
                    _ => Scale::Default,
                };
                i += 1;
            }
            "--seed" => {
                seed = args.get(i + 1).and_then(|v| v.parse().ok());
                i += 1;
            }
            _ => {}
        }
        i += 1;
    }
    (scale, seed)
}

fn flag_value(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

/// The non-flag tokens after the command. Flags in `boolean` stand
/// alone; every other `--flag` consumes the following token as its
/// value.
fn positionals<'a>(args: &'a [String], boolean: &[&str]) -> Vec<&'a str> {
    let mut out = Vec::new();
    let mut i = 2;
    while i < args.len() {
        let a = args[i].as_str();
        if a.starts_with("--") {
            i += if boolean.contains(&a) { 1 } else { 2 };
        } else {
            out.push(a);
            i += 1;
        }
    }
    out
}

fn provision(scale: Scale, seed: Option<u64>) -> Lab {
    Lab::provision(scale, seed).expect("world generation failed")
}

fn world(scale: Scale, seed: Option<u64>) -> i32 {
    let lab = provision(scale, seed);
    let t = &lab.topo;
    println!("scale: {} (seed {})", scale.label(), t.config.seed);
    println!("facilities:     {}", t.facilities.len());
    println!("ixps:           {}", t.ixps.len());
    println!("ases:           {}", t.ases.len());
    println!("routers:        {}", t.routers.len());
    println!("interfaces:     {}", t.ifaces.len());
    println!("private links:  {}", t.links.len());
    println!("as adjacencies: {}", t.adjacencies.len());
    for region in Region::ALL {
        let n = t.facilities.values().filter(|f| f.region == region).count();
        println!("  {region:<14} {n:>5} facilities");
    }
    0
}

fn snapshot(scale: Scale, seed: Option<u64>, out: Option<String>) -> i32 {
    let Some(path) = out else {
        eprintln!("usage: cfs snapshot --out FILE [--scale S] [--seed N]");
        return 2;
    };
    let lab = provision(scale, seed);
    match lab.sources.save(&path) {
        Ok(()) => {
            println!(
                "wrote public sources to {path} (world: scale {}, seed {})",
                scale.label(),
                lab.topo.config.seed
            );
            0
        }
        Err(e) => {
            eprintln!("failed to write {path}: {e}");
            1
        }
    }
}

#[allow(clippy::too_many_arguments)] // one flag per CLI switch, parsed in main
fn run_cmd(
    scale: Scale,
    seed: Option<u64>,
    out: Option<String>,
    sources_path: Option<String>,
    trace_json: Option<String>,
    profile_json: Option<String>,
    metrics: bool,
    faults: Option<String>,
) -> i32 {
    let sources = match sources_path {
        Some(p) => match cfs::kb::PublicSources::load(&p) {
            Ok(s) => Some(s),
            Err(e) => {
                eprintln!("failed to load sources from {p}: {e}");
                return 1;
            }
        },
        None => None,
    };
    let lab = Lab::provision_with_sources(scale, seed, sources).expect("world generation failed");
    let plan = match &faults {
        Some(spec) => match FaultPlan::named(spec, lab.topo.config.seed) {
            Some(p) => Some(p),
            None => {
                eprintln!(
                    "unknown fault profile {spec:?} (named: off, default, flaky, \
                     blackout, stale-kb, mid-kb-refresh, conflict; compose with `+`)"
                );
                return 2;
            }
        },
        None => None,
    };
    // Attach a recorder only when somebody will read it; otherwise the
    // pipeline keeps its free no-op instrumentation.
    let recorder = (trace_json.is_some() || profile_json.is_some() || metrics)
        .then(|| Arc::new(TraceRecorder::new(Arc::new(Monotonic::new()))));
    let report = match (plan, &recorder) {
        (Some(plan), Some(rec)) => {
            lab.run_cfs_chaos_observed(plan, CfsConfig::default(), rec.clone())
        }
        (Some(plan), None) => lab.run_cfs_chaos(plan, CfsConfig::default()),
        (None, Some(rec)) => lab.run_cfs_observed(CfsConfig::default(), rec.clone()),
        (None, None) => lab.run_cfs(None, None, CfsConfig::default()),
    };
    println!(
        "resolved {}/{} interfaces ({:.1}%) over {} iterations; {} follow-up traceroutes",
        report.resolved(),
        report.total(),
        report.resolved_fraction() * 100.0,
        report.iterations.len(),
        report.traces_issued,
    );
    if let Some(spec) = &faults {
        let dq = &report.data_quality;
        println!(
            "fault profile {spec}: {} failed probes, {} retried ({} denied), \
             {} VP breaker trips, {} interfaces metro-widened, \
             {} contested pins refused",
            dq.failed_probes,
            dq.probes_retried,
            dq.retries_denied,
            dq.vp_breaker_trips,
            dq.widened_interfaces,
            dq.contested_pins_refused,
        );
    }

    if let Some(path) = out {
        // The public dataset the paper publishes: every inferred
        // interface and interconnection, in machine-readable form.
        let interfaces: Vec<serde_json::Value> = report
            .interfaces
            .values()
            .map(|i| {
                serde_json::json!({
                    "ip": i.ip.to_string(),
                    "owner_asn": i.owner.map(|a| a.raw()),
                    "facility": i.facility.map(|f| lab.topo.facilities[f].name.clone()),
                    "metro": i.metro.map(|m| lab.topo.world.metro(m).name.clone()),
                    "outcome": format!("{:?}", i.outcome),
                    "remote_peer": i.remote,
                    "candidates": i.candidates.len(),
                    "resolved_at_iteration": i.resolved_at,
                    "via_proximity_heuristic": i.via_proximity,
                })
            })
            .collect();
        let links: Vec<serde_json::Value> = report
            .links
            .iter()
            .map(|l| {
                serde_json::json!({
                    "near_asn": l.near_asn.raw(),
                    "near_ip": l.near_ip.to_string(),
                    "far_asn": l.far_asn.map(|a| a.raw()),
                    "far_ip": l.far_ip.map(|ip| ip.to_string()),
                    "type": l.kind.label(),
                    "ixp": l.ixp.map(|x| lab.topo.ixps[x].name.clone()),
                    "near_facility": l.near_facility.map(|f| lab.topo.facilities[f].name.clone()),
                    "far_facility": l.far_facility.map(|f| lab.topo.facilities[f].name.clone()),
                })
            })
            .collect();
        let doc = serde_json::json!({
            "generator": "cfs (constrained facility search reproduction)",
            "scale": scale.label(),
            "interfaces": interfaces,
            "interconnections": links,
        });
        match serde_json::to_string_pretty(&doc)
            .map_err(|e| e.to_string())
            .and_then(|s| std::fs::write(&path, s).map_err(|e| e.to_string()))
        {
            Ok(()) => println!("wrote inferred map to {path}"),
            Err(e) => {
                eprintln!("failed to write {path}: {e}");
                return 1;
            }
        }
    }

    if let Some(rec) = &recorder {
        let snap = rec.snapshot();
        if let Some(path) = &trace_json {
            // The shape fingerprint names the run configuration so
            // `trace-diff --baseline-dir` can pair this export with the
            // golden of the same shape. It is digested like any other
            // member; two runs differ in shape iff their config differs.
            let shape = format!(
                "scale={};seed={};faults={}",
                scale.label(),
                lab.topo.config.seed,
                faults.as_deref().unwrap_or("off")
            );
            let doc = cfs::core::render_trace_json_with_shape(&report, &snap, &shape);
            if let Err(e) = std::fs::write(path, &doc) {
                eprintln!("failed to write {path}: {e}");
                return 1;
            }
            println!("wrote trace telemetry to {path}");
        }
        if let Some(path) = &profile_json {
            let doc = cfs::core::render_profile_json(&snap);
            if let Err(e) = std::fs::write(path, &doc) {
                eprintln!("failed to write {path}: {e}");
                return 1;
            }
            println!("wrote duration profile to {path}");
        }
        if metrics {
            print!("{}", cfs::obs::export::render_metrics(&snap));
        }
    }
    0
}

/// Renders a `cfs-profile/1` export as a stage tree with self/child
/// time and a top-N bottleneck table — or, with `--folded`, as
/// folded-stack lines ready for flamegraph collapse tooling.
fn profile_cmd(path: Option<&str>, top: Option<String>, folded: bool) -> i32 {
    let Some(path) = path else {
        eprintln!("usage: cfs profile FILE [--top N] [--folded]");
        return 2;
    };
    let top_n = match top {
        None => 5,
        Some(raw) => match raw.parse() {
            Ok(n) => n,
            Err(_) => {
                eprintln!("--top wants a number, got {raw:?}");
                return 2;
            }
        },
    };
    let raw = match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("failed to read {path}: {e}");
            return 1;
        }
    };
    match cfs::obs::ProfileDoc::parse(&raw) {
        Ok(doc) => {
            if folded {
                print!("{}", cfs::obs::render_profile_folded(&doc));
            } else {
                print!("{}", cfs::obs::render_profile_report(&doc, top_n));
            }
            0
        }
        Err(e) => {
            eprintln!("invalid profile {path}: {e}");
            1
        }
    }
}

/// The `shape` member of a trace document, when present: the run-shape
/// fingerprint `cfs run` stamps next to the digest.
fn trace_shape(raw: &str) -> Option<String> {
    serde_json::from_str::<serde_json::Value>(raw)
        .ok()?
        .get("shape")?
        .as_str()
        .map(String::from)
}

/// Structurally compares two trace or profile exports. Exit 0 when
/// identical within tolerance, 1 on drift, 2 on malformed input. With
/// `--baseline-dir`, the baseline is the one `*.json` in the directory
/// whose `shape` fingerprint matches the candidate's — golden selection
/// by run shape instead of exact path.
fn trace_diff(
    a: Option<&str>,
    b: Option<&str>,
    json: bool,
    tolerance: Option<String>,
    baseline_dir: Option<String>,
) -> i32 {
    let tolerance_pct = match tolerance {
        None => 25,
        Some(raw) => match raw.parse() {
            Ok(n) => n,
            Err(_) => {
                eprintln!("--tolerance-pct wants a number, got {raw:?}");
                return 2;
            }
        },
    };
    let read = |path: &str| match std::fs::read_to_string(path) {
        Ok(s) => Some(s),
        Err(e) => {
            eprintln!("failed to read {path}: {e}");
            None
        }
    };
    let (a_raw, b_raw) = if let Some(dir) = baseline_dir {
        // One positional: the candidate. Its shape picks the golden.
        let Some(b_path) = a else {
            eprintln!("usage: cfs trace-diff --baseline-dir DIR B [--json] [--tolerance-pct N]");
            return 2;
        };
        let Some(b_raw) = read(b_path) else {
            return 2;
        };
        let Some(shape) = trace_shape(&b_raw) else {
            eprintln!(
                "{b_path} carries no \"shape\" member; --baseline-dir needs one \
                 (re-export with a current `cfs run --trace-json`)"
            );
            return 2;
        };
        let entries = match std::fs::read_dir(&dir) {
            Ok(it) => it,
            Err(e) => {
                eprintln!("failed to read baseline dir {dir}: {e}");
                return 2;
            }
        };
        let mut paths: Vec<std::path::PathBuf> = entries
            .flatten()
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|x| x == "json"))
            .collect();
        paths.sort();
        let mut matches: Vec<(String, String)> = Vec::new();
        for path in paths {
            let shown = path.display().to_string();
            if let Ok(raw) = std::fs::read_to_string(&path) {
                if trace_shape(&raw).as_deref() == Some(shape.as_str()) {
                    matches.push((shown, raw));
                }
            }
        }
        match matches.len() {
            0 => {
                eprintln!("no baseline in {dir} has shape {shape} (candidate {b_path})");
                return 2;
            }
            1 => {
                let (golden_path, golden_raw) = matches.remove(0);
                println!("baseline: {golden_path} (shape {shape})");
                (golden_raw, b_raw)
            }
            _ => {
                let names: Vec<&str> = matches.iter().map(|(p, _)| p.as_str()).collect();
                eprintln!("shape {shape} is ambiguous in {dir}: {names:?}");
                return 2;
            }
        }
    } else {
        let (Some(a_path), Some(b_path)) = (a, b) else {
            eprintln!(
                "usage: cfs trace-diff A B [--json] [--tolerance-pct N] \
                 | cfs trace-diff --baseline-dir DIR B"
            );
            return 2;
        };
        let (Some(a_raw), Some(b_raw)) = (read(a_path), read(b_path)) else {
            return 2;
        };
        (a_raw, b_raw)
    };
    match cfs::obs::diff_docs(&a_raw, &b_raw, tolerance_pct) {
        Ok(diff) => {
            if json {
                println!("{}", diff.render_json());
            } else {
                print!("{}", diff.render_text());
            }
            i32::from(diff.is_drift())
        }
        Err(e) => {
            eprintln!("{e}");
            2
        }
    }
}

/// Checks a `--trace-json` export: schema marker, digest integrity, and
/// the structural invariants the document promises (monotone resolution
/// curve, shrinking trajectories, aligned histogram buckets).
fn trace_validate(path: Option<&str>) -> i32 {
    let Some(path) = path else {
        eprintln!("usage: cfs trace-validate FILE");
        return 2;
    };
    let raw = match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("failed to read {path}: {e}");
            return 1;
        }
    };
    // Problems are tagged with the document section that failed, so a
    // red CI run says *where* to look, not just that something is off.
    let mut problems: Vec<(&'static str, String)> = Vec::new();

    // Digest check on the raw bytes: everything after the digest member
    // is the digested body (see cfs_core::render_trace_json).
    let prefix = format!("{{\"schema\":\"{}\",\"digest\":\"", cfs::core::TRACE_SCHEMA);
    if let Some(rest) = raw.strip_prefix(prefix.as_str()) {
        match (rest.get(..16), rest.get(18..rest.len().saturating_sub(1))) {
            (Some(digest_hex), Some(body)) if rest[16..].starts_with("\",") => {
                let computed = format!("{:016x}", cfs::obs::export::fnv1a64(body));
                if computed != digest_hex {
                    problems.push((
                        "digest",
                        format!("digest mismatch: header {digest_hex}, body {computed}"),
                    ));
                }
            }
            _ => problems.push(("digest", "malformed digest member".into())),
        }
    } else {
        problems.push((
            "digest",
            format!("missing {} schema header", cfs::core::TRACE_SCHEMA),
        ));
    }

    let doc: serde_json::Value = match serde_json::from_str(&raw) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("invalid [json]: {path} is not JSON: {e}");
            return 1;
        }
    };
    for key in [
        "schema",
        "digest",
        "counters",
        "histogram_le",
        "histograms",
        "spans",
        "convergence",
        "resolution_curve",
        "kb_quality",
    ] {
        if doc.get(key).is_none() {
            problems.push(("structure", format!("missing top-level member {key:?}")));
        }
    }
    if let Some(bounds) = doc.get("histogram_le").and_then(|v| v.as_array()) {
        let want = bounds.len() + 1;
        for (name, h) in doc
            .get("histograms")
            .and_then(|v| v.as_object())
            .map(|m| m.iter())
            .into_iter()
            .flatten()
        {
            let got = h.get("buckets").and_then(|b| b.as_array()).map(Vec::len);
            if got != Some(want) {
                problems.push((
                    "histograms",
                    format!("histogram {name:?}: {got:?} buckets, want {want}"),
                ));
            }
        }
    }
    if let Some(conv) = doc.get("convergence") {
        let le_len = conv
            .get("candidate_bucket_le")
            .and_then(|v| v.as_array())
            .map(Vec::len)
            .unwrap_or(0);
        for h in conv
            .get("per_iteration")
            .and_then(|v| v.as_array())
            .into_iter()
            .flatten()
        {
            let got = h.get("buckets").and_then(|b| b.as_array()).map(Vec::len);
            if got != Some(le_len + 1) {
                problems.push((
                    "convergence",
                    format!("per_iteration buckets: {got:?}, want {}", le_len + 1),
                ));
                break;
            }
        }
        for (ip, points) in conv
            .get("trajectories")
            .and_then(|v| v.as_object())
            .map(|m| m.iter())
            .into_iter()
            .flatten()
        {
            let sizes: Vec<u64> = points
                .as_array()
                .into_iter()
                .flatten()
                .filter_map(|p| p.as_array().and_then(|pair| pair.get(1)?.as_u64()))
                .collect();
            if sizes.windows(2).any(|w| w[1] > w[0]) {
                problems.push(("convergence", format!("trajectory {ip} grows: {sizes:?}")));
            }
        }
    }
    if let Some(curve) = doc.get("resolution_curve").and_then(|v| v.as_array()) {
        let vals: Vec<f64> = curve.iter().filter_map(|v| v.as_f64()).collect();
        if vals.windows(2).any(|w| w[1] < w[0]) || vals.iter().any(|v| !(0.0..=1.0).contains(v)) {
            problems.push((
                "resolution_curve",
                format!("resolution_curve not monotone in [0,1]: {vals:?}"),
            ));
        }
    }

    if problems.is_empty() {
        println!("{path}: valid {} document", cfs::core::TRACE_SCHEMA);
        0
    } else {
        for (section, p) in &problems {
            eprintln!("invalid [{section}]: {p}");
        }
        1
    }
}

/// `cfs metrics-validate`: check a saved `cfs-metrics/1` snapshot —
/// schema header, window/bucket structure, and the totals-equals-merged-
/// windows integrity invariant. Exit 0 valid, 1 invalid, 2 usage.
fn metrics_validate(path: Option<&str>) -> i32 {
    let Some(path) = path else {
        eprintln!("usage: cfs metrics-validate FILE");
        return 2;
    };
    let raw = match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("failed to read {path}: {e}");
            return 1;
        }
    };
    let problems = MetricsDoc::validate(&raw);
    if problems.is_empty() {
        println!("{path}: valid {} document", cfs::obs::METRICS_SCHEMA);
        0
    } else {
        for (section, p) in &problems {
            eprintln!("invalid [{section}]: {p}");
        }
        1
    }
}

fn audit(scale: Scale, seed: Option<u64>, asn: Option<u32>, faults: Option<String>) -> i32 {
    let Some(asn) = asn else {
        eprintln!("usage: cfs audit <asn> [--scale S] [--seed N] [--faults P]");
        return 2;
    };
    let target = Asn(asn);
    let lab = provision(scale, seed);
    if lab.topo.as_node(target).is_err() {
        eprintln!("{target} does not exist in this world");
        return 1;
    }
    let plan = match &faults {
        Some(spec) => match FaultPlan::named(spec, lab.topo.config.seed) {
            Some(p) => Some(p),
            None => {
                eprintln!(
                    "unknown fault profile {spec:?} (named: off, default, flaky, \
                     blackout, stale-kb, mid-kb-refresh, conflict; compose with `+`)"
                );
                return 2;
            }
        },
        None => None,
    };
    let report = match plan {
        Some(plan) => lab.run_cfs_chaos(plan, CfsConfig::default()),
        None => lab.run_cfs(None, None, CfsConfig::default()),
    };
    let node = lab.topo.as_node(target).expect("checked");
    println!("{target} ({}, {})", node.name, node.class);
    let by_kind = report.interfaces_by_kind(target);
    for kind in PeeringKind::ALL {
        if let Some(n) = by_kind.get(&kind) {
            println!("  {:<18} {n}", kind.label());
        }
    }
    let mut metros: BTreeMap<String, usize> = BTreeMap::new();
    for (ip, _) in report.interfaces_of_owner(target) {
        if let Some(f) = report.interfaces.get(&ip).and_then(|i| i.facility) {
            *metros
                .entry(
                    lab.topo
                        .world
                        .metro(lab.topo.facilities[f].metro)
                        .name
                        .clone(),
                )
                .or_default() += 1;
        }
    }
    println!("inferred interconnection metros:");
    for (m, n) in metros {
        println!("  {m:<16} {n}");
    }

    // What the run had to absorb to produce these verdicts — the
    // DataQualityReport ledger, plus this network's own share of the
    // unresolved-reason taxonomy.
    let dq = &report.data_quality;
    println!("data quality:");
    if let Some(spec) = &faults {
        println!("  fault profile     {spec}");
    }
    println!("  probes retried    {}", dq.probes_retried);
    println!("  retries denied    {}", dq.retries_denied);
    println!("  failed probes     {}", dq.failed_probes);
    println!("  vp breaker trips  {}", dq.vp_breaker_trips);
    println!("  widened ifaces    {}", dq.widened_interfaces);
    let mut asn_reasons: BTreeMap<&'static str, u64> = BTreeMap::new();
    for ip in report.interfaces_of_owner(target).keys() {
        if let Some(reason) = report.interfaces.get(ip).and_then(|i| i.unresolved_reason) {
            *asn_reasons.entry(reason.code()).or_default() += 1;
        }
    }
    if !dq.unresolved_reasons.is_empty() {
        println!("  unresolved reasons (run-wide / {target}):");
        for (code, n) in &dq.unresolved_reasons {
            let own = asn_reasons.get(code.as_str()).copied().unwrap_or(0);
            println!("    {code:<22} {n:>5} / {own}");
        }
    }

    // The knowledge plane behind those verdicts: how much the public
    // sources agreed once reconciled (DESIGN.md §11), and each source's
    // trust prior next to how its claims actually fared.
    let q = &report.kb_quality;
    println!("kb reconciliation:");
    println!(
        "  {} claims, mean agreement {}‰, contested {}‰",
        q.records,
        q.agreement_mean_pm,
        q.contested_pm()
    );
    println!(
        "  unanimous {} / majority {} / contested {} / single-source {}",
        q.unanimous, q.majority, q.contested, q.single_source
    );
    println!("  contested pins refused: {}", dq.contested_pins_refused);
    println!("  source        trust‰  claims  dissents  agreement‰");
    for (label, s) in &q.per_source {
        println!(
            "  {label:<12} {:>6}  {:>6}  {:>8}  {:>10}",
            s.trust_pm, s.claims, s.dissents, s.mean_agreement_pm
        );
    }
    0
}

/// `cfs kb-diff`: Klöti-style pairwise disagreement between two public
/// sources — per claim family, how many claims both assert, how many
/// only one side asserts, and the Jaccard agreement.
fn kb_diff(scale: Scale, seed: Option<u64>, a: Option<String>, b: Option<String>) -> i32 {
    let labels: Vec<&'static str> = cfs::kb::SourceId::ALL.iter().map(|s| s.label()).collect();
    let (Some(a), Some(b)) = (a, b) else {
        eprintln!(
            "usage: cfs kb-diff <source-a> <source-b> [--scale S] [--seed N]\n\
             sources: {}",
            labels.join(", ")
        );
        return 2;
    };
    let (Some(sa), Some(sb)) = (cfs::kb::SourceId::parse(&a), cfs::kb::SourceId::parse(&b)) else {
        eprintln!("unknown source (known: {})", labels.join(", "));
        return 2;
    };
    let lab = provision(scale, seed);
    let rows = cfs::kb::pairwise_diff(&lab.sources, sa, sb);
    if rows.is_empty() {
        println!("{a} and {b} share no claim family — nothing to diff");
        return 0;
    }
    println!(
        "pairwise disagreement {a} vs {b} (scale {}, seed {})",
        scale.label(),
        lab.topo.config.seed
    );
    println!("  family        both  only-{a:<10}  only-{b:<10}  jaccard‰");
    for r in &rows {
        println!(
            "  {:<12} {:>5}  {:>16}  {:>16}  {:>8}",
            r.family, r.both, r.only_a, r.only_b, r.jaccard_pm
        );
    }
    0
}

fn census(scale: Scale, seed: Option<u64>) -> i32 {
    let lab = provision(scale, seed);
    let engine = cfs::traceroute::Engine::new(&lab.topo);
    let vps = &lab.vps;
    let tester = cfs::core::RemoteTester::new(&engine, vps);
    let mut total = 0usize;
    let mut remote = 0usize;
    for ixp_id in lab.kb.active_ixps().iter().copied() {
        for m in &lab.topo.ixps[ixp_id].members {
            if let Some(verdict) = tester.is_remote(ixp_id, m.fabric_ip) {
                total += 1;
                remote += usize::from(verdict);
            }
        }
    }
    println!(
        "remote-peering census: {remote}/{total} memberships inferred remote ({:.1}%)",
        100.0 * remote as f64 / total.max(1) as f64
    );
    0
}

fn validate(scale: Scale, seed: Option<u64>) -> i32 {
    let lab = provision(scale, seed);
    let report = lab.run_cfs(None, None, CfsConfig::default());
    let oracles = ValidationOracles::standard(&lab.topo, &lab.sources);
    let scored = score_report(&report, &oracles, &lab.topo);
    let overall = scored.overall();
    match overall.accuracy() {
        Some(acc) => {
            println!(
                "validated accuracy: {:.1}% ({}/{} facility-level checks)",
                acc * 100.0,
                overall.matched,
                overall.checked
            );
            0
        }
        None => {
            eprintln!("no validation coverage at this scale");
            1
        }
    }
}

/// Follow-up-less configuration for resident sessions: `apply_delta`
/// requires measurement-complete inputs (see `CfsSession::apply_delta`).
fn service_config() -> CfsConfig {
    CfsConfig {
        followup_interfaces: 0,
        ..CfsConfig::default()
    }
}

/// Deterministic follow-on campaign *k*: every vantage point probes the
/// standard targets at `k * 2h`. A pure function of `(world, k)`, so a
/// daemon that pre-ingested `--campaigns N` at boot and one that absorbed
/// the same numbers as `delta` requests hold identical inputs — and,
/// by the session determinism contract, identical reports.
fn serve_campaign(lab: &Lab, engine: &dyn ProbeService, k: u64) -> Vec<Trace> {
    let targets: Vec<Ipv4Addr> = lab
        .targets()
        .iter()
        .filter_map(|a| lab.topo.target_ip(*a).ok())
        .collect();
    let vp_ids: Vec<_> = lab.vps.ids().collect();
    run_campaign(
        engine,
        &lab.vps,
        &vp_ids,
        &targets,
        k * 7_200_000,
        &CampaignLimits::default(),
    )
}

/// How many closed metrics windows the daemon retains (one minute at
/// the default `--window-ms 1000`).
const SERVE_WINDOWS_KEPT: usize = 60;

/// How many events the daemon's in-memory ring retains.
const SERVE_EVENT_CAP: usize = 256;

/// The daemon's live telemetry, threaded through the dispatch loop:
/// rolling metrics windows, the structured event log, and the last seen
/// data-quality totals (so dq *increases* become events).
struct ServeTelemetry {
    windows: Arc<WindowedRecorder>,
    events: EventLog,
    breaker_trips: u64,
    widened_interfaces: u64,
    /// The rolling-baseline divergence detector, present under
    /// `--detect`. A detection-off daemon still answers the `alerts` op
    /// (empty list, unmoved cursor) so clients need no capability probe.
    detector: Option<Detector>,
}

/// The span name timing one request's dispatch, by op.
fn op_span_name(req: &Request) -> &'static str {
    match req {
        Request::Status => "api.status",
        Request::Query { .. } => "api.query",
        Request::DeltaKbFlip { .. }
        | Request::DeltaCampaign { .. }
        | Request::DeltaVpStatus { .. } => "api.delta",
        Request::Trace => "api.trace",
        Request::Metrics => "api.metrics",
        Request::Events { .. } => "api.events",
        Request::Alerts { .. } => "api.alerts",
        Request::Shutdown => "api.shutdown",
    }
}

/// `cfs serve`: provision a world, converge a resident session, and
/// answer `cfs-api/1` requests until a `shutdown` arrives.
fn serve_cmd(scale: Scale, seed: Option<u64>, args: &[String]) -> i32 {
    let socket = flag_value(args, "--socket");
    let tcp = flag_value(args, "--tcp");
    let faults = flag_value(args, "--faults");
    let log_path = flag_value(args, "--log");
    let metrics_out = flag_value(args, "--metrics-out");
    let detect = args.iter().any(|a| a == "--detect");
    let campaigns: u64 = match flag_value(args, "--campaigns").map(|c| c.parse::<u64>()) {
        None => 0,
        Some(Ok(n)) => n,
        Some(Err(_)) => {
            eprintln!("--campaigns wants a number");
            return 2;
        }
    };
    let window_ms: u64 = match flag_value(args, "--window-ms").map(|w| w.parse::<u64>()) {
        None => 1_000,
        Some(Ok(n)) if n > 0 => n,
        _ => {
            eprintln!("--window-ms wants a positive number");
            return 2;
        }
    };
    let metrics_interval_ns: Option<u64> =
        match flag_value(args, "--metrics-interval").map(|v| v.parse::<u64>()) {
            None => None,
            Some(Ok(n)) if n > 0 => Some(n * 1_000_000),
            _ => {
                eprintln!("--metrics-interval wants a positive number of milliseconds");
                return 2;
            }
        };
    let disrupt: Option<ScheduleIntensity> = match flag_value(args, "--disrupt") {
        None => None,
        Some(p) => match ScheduleIntensity::parse(&p) {
            Some(i) => Some(i),
            None => {
                eprintln!("unknown disruption profile {p:?} (light, default, heavy)");
                return 2;
            }
        },
    };
    let disrupt_seed: Option<u64> = match flag_value(args, "--disrupt-seed").map(|v| v.parse()) {
        None => None,
        Some(Ok(n)) => Some(n),
        Some(Err(_)) => {
            eprintln!("--disrupt-seed wants a number");
            return 2;
        }
    };
    let read_deadline: Option<Duration> =
        match flag_value(args, "--read-deadline-ms").map(|v| v.parse::<u64>()) {
            None => None,
            Some(Ok(n)) if n > 0 => Some(Duration::from_millis(n)),
            _ => {
                eprintln!("--read-deadline-ms wants a positive number");
                return 2;
            }
        };
    let metrics_out = metrics_out.unwrap_or_else(|| "cfs-metrics.json".to_string());
    // Bind before the (slow) world provisioning: early clients connect
    // immediately and their requests queue until the loop starts.
    let bound = match (&socket, &tcp) {
        (Some(path), None) => Server::bind_unix(std::path::Path::new(path)),
        (None, Some(addr)) => Server::bind_tcp(addr),
        _ => {
            eprintln!(
                "usage: cfs serve --socket PATH | --tcp ADDR \
                 [--scale S] [--seed N] [--campaigns N] [--faults P] \
                 [--log FILE] [--window-ms N] \
                 [--metrics-interval MS] [--metrics-out FILE] \
                 [--detect] [--disrupt light|default|heavy] [--disrupt-seed N] \
                 [--read-deadline-ms N]"
            );
            return 2;
        }
    };
    let server = match bound {
        Ok(s) => s.with_read_deadline(read_deadline),
        Err(e) => {
            eprintln!("cfsd: failed to bind: {e}");
            return 1;
        }
    };
    match server.tcp_addr() {
        Some(addr) => println!("cfsd: listening on {addr}"),
        None => println!("cfsd: listening on {}", socket.as_deref().unwrap_or("?")),
    }

    let lab = provision(scale, seed);
    let plan = match &faults {
        Some(spec) => match FaultPlan::named(spec, lab.topo.config.seed) {
            Some(p) => Some(p),
            None => {
                eprintln!(
                    "unknown fault profile {spec:?} (named: off, default, flaky, \
                     blackout, stale-kb, mid-kb-refresh, conflict; compose with `+`)"
                );
                return 2;
            }
        },
        None => None,
    };
    // The daemon's view of the public sources: kb-flip deltas mutate it
    // in place so consecutive flips compose. Under --faults it starts
    // from the chaos-degraded snapshot, exactly like a faulted batch run.
    let mut sources = match &plan {
        Some(p) => degrade_sources(&lab.sources, p),
        None => lab.sources.clone(),
    };
    // The disruption schedule perturbs the measurement plane only: the
    // engine answers probes as if the scheduled elements were dark, and
    // neither the session nor the detector ever sees the event list.
    let schedule: Option<EventSchedule> = disrupt.map(|intensity| {
        let sc =
            ScheduleConfig::at_intensity(disrupt_seed.unwrap_or(lab.topo.config.seed), intensity);
        EventSchedule::generate(&lab.topo, sc)
    });
    if let (Some(i), Some(s)) = (disrupt, &schedule) {
        println!(
            "cfsd: disruption schedule armed: {} events ({} profile, withheld)",
            s.events.len(),
            i.label(),
        );
    }
    let engine_plain;
    let engine_chaos;
    let engine_scheduled;
    let engine_scheduled_chaos;
    let kb_degraded;
    let kb: &KnowledgeBase = match &plan {
        Some(_) => {
            kb_degraded = KnowledgeBase::assemble(&sources, &lab.topo.world);
            &kb_degraded
        }
        None => &lab.kb,
    };
    let engine: &dyn ProbeService = match (plan, schedule) {
        (Some(p), Some(s)) => {
            engine_scheduled_chaos =
                ScheduledEngine::new(ChaosEngine::new(Engine::new(&lab.topo), p), s);
            &engine_scheduled_chaos
        }
        (Some(p), None) => {
            engine_chaos = ChaosEngine::new(Engine::new(&lab.topo), p);
            &engine_chaos
        }
        (None, Some(s)) => {
            engine_scheduled = ScheduledEngine::new(Engine::new(&lab.topo), s);
            &engine_scheduled
        }
        (None, None) => {
            engine_plain = Engine::new(&lab.topo);
            &engine_plain
        }
    };

    // Live telemetry: one real clock shared by the windowed recorder,
    // its inner trace recorder, and the event log. None of this touches
    // the canonical trace — `trace` replies are rebuilt from the report.
    let clock = Arc::new(Monotonic::new());
    let windows = Arc::new(WindowedRecorder::new(
        Arc::new(TraceRecorder::new(clock.clone())),
        clock.clone(),
        window_ms * 1_000_000,
        SERVE_WINDOWS_KEPT,
    ));
    let mut events = EventLog::new(clock.clone(), SERVE_EVENT_CAP);
    if let Some(path) = &log_path {
        match std::fs::File::create(path) {
            Ok(f) => events = events.with_sink(f),
            Err(e) => {
                eprintln!("cfsd: failed to open --log {path}: {e}");
                return 1;
            }
        }
    }

    // The detector names its loci from public knowledge only (the same
    // facility/exchange names the KB publishes); the schedule stays
    // withheld. Its clock is the daemon's clock, so alert `t_ns` values
    // share the timeline of the metrics windows and the event log.
    let mut detector: Option<Detector> = detect.then(|| {
        let names = LocusNames {
            facilities: lab
                .topo
                .facilities
                .iter()
                .map(|(id, f)| (id.raw(), f.name.clone()))
                .collect(),
            ixps: lab
                .topo
                .ixps
                .iter()
                .map(|(id, x)| (id.raw(), x.name.clone()))
                .collect(),
        };
        Detector::new(
            DetectorConfig::default(),
            names,
            clock.clone() as Arc<dyn Clock>,
        )
    });

    let mut session = Cfs::builder(engine, kb)
        .vps(&lab.vps)
        .ipasn(&lab.ipasn)
        .config(service_config())
        .recorder(windows.clone())
        .build_session()
        .expect("serve: CFS dependencies are always set");
    // Summarize each pre-ingested *campaign* before the session consumes
    // it; the detector replays them (in epoch order, against the
    // converged report) so its baselines are as warm as the session's
    // state. The bootstrap batch is deliberately not observed: its
    // archived iPlane/Ark sweeps reach interfaces no periodic campaign
    // revisits, and a baseline seeded from that wider coverage would
    // read every sweep-only facility as a permanent outage.
    let mut pending_obs: Vec<EpochObservation> = Vec::new();
    session.ingest(lab.bootstrap_traces(engine, None));
    for k in 1..=campaigns {
        let traces = serve_campaign(&lab, engine, k);
        if detector.is_some() {
            pending_obs.push(EpochObservation::from_traces(k, &traces));
        }
        session.ingest(traces);
    }
    lab.feed_bgp_sessions(&mut session, None);
    session.converge();
    if let Some(det) = detector.as_mut() {
        let report = session.report().expect("converged above");
        for obs in &pending_obs {
            det.observe(obs, report);
        }
    }
    let (breaker_trips, widened_interfaces) = {
        let report = session.report().expect("converged above");
        println!(
            "cfsd: serving {} interfaces ({} resolved) at epoch {}",
            report.total(),
            report.resolved(),
            session.epoch(),
        );
        events.emit(EventKind::SessionConverged {
            epoch: session.epoch(),
            resolved: report.resolved() as u64,
            total: report.total() as u64,
        });
        let dq = &report.data_quality;
        if dq.vp_breaker_trips > 0 {
            events.emit(EventKind::BreakerTrip {
                trips: dq.vp_breaker_trips,
            });
        }
        if dq.widened_interfaces > 0 {
            events.emit(EventKind::WidenedInterfaces {
                count: dq.widened_interfaces,
            });
        }
        (dq.vp_breaker_trips, dq.widened_interfaces)
    };
    let mut tele = ServeTelemetry {
        windows,
        events,
        breaker_trips,
        widened_interfaces,
        detector,
    };

    // Cadence snapshots of the live window ring: the clock that drives
    // the windows also decides when a snapshot is due, so a request
    // burst writes at most one file per interval and an idle daemon
    // writes none (the loop only runs between requests).
    let mut next_snapshot_ns = metrics_interval_ns.map(|iv| clock.now_ns() + iv);
    let served = server.serve(|req| {
        // Count and time every dispatched request into the windows; the
        // span lands under its op's name (api.query, api.delta, …).
        let op = op_span_name(&req);
        tele.windows.counter("api.requests", 1);
        let start = tele.windows.span_start();
        let out = dispatch(req, &mut session, &lab, engine, &mut sources, &mut tele);
        tele.windows.span_end(op, start);
        if let (Some(iv), Some(due)) = (metrics_interval_ns, next_snapshot_ns.as_mut()) {
            let now = clock.now_ns();
            if now >= *due {
                if let Err(e) = std::fs::write(&metrics_out, tele.windows.render_metrics_json()) {
                    eprintln!("cfsd: failed to write --metrics-out {metrics_out}: {e}");
                }
                // Re-anchor on now, not on `due`: a long gap between
                // requests must not trigger a burst of catch-up writes.
                *due = now + iv;
            }
        }
        out
    });
    match served {
        Ok(()) => {
            println!("cfsd: shutdown");
            0
        }
        Err(e) => {
            eprintln!("cfsd: {e}");
            1
        }
    }
}

/// Answers one well-formed request against the resident session.
fn dispatch(
    req: Request,
    session: &mut CfsSession<'_>,
    lab: &Lab,
    engine: &dyn ProbeService,
    sources: &mut PublicSources,
    tele: &mut ServeTelemetry,
) -> Outcome {
    match req {
        Request::Status => {
            let Some(report) = session.report() else {
                return Outcome::reply(
                    ApiError::new("internal", "session has not converged a report yet")
                        .to_response(),
                );
            };
            Outcome::reply(
                Reply::ok()
                    .str("state", "serving")
                    .u64("epoch", session.epoch())
                    .u64("interfaces", report.total() as u64)
                    .u64("resolved", report.resolved() as u64)
                    .u64("links", report.links.len() as u64)
                    .finish(),
            )
        }
        Request::Query { iface } => Outcome::reply(answer_query(&iface, session, lab)),
        Request::Trace => Outcome::reply(Reply::ok().raw("trace", &session.trace_json()).finish()),
        Request::Metrics => Outcome::reply(
            Reply::ok()
                .raw("metrics", &tele.windows.render_metrics_json())
                .finish(),
        ),
        Request::Events {
            since,
            min_severity,
        } => {
            // The parser pinned the vocabulary, so an unknown label here
            // is unreachable; default to the lowest floor regardless.
            let floor = match min_severity.as_deref() {
                Some("error") => cfs::obs::Severity::Error,
                Some("warn") => cfs::obs::Severity::Warn,
                _ => cfs::obs::Severity::Info,
            };
            let (drained, next) = tele.events.since(since);
            let mut arr = String::from("[");
            let mut first = true;
            for e in &drained {
                if e.kind.severity() < floor {
                    continue; // filtered, but `next` still advances past it
                }
                if !first {
                    arr.push(',');
                }
                first = false;
                arr.push_str(&e.render_json());
            }
            arr.push(']');
            Outcome::reply(Reply::ok().u64("next", next).raw("events", &arr).finish())
        }
        Request::Alerts {
            since,
            min_severity,
        } => {
            let floor = match min_severity.as_deref() {
                Some("error") => cfs::obs::Severity::Error,
                Some("warn") => cfs::obs::Severity::Warn,
                _ => cfs::obs::Severity::Info,
            };
            // Detection off: an empty list with an unmoved cursor, so
            // pollers need no capability probe and lose nothing if the
            // daemon is later restarted with --detect.
            let Some(det) = tele.detector.as_ref() else {
                return Outcome::reply(Reply::ok().u64("next", since).raw("alerts", "[]").finish());
            };
            let (drained, next) = det.alerts().since(since);
            let mut arr = String::from("[");
            let mut first = true;
            for a in &drained {
                if a.severity < floor {
                    continue; // filtered, but `next` still advances past it
                }
                if !first {
                    arr.push(',');
                }
                first = false;
                arr.push_str(&a.render_json());
            }
            arr.push(']');
            Outcome::reply(Reply::ok().u64("next", next).raw("alerts", &arr).finish())
        }
        Request::Shutdown => Outcome::last(
            Reply::ok()
                .str("state", "stopping")
                .u64("epoch", session.epoch())
                .finish(),
        ),
        Request::DeltaCampaign { campaign } => {
            if campaign == 0 {
                return Outcome::reply(
                    ApiError::new(
                        "bad_delta",
                        "campaign numbers start at 1 (0 is the bootstrap campaign)",
                    )
                    .to_response(),
                );
            }
            let traces = serve_campaign(lab, engine, campaign);
            // Summarize the raw batch before apply_delta consumes it:
            // per-epoch visibility comes from what this batch actually
            // saw, not from the session's cumulative state.
            let obs = tele
                .detector
                .as_ref()
                .map(|_| EpochObservation::from_traces(campaign, &traces));
            let result = session.apply_delta(Delta::TracerouteBatch(traces));
            if result.is_ok() {
                if let (Some(det), Some(obs)) = (tele.detector.as_mut(), obs.as_ref()) {
                    if let Some(report) = session.report() {
                        let emitted = det.observe(obs, report);
                        tele.windows.counter("detect.alerts", emitted.len() as u64);
                    }
                }
            }
            delta_reply("campaign", result, session, tele)
        }
        Request::DeltaKbFlip {
            asn,
            facility,
            present,
        } => {
            let target = Asn(asn);
            let facility = FacilityId::new(facility);
            if facility.raw() as usize >= lab.topo.facilities.len() {
                return Outcome::reply(
                    ApiError::new("bad_delta", format!("no such facility: {facility}"))
                        .to_response(),
                );
            }
            let Some(rec) = sources.pdb_networks.get_mut(&target) else {
                return Outcome::reply(
                    ApiError::new(
                        "bad_delta",
                        format!("{target} has no PeeringDB record in this world"),
                    )
                    .to_response(),
                );
            };
            // The assembled AS footprint is pdb ∪ NOC, so a flip must
            // touch both sources or the merged footprint never changes.
            rec.facilities.retain(|f| *f != facility);
            if present {
                rec.facilities.push(facility);
                rec.facilities.sort_unstable();
            }
            if let Some(page) = sources.noc_pages.get_mut(&target) {
                page.facilities.retain(|f| *f != facility);
                if present {
                    page.facilities.push(facility);
                    page.facilities.sort_unstable();
                }
            }
            let kb2 = KnowledgeBase::assemble(sources, &lab.topo.world);
            let result = session.apply_delta(Delta::KbEpochFlip(Arc::new(kb2)));
            if result.is_ok() {
                tele.events.emit(EventKind::KbFlip {
                    asn,
                    facility: facility.raw(),
                    present,
                });
            }
            delta_reply("kb-flip", result, session, tele)
        }
        Request::DeltaVpStatus { vp, up } => {
            let vp = cfs::types::VantagePointId::new(vp);
            if !lab.vps.ids().any(|i| i == vp) {
                return Outcome::reply(
                    ApiError::new("bad_delta", format!("no such vantage point: {vp}"))
                        .to_response(),
                );
            }
            let result = session.apply_delta(Delta::VpStatusChange { vp, up });
            delta_reply("vp-status", result, session, tele)
        }
    }
}

/// Renders a `DeltaOutcome` (or the engine's refusal) as a response,
/// and logs the applied delta — plus any data-quality regressions the
/// re-convergence surfaced — into the daemon's event stream.
fn delta_reply(
    kind: &'static str,
    result: cfs::types::Result<DeltaOutcome>,
    session: &CfsSession<'_>,
    tele: &mut ServeTelemetry,
) -> Outcome {
    match result {
        Ok(o) => {
            tele.events.emit(EventKind::DeltaApplied {
                kind,
                epoch: o.epoch,
                dirty: o.dirty as u64,
                reconverged: o.reconverged as u64,
            });
            tele.windows.counter("serve.dirty_ifaces", o.dirty as u64);
            tele.windows
                .counter("serve.reconverged", o.reconverged as u64);
            if let Some(report) = session.report() {
                let dq = &report.data_quality;
                if dq.vp_breaker_trips > tele.breaker_trips {
                    tele.events.emit(EventKind::BreakerTrip {
                        trips: dq.vp_breaker_trips - tele.breaker_trips,
                    });
                    tele.breaker_trips = dq.vp_breaker_trips;
                }
                if dq.widened_interfaces > tele.widened_interfaces {
                    tele.events.emit(EventKind::WidenedInterfaces {
                        count: dq.widened_interfaces - tele.widened_interfaces,
                    });
                    tele.widened_interfaces = dq.widened_interfaces;
                }
            }
            Outcome::reply(
                Reply::ok()
                    .u64("epoch", o.epoch)
                    .u64("dirty", o.dirty as u64)
                    .u64("reconverged", o.reconverged as u64)
                    .u64("total", o.total as u64)
                    .finish(),
            )
        }
        Err(e) => Outcome::reply(ApiError::new("internal", e.to_string()).to_response()),
    }
}

/// Answers a `query` op: `bad_iface` when the address does not parse,
/// `unknown_iface` when the session never observed it, otherwise the
/// facility/method/confidence verdict from the cached report.
fn answer_query(iface: &str, session: &CfsSession<'_>, lab: &Lab) -> String {
    let Ok(ip) = iface.parse::<Ipv4Addr>() else {
        return ApiError::new("bad_iface", format!("not an IPv4 address: {iface:?}")).to_response();
    };
    let tracked = session
        .report()
        .is_some_and(|r| r.interfaces.contains_key(&ip));
    if !tracked {
        return ApiError::new(
            "unknown_iface",
            format!("{ip} was never observed by this session"),
        )
        .to_response();
    }
    let a = session.query(ip);
    Reply::ok()
        .str("iface", &ip.to_string())
        .opt_u64("owner", a.owner.map(|x| u64::from(x.raw())))
        .opt_str(
            "facility",
            a.facility
                .and_then(|f| lab.topo.facilities.get(f))
                .map(|fac| fac.name.as_str()),
        )
        .opt_str(
            "metro",
            a.metro.map(|m| lab.topo.world.metro(m).name.as_str()),
        )
        .u64("candidates", a.candidates as u64)
        .str("outcome", &format!("{:?}", a.outcome))
        .str("method", a.method)
        .f64("confidence", a.confidence)
        .u64("epoch", a.epoch)
        .finish()
}

/// `cfs query`: one request/response roundtrip against a running daemon.
/// Exit 0 on an `ok:true` response, 2 on usage errors, 3 on transport
/// failures, 4 when the daemon answers with a typed error.
fn query_cmd(args: &[String]) -> i32 {
    let socket = flag_value(args, "--socket");
    let tcp = flag_value(args, "--tcp");
    let usage = "usage: cfs query --socket PATH | --tcp ADDR \
                 <ip>|status|trace|shutdown [--raw JSON] [--out FILE]";
    let endpoint = match (&socket, &tcp) {
        (Some(p), None) => Endpoint::Unix(std::path::PathBuf::from(p)),
        (None, Some(a)) => Endpoint::Tcp(a.clone()),
        _ => {
            eprintln!("{usage}");
            return 2;
        }
    };
    let request = match flag_value(args, "--raw") {
        Some(line) => line,
        None => {
            // First non-flag token after the command is the subject.
            let mut subject = None;
            let mut i = 2;
            while i < args.len() {
                if args[i].starts_with("--") {
                    i += 2; // every query flag takes a value
                } else {
                    subject = Some(args[i].as_str());
                    break;
                }
            }
            match subject {
                Some("status") => {
                    format!("{{\"schema\":\"{}\",\"op\":\"status\"}}", cfs::svc::SCHEMA)
                }
                Some("trace") => {
                    format!("{{\"schema\":\"{}\",\"op\":\"trace\"}}", cfs::svc::SCHEMA)
                }
                Some("shutdown") => {
                    format!(
                        "{{\"schema\":\"{}\",\"op\":\"shutdown\"}}",
                        cfs::svc::SCHEMA
                    )
                }
                Some(ip) => format!(
                    "{{\"schema\":\"{}\",\"op\":\"query\",\"iface\":\"{ip}\"}}",
                    cfs::svc::SCHEMA
                ),
                None => {
                    eprintln!("{usage}");
                    return 2;
                }
            }
        }
    };

    let mut client = match Client::connect(&endpoint) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("failed to connect: {e}");
            return 3;
        }
    };
    let response = match client.roundtrip(&request) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("transport error: {e}");
            return 3;
        }
    };
    let ok = serde_json::from_str::<serde_json::Value>(&response)
        .ok()
        .and_then(|v| v.get("ok")?.as_bool())
        == Some(true);
    // A trace reply wraps a complete cfs-trace/1 document; peel the
    // envelope so --out writes something trace-validate/trace-diff accept
    // byte-for-byte (the inner digest must not shift).
    let trace_prefix = format!(
        "{{\"schema\":\"{}\",\"ok\":true,\"trace\":",
        cfs::svc::SCHEMA
    );
    let payload = if ok {
        response
            .strip_prefix(trace_prefix.as_str())
            .and_then(|r| r.strip_suffix('}'))
            .unwrap_or(&response)
            .to_string()
    } else {
        response.clone()
    };
    match flag_value(args, "--out") {
        Some(path) => {
            if let Err(e) = std::fs::write(&path, &payload) {
                eprintln!("failed to write {path}: {e}");
                return 1;
            }
            println!("wrote response payload to {path}");
        }
        None => println!("{payload}"),
    }
    if ok {
        0
    } else {
        4
    }
}

/// Resolves the `--socket`/`--tcp` pair every daemon-client command
/// shares; prints `usage` and returns `None` when neither (or both)
/// is given.
fn client_endpoint(args: &[String], usage: &str) -> Option<Endpoint> {
    let socket = flag_value(args, "--socket");
    let tcp = flag_value(args, "--tcp");
    match (socket, tcp) {
        (Some(p), None) => Some(Endpoint::Unix(std::path::PathBuf::from(p))),
        (None, Some(a)) => Some(Endpoint::Tcp(a)),
        _ => {
            eprintln!("{usage}");
            None
        }
    }
}

/// `cfs metrics`: fetch a live daemon's `cfs-metrics/1` snapshot and
/// print a human summary (default), the raw document (`--json`), or
/// save it (`--out FILE`). Exit 0 ok, 2 usage, 3 transport, 4 when the
/// daemon answers with an error or an unparseable snapshot.
fn metrics_cmd(args: &[String]) -> i32 {
    let usage = "usage: cfs metrics --socket PATH | --tcp ADDR [--json] [--out FILE]";
    let Some(endpoint) = client_endpoint(args, usage) else {
        return 2;
    };
    let request = format!("{{\"schema\":\"{}\",\"op\":\"metrics\"}}", cfs::svc::SCHEMA);
    let mut client = match Client::connect(&endpoint) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("failed to connect: {e}");
            return 3;
        }
    };
    let response = match client.roundtrip(&request) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("transport error: {e}");
            return 3;
        }
    };
    // Peel the cfs-api/1 envelope so what we print or save is a complete
    // cfs-metrics/1 document that `metrics-validate` accepts byte-for-byte.
    let prefix = format!(
        "{{\"schema\":\"{}\",\"ok\":true,\"metrics\":",
        cfs::svc::SCHEMA
    );
    let doc = match response
        .strip_prefix(prefix.as_str())
        .and_then(|r| r.strip_suffix('}'))
    {
        Some(d) => d,
        None => {
            eprintln!("{response}");
            return 4;
        }
    };
    if let Some(path) = flag_value(args, "--out") {
        if let Err(e) = std::fs::write(&path, doc) {
            eprintln!("failed to write {path}: {e}");
            return 1;
        }
        println!("wrote metrics snapshot to {path}");
        return 0;
    }
    if args.iter().any(|a| a == "--json") {
        println!("{doc}");
        return 0;
    }
    match MetricsDoc::parse(doc) {
        Ok(parsed) => {
            print!("{}", render_metrics_summary(&parsed));
            0
        }
        Err(e) => {
            eprintln!("daemon returned an unparseable snapshot: {e}");
            4
        }
    }
}

/// Renders the human `cfs metrics` summary: uptime, request volume and
/// rate over the retained windows, per-op latency quantiles from the
/// totals block, and the delta-churn counters.
fn render_metrics_summary(doc: &MetricsDoc) -> String {
    let ms = |ns: u64| ns as f64 / 1e6;
    let total = |name: &str| doc.totals.counters.get(name).copied().unwrap_or(0);
    let mut out = format!(
        "uptime       {:.1}s · {} windows of {}ms retained\n",
        doc.uptime_ns as f64 / 1e9,
        doc.windows.len(),
        doc.window_ns / 1_000_000,
    );
    let requests = total("api.requests");
    let span_s = (doc.windows.len() as u64).saturating_mul(doc.window_ns) as f64 / 1e9;
    let rate = if span_s > 0.0 {
        requests as f64 / span_s
    } else {
        0.0
    };
    out.push_str(&format!(
        "requests     {requests} ({rate:.1}/s over retained windows)\n"
    ));
    let ops: Vec<_> = doc
        .totals
        .durations
        .iter()
        .filter(|(name, _)| name.starts_with("api."))
        .collect();
    if !ops.is_empty() {
        out.push_str("per-op latency (count · p50 / p99):\n");
        for (name, d) in ops {
            out.push_str(&format!(
                "  {:<14} {:>6} · {:.3}ms / {:.3}ms\n",
                &name["api.".len()..],
                d.count,
                ms(d.quantile_ns(50)),
                ms(d.quantile_ns(99)),
            ));
        }
    }
    out.push_str(&format!(
        "delta churn  {} interfaces dirtied, {} reconverged\n",
        total("serve.dirty_ifaces"),
        total("serve.reconverged"),
    ));
    out
}

/// One human-readable line for a drained `cfs-log/1` event, rendered
/// client-side from its JSON form: `[severity] kind key=value …`.
fn event_line(e: &serde_json::Value) -> String {
    let severity = e.get("severity").and_then(|v| v.as_str()).unwrap_or("?");
    let kind = e.get("event").and_then(|v| v.as_str()).unwrap_or("?");
    let mut line = format!("[{severity}] {kind}");
    if let Some(obj) = e.as_object() {
        for (k, v) in obj.iter() {
            if matches!(k.as_str(), "schema" | "seq" | "t_ns" | "severity" | "event") {
                continue;
            }
            // Event payload members are scalars: string, integer, bool.
            let rendered = v
                .as_str()
                .map(str::to_string)
                .or_else(|| v.as_u64().map(|n| n.to_string()))
                .or_else(|| v.as_bool().map(|b| b.to_string()))
                .unwrap_or_else(|| "?".into());
            line.push_str(&format!(" {k}={rendered}"));
        }
    }
    line
}

/// One human-readable line for a drained `cfs-alerts/1` record,
/// rendered client-side from its JSON form (mirrors
/// `Alert::render_text` on the daemon side).
fn alert_line(a: &serde_json::Value) -> String {
    let s = |k: &str| a.get(k).and_then(|v| v.as_str());
    let n = |k: &str| a.get(k).and_then(|v| v.as_u64());
    let mut locus = String::new();
    if let Some(f) = s("facility") {
        locus.push_str(&format!(" facility={f}"));
    }
    if let Some(x) = s("ixp") {
        locus.push_str(&format!(" ixp={x}"));
    }
    format!(
        "[{}] #{:<4} epoch={} {}{} observed={}pm baseline={}pm score={}pm support={}",
        s("severity").unwrap_or("?"),
        n("seq").unwrap_or(0),
        n("epoch").unwrap_or(0),
        s("kind").unwrap_or("?"),
        locus,
        n("observed_pm").unwrap_or(0),
        n("baseline_pm").unwrap_or(0),
        n("score_pm").unwrap_or(0),
        n("support").unwrap_or(0),
    )
}

/// `cfs watch`: drain `cfs-alerts/1` records from a live daemon by
/// cursor — nothing is shown twice. One drain by default; `--follow`
/// keeps polling every `--interval-ms` (until `--polls N`, 0 = forever).
/// `--json` prints the records as JSON lines; `--out FILE` writes them
/// as JSON lines regardless (the file is a `cfs-alerts/1` export that
/// `cfs alerts-validate` accepts). Exit 0 ok, 2 usage, 3 transport,
/// 4 daemon error.
fn watch_cmd(args: &[String]) -> i32 {
    use std::io::Write as _;
    let usage = "usage: cfs watch --socket PATH | --tcp ADDR [--json] [--out FILE] \
                 [--follow] [--interval-ms N] [--polls N] [--min-severity warn|error]";
    let Some(endpoint) = client_endpoint(args, usage) else {
        return 2;
    };
    let json = args.iter().any(|a| a == "--json");
    let follow = args.iter().any(|a| a == "--follow");
    let interval_ms: u64 = match flag_value(args, "--interval-ms").map(|v| v.parse::<u64>()) {
        None => 1_000,
        Some(Ok(n)) if n > 0 => n,
        _ => {
            eprintln!("--interval-ms wants a positive number");
            return 2;
        }
    };
    let polls: u64 = match flag_value(args, "--polls").map(|v| v.parse::<u64>()) {
        None => {
            if follow {
                0
            } else {
                1
            }
        }
        Some(Ok(n)) => n,
        Some(Err(_)) => {
            eprintln!("--polls wants a number");
            return 2;
        }
    };
    let min_severity = flag_value(args, "--min-severity");
    if let Some(s) = &min_severity {
        if !matches!(s.as_str(), "info" | "warn" | "error") {
            eprintln!("--min-severity wants info, warn, or error");
            return 2;
        }
    }
    let mut out_file = match flag_value(args, "--out") {
        Some(p) => match std::fs::File::create(&p) {
            Ok(f) => Some(f),
            Err(e) => {
                eprintln!("failed to open --out {p}: {e}");
                return 1;
            }
        },
        None => None,
    };
    let mut client = match Client::connect(&endpoint) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("failed to connect: {e}");
            return 3;
        }
    };
    let floor = min_severity
        .as_ref()
        .map(|s| format!(",\"min_severity\":\"{s}\""))
        .unwrap_or_default();
    let mut cursor: u64 = 0;
    let mut drained: u64 = 0;
    let mut poll: u64 = 0;
    loop {
        if poll > 0 {
            pace(Duration::from_millis(interval_ms));
        }
        poll += 1;
        let request = format!(
            "{{\"schema\":\"{}\",\"op\":\"alerts\",\"since\":{cursor}{floor}}}",
            cfs::svc::SCHEMA
        );
        let response = match client.roundtrip(&request) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("transport error: {e}");
                return 3;
            }
        };
        let v = match serde_json::from_str::<serde_json::Value>(&response) {
            Ok(v) if v.get("ok").and_then(|o| o.as_bool()) == Some(true) => v,
            _ => {
                eprintln!("{response}");
                return 4;
            }
        };
        if let Some(next) = v.get("next").and_then(|n| n.as_u64()) {
            cursor = next;
        }
        for a in v
            .get("alerts")
            .and_then(|x| x.as_array())
            .into_iter()
            .flatten()
        {
            drained += 1;
            let record = serde_json::to_string(a).unwrap_or_default();
            if let Some(f) = out_file.as_mut() {
                if let Err(e) = writeln!(f, "{record}") {
                    eprintln!("failed to write --out: {e}");
                    return 1;
                }
            }
            if json {
                println!("{record}");
            } else {
                println!("{}", alert_line(a));
            }
        }
        if polls > 0 && poll >= polls {
            if !json {
                eprintln!("drained {drained} alerts (cursor {cursor})");
            }
            return 0;
        }
    }
}

/// `cfs alerts-validate`: check a `cfs-alerts/1` export (one JSON
/// record per line, as written by `cfs watch --out`). Exit 0 valid,
/// 1 invalid, 2 usage.
fn alerts_validate_cmd(path: Option<&str>) -> i32 {
    let Some(path) = path else {
        eprintln!("usage: cfs alerts-validate FILE");
        return 2;
    };
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("failed to read {path}: {e}");
            return 1;
        }
    };
    match cfs::detect::validate_alerts(&text) {
        Ok(summary) => {
            println!(
                "{path}: valid cfs-alerts/1 ({} alerts, {} error-severity, {} localized)",
                summary.alerts, summary.errors, summary.localized
            );
            0
        }
        Err(e) => {
            eprintln!("{path}: invalid cfs-alerts/1: {e}");
            1
        }
    }
}

/// `cfs top`: a polling terminal dashboard over a live daemon — request
/// rate since the previous poll, per-op latency, delta churn, and the
/// most recent events (drained with a cursor so nothing is shown twice).
/// Exit 0 after `--polls N` polls (0 = run until interrupted), 2 usage,
/// 3 transport, 4 daemon error.
fn top_cmd(args: &[String]) -> i32 {
    let usage = "usage: cfs top --socket PATH | --tcp ADDR [--interval-ms N] [--polls N]";
    let Some(endpoint) = client_endpoint(args, usage) else {
        return 2;
    };
    let interval_ms: u64 = match flag_value(args, "--interval-ms").map(|v| v.parse::<u64>()) {
        None => 1_000,
        Some(Ok(n)) if n > 0 => n,
        _ => {
            eprintln!("--interval-ms wants a positive number");
            return 2;
        }
    };
    let polls: u64 = match flag_value(args, "--polls").map(|v| v.parse::<u64>()) {
        None => 0,
        Some(Ok(n)) => n,
        Some(Err(_)) => {
            eprintln!("--polls wants a number");
            return 2;
        }
    };
    let mut client = match Client::connect(&endpoint) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("failed to connect: {e}");
            return 3;
        }
    };
    let metrics_req = format!("{{\"schema\":\"{}\",\"op\":\"metrics\"}}", cfs::svc::SCHEMA);
    let metrics_prefix = format!(
        "{{\"schema\":\"{}\",\"ok\":true,\"metrics\":",
        cfs::svc::SCHEMA
    );
    let mut cursor: u64 = 0;
    let mut alert_cursor: u64 = 0;
    let mut last_requests: Option<u64> = None;
    let mut recent: Vec<String> = Vec::new();
    let mut recent_alerts: Vec<String> = Vec::new();
    let mut poll: u64 = 0;
    loop {
        if poll > 0 {
            pace(Duration::from_millis(interval_ms));
        }
        poll += 1;
        let response = match client.roundtrip(&metrics_req) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("transport error: {e}");
                return 3;
            }
        };
        let doc = match response
            .strip_prefix(metrics_prefix.as_str())
            .and_then(|r| r.strip_suffix('}'))
            .map(MetricsDoc::parse)
        {
            Some(Ok(d)) => d,
            _ => {
                eprintln!("{response}");
                return 4;
            }
        };
        let events_req = format!(
            "{{\"schema\":\"{}\",\"op\":\"events\",\"since\":{cursor}}}",
            cfs::svc::SCHEMA
        );
        let ev_response = match client.roundtrip(&events_req) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("transport error: {e}");
                return 3;
            }
        };
        match serde_json::from_str::<serde_json::Value>(&ev_response) {
            Ok(v) if v.get("ok").and_then(|o| o.as_bool()) == Some(true) => {
                if let Some(next) = v.get("next").and_then(|n| n.as_u64()) {
                    cursor = next;
                }
                for e in v
                    .get("events")
                    .and_then(|e| e.as_array())
                    .into_iter()
                    .flatten()
                {
                    recent.push(event_line(e));
                }
                let overflow = recent.len().saturating_sub(8);
                recent.drain(..overflow);
            }
            _ => {
                eprintln!("{ev_response}");
                return 4;
            }
        }
        // Alerts drain: a detection-off daemon answers an empty list
        // with an unmoved cursor, so this is always safe to poll.
        let alerts_req = format!(
            "{{\"schema\":\"{}\",\"op\":\"alerts\",\"since\":{alert_cursor}}}",
            cfs::svc::SCHEMA
        );
        let al_response = match client.roundtrip(&alerts_req) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("transport error: {e}");
                return 3;
            }
        };
        match serde_json::from_str::<serde_json::Value>(&al_response) {
            Ok(v) if v.get("ok").and_then(|o| o.as_bool()) == Some(true) => {
                if let Some(next) = v.get("next").and_then(|n| n.as_u64()) {
                    alert_cursor = next;
                }
                for a in v
                    .get("alerts")
                    .and_then(|x| x.as_array())
                    .into_iter()
                    .flatten()
                {
                    recent_alerts.push(alert_line(a));
                }
                let overflow = recent_alerts.len().saturating_sub(8);
                recent_alerts.drain(..overflow);
            }
            _ => {
                eprintln!("{al_response}");
                return 4;
            }
        }

        // Repaint: clear between polls, never before the first frame, so
        // a failed connect leaves the terminal untouched.
        if poll > 1 {
            print!("\x1b[2J\x1b[H");
        }
        let requests = doc
            .totals
            .counters
            .get("api.requests")
            .copied()
            .unwrap_or(0);
        let delta = requests.saturating_sub(last_requests.unwrap_or(requests));
        last_requests = Some(requests);
        let poll_rate = delta as f64 / (interval_ms as f64 / 1e3);
        println!("cfs top · poll {poll} · {poll_rate:.1} req/s since last poll");
        print!("{}", render_metrics_summary(&doc));
        if !recent.is_empty() {
            println!("recent events:");
            for line in &recent {
                println!("  {line}");
            }
        }
        if !recent_alerts.is_empty() {
            println!("recent alerts:");
            for line in &recent_alerts {
                println!("  {line}");
            }
        }
        if polls > 0 && poll >= polls {
            return 0;
        }
    }
}
