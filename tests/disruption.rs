//! Streaming disruption detection contracts: the `cfs-alerts/1` stream
//! is byte-identical across worker-thread counts, and attaching the
//! detector never perturbs the inference (the canonical `cfs-trace/1`
//! digest is the same with detection on or off).

use std::sync::Arc;

use cfs::detect::{validate_alerts, Detector, DetectorConfig, EpochObservation, LocusNames};
use cfs::experiments::{Lab, Scale};
use cfs::obs::{Clock, Virtual};
use cfs::prelude::*;
use cfs::topology::{EventSchedule, ScheduleConfig, ScheduleIntensity, EPOCH_MS};
use cfs::traceroute::ScheduledEngine;

/// Streams one scheduled horizon through a resident session at the given
/// thread count. Returns the rendered alert document (one `cfs-alerts/1`
/// line per alert; empty when `detect` is off) and the session's
/// canonical `cfs-trace/1` digest text.
fn stream(lab: &Lab, threads: usize, detect: bool) -> (String, String) {
    let config = ScheduleConfig::at_intensity(lab.topo.config.seed, ScheduleIntensity::Default);
    let schedule = EventSchedule::generate(&lab.topo, config);
    let engine = ScheduledEngine::new(Engine::new(&lab.topo), schedule);
    let horizon = engine.schedule().config.horizon_epochs;

    let mut detector = detect.then(|| {
        let names = LocusNames {
            facilities: lab
                .topo
                .facilities
                .iter()
                .map(|(id, f)| (id.raw(), f.name.clone()))
                .collect(),
            ixps: lab
                .topo
                .ixps
                .iter()
                .map(|(id, x)| (id.raw(), x.name.clone()))
                .collect(),
        };
        Detector::new(
            DetectorConfig::default(),
            names,
            Arc::new(Virtual::new()) as Arc<dyn Clock>,
        )
    });

    let cfg = CfsConfig {
        followup_interfaces: 0,
        threads,
        ..CfsConfig::default()
    };
    let mut session = Cfs::builder(&engine, &lab.kb)
        .vps(&lab.vps)
        .ipasn(&lab.ipasn)
        .config(cfg)
        .build_session()
        .expect("CFS dependencies are always set");
    session.ingest(lab.bootstrap_traces(&engine, None));
    lab.feed_bgp_sessions(&mut session, None);
    session.converge();

    let mut doc = String::new();
    for k in 1..horizon {
        let targets: Vec<std::net::Ipv4Addr> = lab
            .targets()
            .iter()
            .filter_map(|a| lab.topo.target_ip(*a).ok())
            .collect();
        let vp_ids: Vec<_> = lab.vps.ids().collect();
        let traces = run_campaign(
            &engine,
            &lab.vps,
            &vp_ids,
            &targets,
            k * EPOCH_MS,
            &CampaignLimits::default(),
        );
        let obs = EpochObservation::from_traces(k, &traces);
        session
            .apply_delta(Delta::TracerouteBatch(traces))
            .expect("follow-up-less delta");
        if let Some(det) = detector.as_mut() {
            for alert in det.observe(&obs, session.report().expect("delta leaves a report")) {
                doc.push_str(&alert.render_json());
                doc.push('\n');
            }
        }
    }
    let digest = canonical_trace(session.report().expect("converged"));
    (doc, digest)
}

#[test]
fn alert_stream_is_byte_identical_across_thread_counts() {
    let lab = Lab::provision(Scale::Tiny, Some(11)).expect("lab");
    let (doc1, _) = stream(&lab, 1, true);
    assert!(!doc1.is_empty(), "the default schedule must raise alerts");
    let summary = validate_alerts(&doc1).expect("well-formed cfs-alerts/1");
    assert!(summary.alerts > 0);
    for threads in [2, 8] {
        let (doc, _) = stream(&lab, threads, true);
        assert_eq!(doc1, doc, "alert bytes diverged at {threads} threads");
    }
}

#[test]
fn detection_never_touches_the_canonical_digest() {
    let lab = Lab::provision(Scale::Tiny, Some(11)).expect("lab");
    let (_, with_detect) = stream(&lab, 1, true);
    let (doc, without_detect) = stream(&lab, 1, false);
    assert!(doc.is_empty(), "detection off must render no alerts");
    assert_eq!(
        with_detect, without_detect,
        "enabling detection changed the cfs-trace/1 digest"
    );
}
