//! Tier-1 gate at the workspace root: `cargo test -q` (which only runs
//! the root package's tests) must fail on any `cfs-lint` finding, not
//! just `cargo test --workspace`. The same check also lives in
//! `crates/lint/tests/workspace_clean.rs` next to the linter's own
//! fixtures; this copy is the one the ROADMAP tier-1 command reaches.

#[test]
fn workspace_passes_cfs_lint() {
    let root = cfs_lint::find_workspace_root(std::path::Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("the repo root declares [workspace]");
    let findings = cfs_lint::check_workspace(&root).expect("workspace sources are readable");
    assert!(
        findings.is_empty(),
        "cfs-lint found invariant violations — fix them or add a justified \
         `// cfs-lint: allow(<rule>)` (DESIGN.md §6):\n{}",
        cfs_lint::render_human(&findings, 0)
    );
}
