//! End-to-end coverage of the service mode: `cfs serve` daemons driven
//! through `cfs query`, the way CI's cfsd smoke job drives them.
//!
//! Pins the protocol contract (exit codes, error codes, schema
//! discipline) and the incremental re-convergence contract: a daemon
//! that converged and then absorbed campaign 1 as a delta exports the
//! same canonical trace as a daemon that booted with `--campaigns 1`.

use std::path::PathBuf;
use std::process::{Child, Command, Output, Stdio};

fn cfs(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_cfs"))
        .args(args)
        .output()
        .expect("cfs binary runs")
}

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cfs-svc-cli-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir.join(name)
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

/// Spawns a daemon on a Unix socket and waits until it answers status.
fn spawn_daemon(socket: &str, extra: &[&str]) -> Child {
    let mut args = vec![
        "serve", "--socket", socket, "--scale", "tiny", "--seed", "7",
    ];
    args.extend_from_slice(extra);
    let mut child = Command::new(env!("CARGO_BIN_EXE_cfs"))
        .args(&args)
        .stdout(Stdio::null())
        .stderr(Stdio::inherit())
        .spawn()
        .expect("daemon spawns");
    for _ in 0..600 {
        let probe = cfs(&["query", "--socket", socket, "status"]);
        if probe.status.code() == Some(0) {
            assert!(stdout(&probe).contains("\"state\":\"serving\""));
            return child;
        }
        // cfs-lint: allow(raw-sleep) — polling a real spawned daemon; no virtual clock spans processes
        std::thread::sleep(std::time::Duration::from_millis(100));
    }
    let _ = child.kill();
    let _ = child.wait();
    panic!("daemon on {socket} never became ready");
}

fn shutdown_daemon(socket: &str, mut child: Child) {
    let bye = cfs(&["query", "--socket", socket, "shutdown"]);
    assert_eq!(bye.status.code(), Some(0), "{}", stderr(&bye));
    assert!(stdout(&bye).contains("\"state\":\"stopping\""));
    let status = child.wait().expect("daemon exits");
    assert_eq!(status.code(), Some(0), "daemon exited uncleanly");
}

#[test]
fn daemon_answers_queries_deltas_and_typed_errors() {
    let socket = tmp("cfsd-main.sock");
    let socket = socket.to_str().unwrap();
    let child = spawn_daemon(socket, &[]);

    // Status after boot: epoch 1 (converged once, no deltas yet).
    let status = cfs(&["query", "--socket", socket, "status"]);
    assert_eq!(status.status.code(), Some(0));
    assert!(
        stdout(&status).contains("\"epoch\":1"),
        "{}",
        stdout(&status)
    );

    // The typed-error vocabulary, pinned code by code. Exit 4 means the
    // daemon answered with ok:false (transport was fine).
    for (raw, code) in [
        ("{oops", "\"code\":\"bad_request\""),
        ("{\"op\":\"status\"}", "\"code\":\"unknown_schema\""),
        (
            "{\"schema\":\"cfs-api/9\",\"op\":\"status\"}",
            "\"code\":\"unknown_schema\"",
        ),
        (
            "{\"schema\":\"cfs-api/1\",\"op\":\"frobnicate\"}",
            "\"code\":\"unknown_op\"",
        ),
        (
            "{\"schema\":\"cfs-api/1\",\"op\":\"delta\",\"kind\":\"mystery\"}",
            "\"code\":\"bad_delta\"",
        ),
        (
            "{\"schema\":\"cfs-api/1\",\"op\":\"delta\",\"kind\":\"campaign\",\"campaign\":0}",
            "\"code\":\"bad_delta\"",
        ),
        (
            "{\"schema\":\"cfs-api/1\",\"op\":\"delta\",\"kind\":\"vp-status\",\"vp\":999999,\"up\":false}",
            "\"code\":\"bad_delta\"",
        ),
    ] {
        let out = cfs(&["query", "--socket", socket, "--raw", raw]);
        assert_eq!(out.status.code(), Some(4), "raw {raw}: {}", stderr(&out));
        let text = stdout(&out);
        assert!(text.contains("\"ok\":false"), "{raw}: {text}");
        assert!(text.contains(code), "{raw}: want {code}, got {text}");
    }

    // Interface lookups: unparsable → bad_iface, untracked → unknown_iface.
    let bad = cfs(&["query", "--socket", socket, "not-an-ip"]);
    assert_eq!(bad.status.code(), Some(4));
    assert!(stdout(&bad).contains("\"code\":\"bad_iface\""));
    let unknown = cfs(&["query", "--socket", socket, "203.0.113.254"]);
    assert_eq!(unknown.status.code(), Some(4));
    assert!(stdout(&unknown).contains("\"code\":\"unknown_iface\""));

    // A tracked interface: pick one from the trace export's trajectories.
    let trace_path = tmp("epoch1.trace.json");
    let fetch = cfs(&[
        "query",
        "--socket",
        socket,
        "trace",
        "--out",
        trace_path.to_str().unwrap(),
    ]);
    assert_eq!(fetch.status.code(), Some(0), "{}", stderr(&fetch));
    let trace_doc = std::fs::read_to_string(&trace_path).expect("trace written");
    assert!(trace_doc.starts_with("{\"schema\":\"cfs-trace/1\""));
    // The peeled payload is a complete, digest-valid trace document.
    let validate = cfs(&["trace-validate", trace_path.to_str().unwrap()]);
    assert_eq!(validate.status.code(), Some(0), "{}", stderr(&validate));
    let doc: serde_json::Value = serde_json::from_str(&trace_doc).expect("trace parses");
    let tracked_ip = doc["convergence"]["trajectories"]
        .as_object()
        .and_then(|m| m.iter().next().map(|(k, _)| k.clone()))
        .expect("trace lists tracked interfaces");
    let answer = cfs(&["query", "--socket", socket, &tracked_ip]);
    assert_eq!(answer.status.code(), Some(0), "{}", stderr(&answer));
    let text = stdout(&answer);
    for member in [
        "\"iface\":",
        "\"method\":",
        "\"confidence\":",
        "\"epoch\":1",
    ] {
        assert!(text.contains(member), "missing {member} in {text}");
    }

    // A campaign delta bumps the epoch and reports its re-convergence
    // accounting; queries then answer from the new epoch.
    let delta = cfs(&[
        "query",
        "--socket",
        socket,
        "--raw",
        "{\"schema\":\"cfs-api/1\",\"op\":\"delta\",\"kind\":\"campaign\",\"campaign\":1}",
    ]);
    assert_eq!(delta.status.code(), Some(0), "{}", stderr(&delta));
    let delta_text = stdout(&delta);
    for member in [
        "\"epoch\":2",
        "\"dirty\":",
        "\"reconverged\":",
        "\"total\":",
    ] {
        assert!(
            delta_text.contains(member),
            "missing {member} in {delta_text}"
        );
    }
    let status2 = cfs(&["query", "--socket", socket, "status"]);
    assert!(
        stdout(&status2).contains("\"epoch\":2"),
        "{}",
        stdout(&status2)
    );

    shutdown_daemon(socket, child);
}

#[test]
fn delta_converged_daemon_matches_a_fresh_batch_daemon() {
    // Daemon A: converge on the bootstrap inputs, absorb campaign 1 as
    // an incremental delta. Daemon B: boot with campaign 1 pre-ingested
    // and converge from scratch. Their canonical traces must be
    // byte-identical — the service-mode determinism contract, end to end.
    let sock_a = tmp("cfsd-a.sock");
    let sock_a = sock_a.to_str().unwrap();
    let trace_a = tmp("a.trace.json");
    let child_a = spawn_daemon(sock_a, &[]);
    let delta = cfs(&[
        "query",
        "--socket",
        sock_a,
        "--raw",
        "{\"schema\":\"cfs-api/1\",\"op\":\"delta\",\"kind\":\"campaign\",\"campaign\":1}",
    ]);
    assert_eq!(delta.status.code(), Some(0), "{}", stderr(&delta));
    let fetch_a = cfs(&[
        "query",
        "--socket",
        sock_a,
        "trace",
        "--out",
        trace_a.to_str().unwrap(),
    ]);
    assert_eq!(fetch_a.status.code(), Some(0), "{}", stderr(&fetch_a));
    shutdown_daemon(sock_a, child_a);

    let sock_b = tmp("cfsd-b.sock");
    let sock_b = sock_b.to_str().unwrap();
    let trace_b = tmp("b.trace.json");
    let child_b = spawn_daemon(sock_b, &["--campaigns", "1"]);
    let fetch_b = cfs(&[
        "query",
        "--socket",
        sock_b,
        "trace",
        "--out",
        trace_b.to_str().unwrap(),
    ]);
    assert_eq!(fetch_b.status.code(), Some(0), "{}", stderr(&fetch_b));
    shutdown_daemon(sock_b, child_b);

    let diff = cfs(&[
        "trace-diff",
        trace_a.to_str().unwrap(),
        trace_b.to_str().unwrap(),
    ]);
    assert_eq!(
        diff.status.code(),
        Some(0),
        "incremental daemon drifted from batch daemon:\n{}",
        stdout(&diff)
    );
    assert_eq!(
        std::fs::read_to_string(&trace_a).unwrap(),
        std::fs::read_to_string(&trace_b).unwrap(),
        "trace bytes differ"
    );
}

#[test]
fn faulted_daemon_serves_metrics_and_events_without_touching_the_trace() {
    // A chaos-degraded daemon with live telemetry: the metrics op must
    // report non-zero request-latency counts, the event log must drain
    // with a cursor, and none of it may perturb the canonical trace.
    let socket = tmp("cfsd-tele.sock");
    let socket = socket.to_str().unwrap();
    let log_path = tmp("cfsd-events.log");
    let child = spawn_daemon(
        socket,
        &[
            "--faults",
            "default",
            "--log",
            log_path.to_str().unwrap(),
            "--window-ms",
            "500",
        ],
    );

    // Drive traffic so the latency histograms fill, including a delta.
    for _ in 0..3 {
        let st = cfs(&["query", "--socket", socket, "status"]);
        assert_eq!(st.status.code(), Some(0), "{}", stderr(&st));
    }
    let delta = cfs(&[
        "query",
        "--socket",
        socket,
        "--raw",
        "{\"schema\":\"cfs-api/1\",\"op\":\"delta\",\"kind\":\"campaign\",\"campaign\":1}",
    ]);
    assert_eq!(delta.status.code(), Some(0), "{}", stderr(&delta));

    let trace_before = tmp("tele-before.trace.json");
    let fetch = cfs(&[
        "query",
        "--socket",
        socket,
        "trace",
        "--out",
        trace_before.to_str().unwrap(),
    ]);
    assert_eq!(fetch.status.code(), Some(0), "{}", stderr(&fetch));

    // Raw snapshot: schema, request counts, per-op latency all live.
    let json = cfs(&["metrics", "--socket", socket, "--json"]);
    assert_eq!(json.status.code(), Some(0), "{}", stderr(&json));
    let raw = stdout(&json);
    let doc: serde_json::Value = serde_json::from_str(raw.trim()).expect("metrics parses");
    assert_eq!(doc["schema"].as_str(), Some("cfs-metrics/1"));
    let requests = doc["totals"]["counters"]["api.requests"]
        .as_u64()
        .expect("api.requests counted");
    assert!(requests >= 4, "only {requests} requests counted");
    let status_spans = doc["totals"]["durations"]["api.status"]["count"]
        .as_u64()
        .expect("api.status timed");
    assert!(status_spans >= 3, "only {status_spans} status spans");
    assert!(
        doc["totals"]["counters"]["serve.dirty_ifaces"].as_u64() > Some(0),
        "campaign delta dirtied nothing"
    );

    // The saved snapshot is a valid cfs-metrics/1 document end to end.
    let saved = tmp("tele.metrics.json");
    let save = cfs(&[
        "metrics",
        "--socket",
        socket,
        "--out",
        saved.to_str().unwrap(),
    ]);
    assert_eq!(save.status.code(), Some(0), "{}", stderr(&save));
    let validate = cfs(&["metrics-validate", saved.to_str().unwrap()]);
    assert_eq!(validate.status.code(), Some(0), "{}", stderr(&validate));

    // The human summary names the things operators scan for.
    let human = cfs(&["metrics", "--socket", socket]);
    assert_eq!(human.status.code(), Some(0), "{}", stderr(&human));
    let text = stdout(&human);
    for needle in ["uptime", "requests", "per-op latency", "delta churn"] {
        assert!(text.contains(needle), "missing {needle} in {text}");
    }

    // Event drain: boot + delta events first, then the cursor advances
    // past them and a re-drain from `next` is empty.
    let ev = cfs(&[
        "query",
        "--socket",
        socket,
        "--raw",
        "{\"schema\":\"cfs-api/1\",\"op\":\"events\"}",
    ]);
    assert_eq!(ev.status.code(), Some(0), "{}", stderr(&ev));
    let ev_doc: serde_json::Value =
        serde_json::from_str(stdout(&ev).trim()).expect("events reply parses");
    let drained = ev_doc["events"].as_array().expect("events array");
    let kinds: Vec<&str> = drained.iter().filter_map(|e| e["event"].as_str()).collect();
    assert!(
        kinds.contains(&"session-converged"),
        "no session-converged in {kinds:?}"
    );
    assert!(
        kinds.contains(&"delta-applied"),
        "no delta-applied in {kinds:?}"
    );
    let next = ev_doc["next"].as_u64().expect("next cursor");
    assert_eq!(next, drained.last().unwrap()["seq"].as_u64().unwrap() + 1);
    let again = cfs(&[
        "query",
        "--socket",
        socket,
        "--raw",
        &format!("{{\"schema\":\"cfs-api/1\",\"op\":\"events\",\"since\":{next}}}"),
    ]);
    assert_eq!(again.status.code(), Some(0));
    assert!(
        stdout(&again).contains("\"events\":[]"),
        "re-drain not empty: {}",
        stdout(&again)
    );

    // One dashboard poll renders and exits 0.
    let top = cfs(&[
        "top",
        "--socket",
        socket,
        "--interval-ms",
        "10",
        "--polls",
        "1",
    ]);
    assert_eq!(top.status.code(), Some(0), "{}", stderr(&top));
    assert!(stdout(&top).contains("cfs top"), "{}", stdout(&top));

    // All that telemetry traffic left the canonical trace untouched.
    let trace_after = tmp("tele-after.trace.json");
    let fetch2 = cfs(&[
        "query",
        "--socket",
        socket,
        "trace",
        "--out",
        trace_after.to_str().unwrap(),
    ]);
    assert_eq!(fetch2.status.code(), Some(0), "{}", stderr(&fetch2));
    assert_eq!(
        std::fs::read_to_string(&trace_before).unwrap(),
        std::fs::read_to_string(&trace_after).unwrap(),
        "metrics/events ops changed the canonical trace"
    );

    shutdown_daemon(socket, child);

    // The --log sink streamed every event as a cfs-log/1 line.
    let log = std::fs::read_to_string(&log_path).expect("event log written");
    assert!(
        log.lines().all(|l| l.contains("\"schema\":\"cfs-log/1\"")),
        "{log}"
    );
    assert!(log.contains("session-converged"), "{log}");
    assert!(log.contains("delta-applied"), "{log}");
}

#[test]
fn query_cli_pins_usage_and_transport_exit_codes() {
    // No endpoint → usage (2).
    let usage = cfs(&["query", "status"]);
    assert_eq!(usage.status.code(), Some(2), "{}", stderr(&usage));
    let usage_serve = cfs(&["serve", "--scale", "tiny"]);
    assert_eq!(
        usage_serve.status.code(),
        Some(2),
        "{}",
        stderr(&usage_serve)
    );
    let bad_campaigns = cfs(&["serve", "--socket", "/tmp/x.sock", "--campaigns", "many"]);
    assert_eq!(bad_campaigns.status.code(), Some(2));

    // Nobody listening → transport error (3).
    let gone = tmp("no-daemon-here.sock");
    let dead = cfs(&["query", "--socket", gone.to_str().unwrap(), "status"]);
    assert_eq!(dead.status.code(), Some(3), "{}", stdout(&dead));
}
