//! Failure injection: the inference pipeline must degrade gracefully —
//! not collapse — under measurement pathologies (heavy reply loss,
//! widespread congestion, classic-traceroute artifacts).

use cfs::prelude::*;

fn run_with_engine(topo: &Topology, engine: &Engine<'_>) -> cfs::core::CfsReport {
    let vps = deploy_vantage_points(topo, &VpConfig::tiny()).unwrap();
    let sources = PublicSources::derive(topo, &KbConfig::default());
    let kb = KnowledgeBase::assemble(&sources, &topo.world);
    let ipasn = topo.build_ipasn_db();

    let targets: Vec<std::net::Ipv4Addr> = topo
        .ases
        .values()
        .filter(|n| matches!(n.class, AsClass::Cdn | AsClass::Tier1))
        .map(|n| topo.target_ip(n.asn).unwrap())
        .collect();
    let vp_ids: Vec<_> = vps.ids().collect();
    let traces = run_campaign(
        engine,
        &vps,
        &vp_ids,
        &targets,
        0,
        &CampaignLimits::default(),
    );

    let mut session = Cfs::builder(engine, &kb)
        .vps(&vps)
        .ipasn(&ipasn)
        .build_session()
        .unwrap();
    session.ingest(traces);
    session.into_report()
}

fn accuracy(topo: &Topology, report: &cfs::core::CfsReport) -> (usize, usize) {
    let mut correct = 0;
    let mut checked = 0;
    for iface in report.interfaces.values() {
        let Some(inferred) = iface.facility else {
            continue;
        };
        let Some(ifid) = topo.iface_by_ip(iface.ip) else {
            continue;
        };
        let Some(truth) = topo.router_facility(topo.ifaces[ifid].router) else {
            continue;
        };
        checked += 1;
        correct += usize::from(inferred == truth);
    }
    (correct, checked)
}

#[test]
fn heavy_reply_loss_degrades_coverage_not_correctness() {
    let topo = Topology::generate(TopologyConfig::default()).unwrap();

    let clean_engine = Engine::new(&topo);
    let clean = run_with_engine(&topo, &clean_engine);

    let lossy_engine = Engine::new(&topo).with_reply_loss(0.20);
    let lossy = run_with_engine(&topo, &lossy_engine);

    // Loss hides hops at the measurement level. (End-state interface
    // counts are *not* monotone in loss: more unresolved interfaces mean
    // more follow-up probing, which can surface new ones.)
    let vps = deploy_vantage_points(&topo, &VpConfig::tiny()).unwrap();
    let vp = &vps.vps[vps.ids().next().unwrap()];
    let target = topo.target_ip(Asn(15169)).unwrap();
    let responsive = |engine: &Engine<'_>| -> usize {
        (0..200u64)
            .map(|k| {
                let t = engine.trace(vp, target, k * 13);
                t.hops.iter().filter(|h| h.ip.is_some()).count()
            })
            .sum()
    };
    let clean_hops = responsive(&clean_engine);
    let lossy_hops = responsive(&lossy_engine);
    assert!(
        lossy_hops < clean_hops,
        "20% loss did not hide hops ({lossy_hops} vs {clean_hops})"
    );

    // But the verdicts that *are* made stay sound.
    let (clean_ok, clean_n) = accuracy(&topo, &clean);
    let (lossy_ok, lossy_n) = accuracy(&topo, &lossy);
    assert!(clean_n > 100 && lossy_n > 50);
    let clean_acc = clean_ok as f64 / clean_n as f64;
    let lossy_acc = lossy_ok as f64 / lossy_n as f64;
    assert!(
        lossy_acc > clean_acc - 0.10,
        "loss broke correctness: {lossy_acc:.2} vs {clean_acc:.2}"
    );
}

#[test]
fn pervasive_congestion_does_not_break_remote_inference() {
    // The remote test takes minima over samples spread across congestion
    // slots; even a stormy network should rarely flip local members to
    // "remote".
    let topo = Topology::generate(TopologyConfig::tiny()).unwrap();
    let vps = deploy_vantage_points(&topo, &VpConfig::tiny()).unwrap();
    let stormy = Engine::new(&topo).with_congestion_percent(30);
    let tester = cfs::core::RemoteTester::new(&stormy, &vps);

    let mut local_checked = 0usize;
    let mut local_correct = 0usize;
    for (id, ixp) in topo.ixps.iter() {
        for m in &ixp.members {
            if m.remote_via.is_some() {
                continue;
            }
            if let Some(verdict) = tester.is_remote(id, m.fabric_ip) {
                local_checked += 1;
                local_correct += usize::from(!verdict);
            }
        }
    }
    assert!(local_checked > 20);
    assert!(
        local_correct * 10 >= local_checked * 8,
        "congestion flipped locals to remote: {local_correct}/{local_checked}"
    );
}

#[test]
fn classic_traceroute_artifacts_hurt_but_do_not_poison() {
    let topo = Topology::generate(TopologyConfig::default()).unwrap();
    let classic_engine = Engine::new(&topo).without_paris();
    let classic = run_with_engine(&topo, &classic_engine);
    let (ok, n) = accuracy(&topo, &classic);
    assert!(n > 50);
    // Artifacts insert false adjacencies; conflicts are dropped rather
    // than followed, so accuracy stays usable (the paper still insists on
    // Paris for good reason — see the ablation experiment).
    assert!(
        ok * 10 >= n * 6,
        "classic traceroute poisoned the inference: {ok}/{n}"
    );
}
