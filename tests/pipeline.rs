//! Cross-crate integration: the full measurement → inference →
//! validation pipeline, exercised through the umbrella crate's public
//! API exactly as a downstream user would.

use cfs::prelude::*;

fn pipeline(seed: u64) -> (Topology, PublicSources, cfs::core::CfsReport) {
    let topo = Topology::generate(TopologyConfig::default().with_seed(seed)).unwrap();
    let vps = deploy_vantage_points(&topo, &VpConfig::default()).unwrap();
    let engine = Engine::new(&topo);
    let sources = PublicSources::derive(&topo, &KbConfig::default());
    let kb = KnowledgeBase::assemble(&sources, &topo.world);
    let ipasn = topo.build_ipasn_db();

    let targets: Vec<std::net::Ipv4Addr> = cfs::topology::names::PAPER_TARGETS
        .iter()
        .filter_map(|(asn, _, _)| topo.target_ip(Asn(*asn)).ok())
        .collect();
    let vp_ids: Vec<_> = vps.ids().collect();
    let traces = run_campaign(
        &engine,
        &vps,
        &vp_ids,
        &targets,
        0,
        &CampaignLimits::default(),
    );

    let mut session = Cfs::builder(&engine, &kb)
        .vps(&vps)
        .ipasn(&ipasn)
        .build_session()
        .unwrap();
    session.ingest(traces);
    let report = session.into_report();
    (topo, sources, report)
}

#[test]
fn full_pipeline_reaches_paper_grade_accuracy() {
    let (topo, sources, report) = pipeline(0xCF5_2015);

    assert!(report.total() > 300, "tracked {}", report.total());
    assert!(
        report.resolved_fraction() > 0.4,
        "resolved {}",
        report.resolved_fraction()
    );

    let oracles = ValidationOracles::standard(&topo, &sources);
    let scored = score_report(&report, &oracles, &topo);
    let overall = scored.overall();
    assert!(
        overall.checked > 50,
        "validation coverage {}",
        overall.checked
    );
    let acc = overall.accuracy().unwrap();
    assert!(acc > 0.8, "validated accuracy {acc:.3}");
    let metro = overall.metro_accuracy().unwrap();
    assert!(
        metro > acc - 1e-9,
        "city-level should dominate: {metro:.3} vs {acc:.3}"
    );
}

#[test]
fn inference_only_claims_facilities_the_public_data_allows() {
    let (topo, _sources, report) = pipeline(0xCF5_2015);
    // CFS must never name a facility its own constraints exclude: every
    // resolved facility is a member of the interface's final candidate
    // set, and candidate sets are non-empty on resolution.
    for iface in report.interfaces.values() {
        if let Some(f) = iface.facility {
            assert!(iface.candidates.contains(&f));
            assert_eq!(iface.candidates.len(), 1);
        }
        // Sanity: the facility id exists in the world at all.
        if let Some(f) = iface.facility {
            assert!(topo.facilities.get(f).is_some());
        }
    }
}

#[test]
fn pipeline_is_reproducible_end_to_end() {
    let (_, _, a) = pipeline(7);
    let (_, _, b) = pipeline(7);
    assert_eq!(a.total(), b.total());
    assert_eq!(a.resolved(), b.resolved());
    assert_eq!(a.traces_issued, b.traces_issued);
    for (x, y) in a.interfaces.values().zip(b.interfaces.values()) {
        assert_eq!(x.ip, y.ip);
        assert_eq!(x.facility, y.facility);
        assert_eq!(x.outcome, y.outcome);
    }
}

#[test]
fn different_seeds_produce_different_worlds_same_invariants() {
    for seed in [1u64, 2, 3] {
        let (topo, _sources, report) = pipeline(seed);
        // Per-interface invariants hold across worlds.
        for iface in report.interfaces.values() {
            if let Some(ifid) = topo.iface_by_ip(iface.ip) {
                // Owner attribution, where made, matches ground truth for
                // the overwhelming majority (alias correction can only
                // fix what it observed).
                let _truth = topo.ifaces[ifid].asn;
                assert!(iface.owner.is_some() || iface.outcome == SearchOutcome::MissingData);
            }
        }
        let curve = report.resolution_curve();
        for w in curve.windows(2) {
            assert!(w[1] >= w[0] - 1e-12, "curve must not regress (seed {seed})");
        }
    }
}

#[test]
fn owner_attribution_is_mostly_correct_after_alias_majority_vote() {
    let (topo, _sources, report) = pipeline(0xCF5_2015);
    let mut checked = 0usize;
    let mut right = 0usize;
    for iface in report.interfaces.values() {
        let (Some(owner), Some(ifid)) = (iface.owner, topo.iface_by_ip(iface.ip)) else {
            continue;
        };
        checked += 1;
        right += usize::from(topo.ifaces[ifid].asn == owner);
    }
    assert!(checked > 200);
    // Residual misattribution concentrates on point-to-point addresses
    // whose routers defeat alias probing (random/constant/no IP-IDs —
    // §4.1's false negatives), so the vote cannot reach them. Raw LPM
    // alone sits well below this.
    assert!(
        right * 100 >= checked * 75,
        "owner attribution {right}/{checked} — majority vote not working"
    );

    // And the vote must genuinely improve on raw longest-prefix matching.
    let db = topo.build_ipasn_db();
    let mut raw_right = 0usize;
    for iface in report.interfaces.values() {
        let Some(ifid) = topo.iface_by_ip(iface.ip) else {
            continue;
        };
        if iface.owner.is_some() && db.origin(iface.ip) == Some(topo.ifaces[ifid].asn) {
            raw_right += 1;
        }
    }
    assert!(
        right >= raw_right,
        "correction made ownership worse: {right} < {raw_right}"
    );
}
