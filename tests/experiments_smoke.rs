//! Smoke-runs every experiment module at tiny scale and checks the JSON
//! payloads carry the fields EXPERIMENTS.md documents.

use cfs::experiments::{experiments, Lab, Output, Scale};

#[test]
fn every_experiment_runs_and_reports() {
    let lab = Lab::provision(Scale::Tiny, Some(11)).unwrap();
    for id in experiments::ALL_IDS {
        let mut out = Output::new(&format!("{id}-smoke"), "tiny").quiet();
        let json = experiments::run_by_id(id, &lab, &mut out)
            .unwrap_or_else(|e| panic!("{id} failed: {e}"));
        assert!(
            json.is_object() || json.is_array(),
            "{id} returned scalar json"
        );
    }
}

#[test]
fn unknown_experiment_id_errors() {
    let lab = Lab::provision(Scale::Tiny, Some(11)).unwrap();
    let mut out = Output::new("nope-smoke", "tiny").quiet();
    assert!(experiments::run_by_id("nope", &lab, &mut out).is_err());
}

#[test]
fn labs_share_seed_determinism() {
    let a = Lab::provision(Scale::Tiny, Some(5)).unwrap();
    let b = Lab::provision(Scale::Tiny, Some(5)).unwrap();
    assert_eq!(a.topo.facilities.len(), b.topo.facilities.len());
    assert_eq!(a.targets(), b.targets());
    // Different seed ⇒ different draw somewhere.
    let c = Lab::provision(Scale::Tiny, Some(6)).unwrap();
    let pair_a: Vec<_> = a.topo.ases.values().map(|n| n.facilities.clone()).collect();
    let pair_c: Vec<_> = c.topo.ases.values().map(|n| n.facilities.clone()).collect();
    assert_ne!(
        pair_a, pair_c,
        "seeds 5 and 6 generated identical footprints"
    );
}
