//! End-to-end CLI coverage for the profiling/diff tooling: `cfs run
//! --trace-json --profile-json`, `cfs profile`, `cfs trace-diff`, and
//! the section-tagged `cfs trace-validate` failure reporting — driven
//! through the real binary, the way CI drives it.

use std::path::PathBuf;
use std::process::{Command, Output};

fn cfs(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_cfs"))
        .args(args)
        .output()
        .expect("cfs binary runs")
}

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cfs-cli-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir.join(name)
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

#[test]
fn profile_and_diff_cli_end_to_end() {
    let trace_a = tmp("a.trace.json");
    let trace_b = tmp("b.trace.json");
    let prof_a = tmp("a.prof.json");

    // One traced+profiled run, and a second at a different seed.
    let run_a = cfs(&[
        "run",
        "--scale",
        "tiny",
        "--seed",
        "7",
        "--trace-json",
        trace_a.to_str().unwrap(),
        "--profile-json",
        prof_a.to_str().unwrap(),
    ]);
    assert!(run_a.status.success(), "run a failed: {}", stderr(&run_a));
    let run_b = cfs(&[
        "run",
        "--scale",
        "tiny",
        "--seed",
        "8",
        "--trace-json",
        trace_b.to_str().unwrap(),
    ]);
    assert!(run_b.status.success(), "run b failed: {}", stderr(&run_b));

    // The exports exist and carry their schema markers.
    let trace_doc = std::fs::read_to_string(&trace_a).expect("trace written");
    assert!(trace_doc.starts_with("{\"schema\":\"cfs-trace/1\""));
    let prof_doc = std::fs::read_to_string(&prof_a).expect("profile written");
    assert!(prof_doc.starts_with("{\"schema\":\"cfs-profile/1\""));

    // The trace still validates — the sidecar flag must not change it.
    let validate = cfs(&["trace-validate", trace_a.to_str().unwrap()]);
    assert!(
        validate.status.success(),
        "trace-validate rejected a fresh export: {}",
        stderr(&validate)
    );

    // Self-compare: identical → exit 0.
    let same = cfs(&[
        "trace-diff",
        trace_a.to_str().unwrap(),
        trace_a.to_str().unwrap(),
    ]);
    assert_eq!(same.status.code(), Some(0), "{}", stderr(&same));
    assert!(stdout(&same).contains("identical"), "{}", stdout(&same));

    // Different seed → drift, exit 1, with a counter-delta section.
    let drift = cfs(&[
        "trace-diff",
        trace_a.to_str().unwrap(),
        trace_b.to_str().unwrap(),
    ]);
    assert_eq!(drift.status.code(), Some(1), "{}", stderr(&drift));
    let drift_text = stdout(&drift);
    assert!(drift_text.contains("counters ("), "{drift_text}");

    // Same pair as machine output.
    let drift_json = cfs(&[
        "trace-diff",
        trace_a.to_str().unwrap(),
        trace_b.to_str().unwrap(),
        "--json",
    ]);
    assert_eq!(drift_json.status.code(), Some(1));
    assert!(stdout(&drift_json).contains("\"drift\":true"));

    // Profile self-compare through the same subcommand.
    let prof_same = cfs(&[
        "trace-diff",
        prof_a.to_str().unwrap(),
        prof_a.to_str().unwrap(),
        "--tolerance-pct",
        "10",
    ]);
    assert_eq!(prof_same.status.code(), Some(0), "{}", stderr(&prof_same));

    // Mixing the two schemas is malformed input → exit 2.
    let mixed = cfs(&[
        "trace-diff",
        trace_a.to_str().unwrap(),
        prof_a.to_str().unwrap(),
    ]);
    assert_eq!(mixed.status.code(), Some(2), "{}", stdout(&mixed));
    assert!(
        stderr(&mixed).contains("schema mismatch"),
        "{}",
        stderr(&mixed)
    );

    // The profile report renders a stage tree + bottleneck table.
    let report = cfs(&["profile", prof_a.to_str().unwrap(), "--top", "3"]);
    assert!(report.status.success(), "{}", stderr(&report));
    let report_text = stdout(&report);
    assert!(report_text.contains("cfs.run"), "{report_text}");
    assert!(report_text.contains("bottlenecks"), "{report_text}");

    // And refuses a trace document.
    let wrong = cfs(&["profile", trace_a.to_str().unwrap()]);
    assert_eq!(wrong.status.code(), Some(1));
}

#[test]
fn golden_trace_fixture_matches_a_fresh_run() {
    // Guards the committed CI regression fixture: the tiny/seed-7 run
    // shape must keep producing exactly these bytes. If this fails
    // after an *intentional* behavior change, regenerate with
    // `cfs run --scale tiny --seed 7 --trace-json tests/golden/trace-tiny-seed7.json`.
    let golden = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/golden/trace-tiny-seed7.json"
    );
    let fresh = tmp("golden-check.trace.json");
    let run = cfs(&[
        "run",
        "--scale",
        "tiny",
        "--seed",
        "7",
        "--trace-json",
        fresh.to_str().unwrap(),
    ]);
    assert!(run.status.success(), "{}", stderr(&run));
    let diff = cfs(&["trace-diff", golden, fresh.to_str().unwrap()]);
    assert_eq!(
        diff.status.code(),
        Some(0),
        "golden trace drifted:\n{}",
        stdout(&diff)
    );
}

#[test]
fn folded_profile_render_emits_flamegraph_stacks() {
    let prof = tmp("folded.prof.json");
    let run = cfs(&[
        "run",
        "--scale",
        "tiny",
        "--seed",
        "7",
        "--profile-json",
        prof.to_str().unwrap(),
    ]);
    assert!(run.status.success(), "{}", stderr(&run));
    let folded = cfs(&["profile", prof.to_str().unwrap(), "--folded"]);
    assert!(folded.status.success(), "{}", stderr(&folded));
    let text = stdout(&folded);
    // Every line is `stack;frames <self_ns>`, rooted at cfs.run, and the
    // taxonomy chains iterations under the run.
    assert!(!text.is_empty());
    for line in text.lines() {
        let (stack, ns) = line.rsplit_once(' ').expect("stack <ns>");
        assert!(stack.starts_with("cfs.run"), "{line}");
        ns.parse::<u64>().expect("self-time is integer ns");
    }
    assert!(
        text.lines()
            .any(|l| l.starts_with("cfs.run;cfs.iteration;stage.constrain ")),
        "{text}"
    );
}

#[test]
fn baseline_dir_selects_the_golden_by_run_shape() {
    let golden_dir = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden");

    // A fresh tiny/seed-7 run carries the same shape as the committed
    // golden: selection finds exactly it and the diff is clean.
    let fresh = tmp("shaped.trace.json");
    let run = cfs(&[
        "run",
        "--scale",
        "tiny",
        "--seed",
        "7",
        "--trace-json",
        fresh.to_str().unwrap(),
    ]);
    assert!(run.status.success(), "{}", stderr(&run));
    let picked = cfs(&[
        "trace-diff",
        fresh.to_str().unwrap(),
        "--baseline-dir",
        golden_dir,
    ]);
    assert_eq!(
        picked.status.code(),
        Some(0),
        "{}\n{}",
        stdout(&picked),
        stderr(&picked)
    );
    let text = stdout(&picked);
    assert!(
        text.contains("baseline:") && text.contains("trace-tiny-seed7.json"),
        "{text}"
    );

    // A different run shape has no golden → exit 2, not a drift report.
    let other = tmp("other-shape.trace.json");
    let run8 = cfs(&[
        "run",
        "--scale",
        "tiny",
        "--seed",
        "8",
        "--trace-json",
        other.to_str().unwrap(),
    ]);
    assert!(run8.status.success(), "{}", stderr(&run8));
    let unmatched = cfs(&[
        "trace-diff",
        other.to_str().unwrap(),
        "--baseline-dir",
        golden_dir,
    ]);
    assert_eq!(unmatched.status.code(), Some(2), "{}", stdout(&unmatched));
    assert!(
        stderr(&unmatched).contains("no baseline"),
        "{}",
        stderr(&unmatched)
    );

    // A shape-less candidate (daemon traces, pre-shape exports) is
    // rejected with a pointer at the missing member.
    let shapeless = tmp("shapeless.trace.json");
    std::fs::write(
        &shapeless,
        "{\"schema\":\"cfs-trace/1\",\"digest\":\"0\",\"counters\":{}}",
    )
    .expect("fixture written");
    let refused = cfs(&[
        "trace-diff",
        shapeless.to_str().unwrap(),
        "--baseline-dir",
        golden_dir,
    ]);
    assert_eq!(refused.status.code(), Some(2));
    assert!(
        stderr(&refused).contains("no \"shape\" member"),
        "{}",
        stderr(&refused)
    );
}

#[test]
fn metrics_validate_names_the_failing_sections() {
    let fixture = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/fixtures/corrupt-metrics.json"
    );
    let out = cfs(&["metrics-validate", fixture]);
    assert_eq!(out.status.code(), Some(1));
    let err = stderr(&out);
    for section in ["[windows]", "[histograms]", "[durations]", "[totals]"] {
        assert!(err.contains(section), "missing {section} in:\n{err}");
    }
    // And the usage/read-failure exits.
    assert_eq!(cfs(&["metrics-validate"]).status.code(), Some(2));
    assert_eq!(
        cfs(&["metrics-validate", "/nonexistent.json"])
            .status
            .code(),
        Some(1)
    );
}

#[test]
fn trace_validate_names_the_failing_sections() {
    // The committed fixture is wrong in several distinct ways; the
    // validator must attribute each problem to its section.
    let fixture = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/fixtures/corrupt-trace-bad-digest.json"
    );
    let out = cfs(&["trace-validate", fixture]);
    assert_eq!(out.status.code(), Some(1));
    let err = stderr(&out);
    for section in [
        "[digest]",
        "[structure]",
        "[histograms]",
        "[resolution_curve]",
    ] {
        assert!(err.contains(section), "missing {section} in:\n{err}");
    }
}

#[test]
fn trace_validate_flags_convergence_violations_behind_a_good_digest() {
    // A document whose digest is correct but whose trajectory grows:
    // only the convergence section may be blamed.
    let body = concat!(
        "\"counters\":{\"x\":1},\"histogram_le\":[1],",
        "\"histograms\":{},\"spans\":{},",
        "\"convergence\":{\"candidate_bucket_le\":[2],",
        "\"per_iteration\":[{\"iteration\":1,\"unconstrained\":0,\"resolved\":1,\"buckets\":[1,0]}],",
        "\"trajectories\":{\"10.0.0.1\":[[1,2],[2,5]]}},",
        "\"resolution_curve\":[0.5,1]"
    );
    let digest = cfs::obs::export::fnv1a64(body);
    let doc = format!("{{\"schema\":\"cfs-trace/1\",\"digest\":\"{digest:016x}\",{body}}}");
    let path = tmp("growing-trajectory.json");
    std::fs::write(&path, doc).expect("fixture written");

    let out = cfs(&["trace-validate", path.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(1));
    let err = stderr(&out);
    assert!(err.contains("[convergence]"), "{err}");
    assert!(err.contains("trajectory 10.0.0.1 grows"), "{err}");
    assert!(!err.contains("[digest]"), "digest was valid:\n{err}");
}
