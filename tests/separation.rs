//! The substitution discipline: inference inputs are *views* of ground
//! truth with realistic damage, never the truth itself. These tests pin
//! the boundary.

use cfs::prelude::*;

fn world() -> (Topology, PublicSources, KnowledgeBase) {
    let topo = Topology::generate(TopologyConfig::default()).unwrap();
    let sources = PublicSources::derive(&topo, &KbConfig::default());
    let kb = KnowledgeBase::assemble(&sources, &topo.world);
    (topo, sources, kb)
}

#[test]
fn knowledge_base_is_a_lossy_subset_of_truth() {
    let (topo, _sources, kb) = world();
    let mut kb_links = 0usize;
    let mut truth_links = 0usize;
    for node in topo.ases.values() {
        let known = kb.facilities_of_as(node.asn);
        // Soundness: the KB never invents presence.
        for f in &known {
            assert!(node.facilities.contains(f), "{} invented at {f}", node.asn);
        }
        kb_links += known.len();
        truth_links += node.facilities.len();
    }
    // Lossiness: volunteer data misses a real share of links.
    assert!(
        kb_links < truth_links,
        "no incompleteness: {kb_links} = {truth_links}"
    );
    assert!(
        kb_links * 100 > truth_links * 60,
        "kb implausibly empty: {kb_links}/{truth_links}"
    );
}

#[test]
fn ip_to_asn_database_carries_the_documented_contamination() {
    let (topo, _sources, _kb) = world();
    let db = topo.build_ipasn_db();
    // Point-to-point far ends map to the allocating AS, not the operator.
    let mut contaminated = 0usize;
    for link in topo.links.values() {
        let b_ip = topo.ifaces[link.b.iface].ip;
        let mapped = db.origin(b_ip);
        assert_eq!(mapped, Some(link.a.asn), "ptp subnet must map to side a");
        if link.a.asn != link.b.asn {
            contaminated += 1;
        }
    }
    assert!(
        contaminated > 50,
        "too few contaminated interfaces: {contaminated}"
    );
}

#[test]
fn traceroute_only_reveals_interface_addresses() {
    let (topo, _sources, _kb) = world();
    let vps = deploy_vantage_points(&topo, &VpConfig::tiny()).unwrap();
    let engine = Engine::new(&topo);
    let target = topo.target_ip(Asn(15169)).unwrap();
    for id in vps.ids().take(40) {
        let trace = engine.trace(&vps.vps[id], target, 0);
        for hop in &trace.hops {
            let Some(ip) = hop.ip else { continue };
            // Every hop address is a real interface or the target host.
            assert!(
                ip == target || topo.iface_by_ip(ip).is_some(),
                "trace leaked a non-interface address {ip}"
            );
        }
    }
}

#[test]
fn detailed_ixp_sites_cover_only_a_handful_of_exchanges() {
    let (_topo, sources, _kb) = world();
    let detailed = sources.ixp_sites.values().filter(|s| s.detailed).count();
    assert_eq!(detailed, sources.config.detailed_ixp_sites);
    let with_port_facilities = sources
        .ixp_sites
        .values()
        .filter(|s| s.members.iter().any(|m| m.facility.is_some()))
        .count();
    assert_eq!(
        detailed, with_port_facilities,
        "ordinary sites must not leak port data"
    );
}

#[test]
fn remote_memberships_exist_at_scale() {
    let (topo, _sources, _kb) = world();
    let (mut remote, mut total) = (0usize, 0usize);
    for ixp in topo.ixps.values() {
        for m in &ixp.members {
            total += 1;
            remote += usize::from(m.remote_via.is_some());
        }
    }
    assert!(total > 100);
    let frac = remote as f64 / total as f64;
    // Configured at 18%; allow sampling slack either way.
    assert!(
        (0.03..0.40).contains(&frac),
        "remote membership fraction {frac}"
    );
}
